//! Candidate network (CN) generation — DISCOVER (Hristidis &
//! Papakonstantinou, VLDB 02) with duplicate-free enumeration
//! (Markowetz et al., SIGMOD 07). Tutorial slides 28 and 115.
//!
//! A CN is a schema-level join tree whose nodes are tuple sets `R^K` (or
//! free sets `R^{}`) and whose edges are foreign keys. A *valid* CN is
//!
//! * **total**: the node masks union to the full query,
//! * **duplicate-free across keywords**: masks are pairwise disjoint (the
//!   exact-subset tuple sets guarantee each joining tree of tuples matches
//!   exactly one CN),
//! * **minimal**: every leaf is a non-free set (a free leaf adds nothing),
//! * **non-redundant**: no node carries two same-direction copies of one
//!   foreign key on its FK side — both children would be forced to be the
//!   same tuple.
//!
//! Generation is breadth-first over partial trees with canonical-form (AHU)
//! duplicate elimination; the `dedupe` switch exists so E02 can measure what
//! the canonical check saves.

use crate::tupleset::TupleSets;
use kwdb_relational::{Database, SchemaGraph, TableId};
use std::collections::{HashMap, HashSet, VecDeque};

/// A CN node: a tuple set `table^mask` (`mask == 0` is the free set).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CnNode {
    pub table: TableId,
    pub mask: u32,
}

/// A CN edge between node indices, carrying which schema FK it instantiates
/// and its orientation (needed for self-referencing FKs like `cite`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CnEdge {
    pub a: usize,
    pub b: usize,
    /// Index into [`SchemaGraph::edges`].
    pub schema_edge: usize,
    /// Whether node `a` is on the FK (referencing / `from`) side.
    pub a_is_from: bool,
}

impl CnEdge {
    /// Is node `i` (an endpoint) on the FK side of this edge?
    pub fn from_side_is(&self, i: usize) -> bool {
        (i == self.a) == self.a_is_from
    }
}

/// A candidate network.
#[derive(Debug, Clone, PartialEq)]
pub struct CandidateNetwork {
    pub nodes: Vec<CnNode>,
    pub edges: Vec<CnEdge>,
}

impl CandidateNetwork {
    pub fn size(&self) -> usize {
        self.nodes.len()
    }

    /// Union of node masks.
    pub fn cover_mask(&self) -> u32 {
        self.nodes.iter().fold(0, |m, n| m | n.mask)
    }

    /// Node indices with degree ≤ 1.
    pub fn leaves(&self) -> Vec<usize> {
        let mut deg = vec![0usize; self.nodes.len()];
        for e in &self.edges {
            deg[e.a] += 1;
            deg[e.b] += 1;
        }
        deg.iter()
            .enumerate()
            .filter(|&(_, &d)| d <= 1)
            .map(|(i, _)| i)
            .collect()
    }

    /// Indices of non-free nodes.
    pub fn keyword_nodes(&self) -> Vec<usize> {
        (0..self.nodes.len())
            .filter(|&i| self.nodes[i].mask != 0)
            .collect()
    }

    /// Full validity check (used by tests and the generator's acceptance).
    pub fn is_valid(&self, full_mask: u32) -> bool {
        if self.nodes.is_empty() || self.edges.len() + 1 != self.nodes.len() {
            return false;
        }
        // masks pairwise disjoint and total
        let mut seen = 0u32;
        for n in &self.nodes {
            if n.mask & seen != 0 {
                return false;
            }
            seen |= n.mask;
        }
        if seen != full_mask {
            return false;
        }
        // leaves non-free (single node CN: the node is a leaf and must be non-free)
        for leaf in self.leaves() {
            if self.nodes[leaf].mask == 0 {
                return false;
            }
        }
        // connectivity
        let mut adj: HashMap<usize, Vec<usize>> = HashMap::new();
        for e in &self.edges {
            adj.entry(e.a).or_default().push(e.b);
            adj.entry(e.b).or_default().push(e.a);
        }
        let mut reach = HashSet::new();
        let mut stack = vec![0usize];
        while let Some(u) = stack.pop() {
            if reach.insert(u) {
                stack.extend(adj.get(&u).into_iter().flatten().copied());
            }
        }
        reach.len() == self.nodes.len()
    }

    /// Canonical AHU code: identical trees (up to node renumbering) get the
    /// same string. Rooted codes are computed at the tree center(s) and the
    /// lexicographically smaller one wins.
    pub fn canonical_code(&self) -> String {
        let n = self.nodes.len();
        if n == 0 {
            return String::new();
        }
        // adjacency entries: (neighbor, schema edge, neighbor-is-from-side)
        let mut adj: Vec<Vec<(usize, usize, bool)>> = vec![Vec::new(); n];
        for e in &self.edges {
            adj[e.a].push((e.b, e.schema_edge, e.from_side_is(e.b)));
            adj[e.b].push((e.a, e.schema_edge, e.from_side_is(e.a)));
        }
        centers(n, &adj)
            .into_iter()
            .map(|c| rooted_code(c, usize::MAX, &adj, &self.nodes))
            .min()
            .expect("tree has a center")
    }

    /// Human-readable rendering, e.g. `author^{widom}⋈write⋈paper^{xml}`.
    pub fn display<S: AsRef<str>>(&self, db: &Database, keywords: &[S]) -> String {
        let node_str = |n: &CnNode| {
            let tname = &db.table(n.table).schema.name;
            if n.mask == 0 {
                tname.clone()
            } else {
                let kws: Vec<&str> = keywords
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| n.mask & (1 << i) != 0)
                    .map(|(_, k)| k.as_ref())
                    .collect();
                format!("{tname}^{{{}}}", kws.join(","))
            }
        };
        if self.edges.is_empty() {
            return node_str(&self.nodes[0]);
        }
        // DFS rendering from node 0
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); self.nodes.len()];
        for e in &self.edges {
            adj[e.a].push(e.b);
            adj[e.b].push(e.a);
        }
        fn render(
            u: usize,
            parent: usize,
            adj: &[Vec<usize>],
            f: &dyn Fn(usize) -> String,
        ) -> String {
            let kids: Vec<String> = adj[u]
                .iter()
                .filter(|&&v| v != parent)
                .map(|&v| render(v, u, adj, f))
                .collect();
            if kids.is_empty() {
                f(u)
            } else {
                format!("{}⋈({})", f(u), kids.join(", "))
            }
        }
        render(0, usize::MAX, &adj, &|i| node_str(&self.nodes[i]))
    }
}

fn centers(n: usize, adj: &[Vec<(usize, usize, bool)>]) -> Vec<usize> {
    if n == 1 {
        return vec![0];
    }
    let mut deg: Vec<usize> = adj.iter().map(|a| a.len()).collect();
    let mut layer: VecDeque<usize> = (0..n).filter(|&i| deg[i] <= 1).collect();
    let mut remaining = n;
    let mut removed = vec![false; n];
    while remaining > 2 {
        let mut next = VecDeque::new();
        for &u in &layer {
            removed[u] = true;
            remaining -= 1;
            for &(v, _, _) in &adj[u] {
                if !removed[v] {
                    deg[v] -= 1;
                    if deg[v] == 1 {
                        next.push_back(v);
                    }
                }
            }
        }
        layer = next;
    }
    (0..n).filter(|&i| !removed[i]).collect()
}

fn rooted_code(
    u: usize,
    parent: usize,
    adj: &[Vec<(usize, usize, bool)>],
    nodes: &[CnNode],
) -> String {
    let mut kids: Vec<String> = adj[u]
        .iter()
        .filter(|&&(v, _, _)| v != parent)
        .map(|&(v, se, v_from)| {
            format!(
                "-{se}{}-{}",
                if v_from { ">" } else { "<" },
                rooted_code(v, u, adj, nodes)
            )
        })
        .collect();
    kids.sort();
    format!("{}:{}({})", nodes[u].table.0, nodes[u].mask, kids.join(","))
}

/// Which non-free masks exist per table — the generator's data oracle.
#[derive(Debug, Clone)]
pub struct MaskOracle {
    masks: HashMap<TableId, Vec<u32>>,
    full_mask: u32,
}

impl MaskOracle {
    /// Data-aware oracle: only the non-empty tuple sets of `ts`.
    pub fn from_tuplesets(ts: &TupleSets) -> Self {
        let mut masks: HashMap<TableId, Vec<u32>> = HashMap::new();
        for (t, m) in ts.keys() {
            masks.entry(t).or_default().push(m);
        }
        MaskOracle {
            masks,
            full_mask: ts.full_mask(),
        }
    }

    /// Schema-level oracle: every subset is assumed non-empty for every
    /// listed table (used by E02's CN-count experiments).
    pub fn schema_level(tables: &[TableId], n_keywords: usize) -> Self {
        assert!(n_keywords <= 16);
        let full = if n_keywords == 0 {
            0
        } else {
            (1u32 << n_keywords) - 1
        };
        let all: Vec<u32> = (1..=full).collect();
        MaskOracle {
            masks: tables.iter().map(|&t| (t, all.clone())).collect(),
            full_mask: full,
        }
    }

    fn masks_for(&self, t: TableId) -> &[u32] {
        self.masks.get(&t).map(|v| v.as_slice()).unwrap_or(&[])
    }

    fn tables(&self) -> Vec<TableId> {
        let mut t: Vec<TableId> = self.masks.keys().copied().collect();
        t.sort();
        t
    }
}

/// Generator configuration.
#[derive(Debug, Clone, Copy)]
pub struct CnGenConfig {
    /// Maximum CN size (node count) — `Tmax` in the literature.
    pub max_size: usize,
    /// Canonical-form duplicate elimination (the ablation switch).
    pub dedupe: bool,
    /// Safety cap on produced CNs (0 = unlimited).
    pub max_cns: usize,
}

impl Default for CnGenConfig {
    fn default() -> Self {
        CnGenConfig {
            max_size: 5,
            dedupe: true,
            max_cns: 0,
        }
    }
}

/// Breadth-first CN generator.
#[derive(Debug)]
pub struct CnGenerator<'a> {
    schema: &'a SchemaGraph,
    oracle: &'a MaskOracle,
    cfg: CnGenConfig,
    /// Partial trees enqueued (work metric).
    pub partials_enqueued: usize,
    /// Partial trees skipped as canonical duplicates.
    pub duplicates_pruned: usize,
}

impl<'a> CnGenerator<'a> {
    pub fn new(schema: &'a SchemaGraph, oracle: &'a MaskOracle, cfg: CnGenConfig) -> Self {
        CnGenerator {
            schema,
            oracle,
            cfg,
            partials_enqueued: 0,
            duplicates_pruned: 0,
        }
    }

    /// Enumerate all valid CNs up to `max_size`, smallest first.
    pub fn generate(&mut self) -> Vec<CandidateNetwork> {
        let full = self.oracle.full_mask;
        let mut results = Vec::new();
        if full == 0 {
            return results;
        }
        let mut queue: VecDeque<CandidateNetwork> = VecDeque::new();
        let mut seen_partial: HashSet<String> = HashSet::new();
        let mut seen_result: HashSet<String> = HashSet::new();

        for t in self.oracle.tables() {
            for &m in self.oracle.masks_for(t) {
                let cn = CandidateNetwork {
                    nodes: vec![CnNode { table: t, mask: m }],
                    edges: vec![],
                };
                self.enqueue(cn, &mut queue, &mut seen_partial);
            }
        }

        while let Some(cn) = queue.pop_front() {
            let cover = cn.cover_mask();
            if cover == full {
                // acceptance: all leaves non-free
                if cn.leaves().iter().all(|&i| cn.nodes[i].mask != 0) {
                    let code = cn.canonical_code();
                    if !self.cfg.dedupe || seen_result.insert(code) {
                        results.push(cn);
                        if self.cfg.max_cns > 0 && results.len() >= self.cfg.max_cns {
                            break;
                        }
                    }
                }
                // complete trees cannot be usefully extended (any new node is
                // free and creates an unfixable free leaf eventually, and
                // non-free masks would overlap)
                continue;
            }
            if cn.size() >= self.cfg.max_size {
                continue;
            }
            // expand: attach a neighbor tuple set to any node
            for i in 0..cn.nodes.len() {
                let t = cn.nodes[i].table;
                for (se_idx, se) in self.schema.edges().iter().enumerate() {
                    // i_on_from_side = node i plays the referencing role of
                    // this FK (its fk column points at the new node's PK).
                    // Self-referencing edges (from == to) allow both roles.
                    for i_on_from_side in attach_sides(se.from == t, se.to == t) {
                        // non-redundancy: an FK column holds one value, so a
                        // node may act as its `from` side at most once
                        if i_on_from_side
                            && cn.edges.iter().any(|e| {
                                e.schema_edge == se_idx
                                    && (e.a == i || e.b == i)
                                    && e.from_side_is(i)
                            })
                        {
                            continue;
                        }
                        let new_table = if i_on_from_side { se.to } else { se.from };
                        // candidate masks: free + disjoint non-free
                        let mut mask_options = vec![0u32];
                        for &m in self.oracle.masks_for(new_table) {
                            if m & cover == 0 {
                                mask_options.push(m);
                            }
                        }
                        for m in mask_options {
                            let mut next = cn.clone();
                            let j = next.nodes.len();
                            next.nodes.push(CnNode {
                                table: new_table,
                                mask: m,
                            });
                            next.edges.push(CnEdge {
                                a: i,
                                b: j,
                                schema_edge: se_idx,
                                a_is_from: i_on_from_side,
                            });
                            self.enqueue(next, &mut queue, &mut seen_partial);
                        }
                    }
                }
            }
        }
        results
    }

    fn enqueue(
        &mut self,
        cn: CandidateNetwork,
        queue: &mut VecDeque<CandidateNetwork>,
        seen: &mut HashSet<String>,
    ) {
        if self.cfg.dedupe {
            let code = cn.canonical_code();
            if !seen.insert(code) {
                self.duplicates_pruned += 1;
                return;
            }
        }
        self.partials_enqueued += 1;
        queue.push_back(cn);
    }
}

/// For a schema edge incident to table `t`, which attachment orientations
/// apply: attaching on the FK (`from`) side creates the referenced (`to`)
/// table; on the PK (`to`) side creates the referencing (`from`) table.
/// Self-referencing edges (from == to) allow both.
fn attach_sides(t_is_from: bool, t_is_to: bool) -> Vec<bool> {
    match (t_is_from, t_is_to) {
        (true, true) => vec![true, false],
        (true, false) => vec![true],
        (false, true) => vec![false],
        (false, false) => vec![],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kwdb_relational::database::dblp_schema;
    use kwdb_relational::{ColumnType, Database, TableBuilder};

    /// Minimal A ← W → P schema (slide 28).
    fn awp() -> Database {
        let mut db = Database::new();
        db.create_table(
            TableBuilder::new("author")
                .column("aid", ColumnType::Int)
                .column("name", ColumnType::Text)
                .primary_key("aid"),
        )
        .unwrap();
        db.create_table(
            TableBuilder::new("paper")
                .column("pid", ColumnType::Int)
                .column("title", ColumnType::Text)
                .primary_key("pid"),
        )
        .unwrap();
        db.create_table(
            TableBuilder::new("write")
                .column("aid", ColumnType::Int)
                .column("pid", ColumnType::Int)
                .foreign_key("aid", "author")
                .foreign_key("pid", "paper"),
        )
        .unwrap();
        db
    }

    fn awp_tables(db: &Database) -> Vec<TableId> {
        ["author", "paper", "write"]
            .iter()
            .map(|t| db.table_id(t).unwrap())
            .collect()
    }

    #[test]
    fn slide28_cn_shapes_for_two_keywords() {
        // Q = {widom, xml}: slide 28 lists 5 CNs up to size 5:
        //   A^Q | P^Q | A^q1–W–P^q2 (plus swap, same canonical shape family)
        //   A–W–P–W–A | P–W–A–W–P
        let db = awp();
        let oracle = MaskOracle::schema_level(&awp_tables(&db), 2);
        let cfg = CnGenConfig {
            max_size: 5,
            dedupe: true,
            max_cns: 0,
        };
        let mut generator = CnGenerator::new(db.schema_graph(), &oracle, cfg);
        let cns = generator.generate();
        for cn in &cns {
            assert!(cn.is_valid(0b11), "invalid CN: {cn:?}");
        }
        // Size-1: A^{12}, P^{12}, W^{12} (schema-level oracle includes W text)
        let size1 = cns.iter().filter(|c| c.size() == 1).count();
        assert_eq!(size1, 3);
        // The classic A^{k1}–W–P^{k2} shape must be present.
        let author = db.table_id("author").unwrap();
        let paper = db.table_id("paper").unwrap();
        let has_awp = cns.iter().any(|c| {
            c.size() == 3
                && c.nodes.iter().any(|n| n.table == author && n.mask == 0b01)
                && c.nodes.iter().any(|n| n.table == paper && n.mask == 0b10)
        });
        assert!(has_awp);
        // A^{k1}–W–A^{k2} (two authors of one... wait, W joins one author) —
        // two authors joined through one W is forbidden by non-redundancy.
        let two_authors_one_write = cns
            .iter()
            .any(|c| c.size() == 3 && c.nodes.iter().filter(|n| n.table == author).count() == 2);
        assert!(
            !two_authors_one_write,
            "W^{{}} cannot reference two distinct authors through one aid"
        );
    }

    #[test]
    fn canonical_dedup_removes_mirror_enumerations() {
        let db = awp();
        let oracle = MaskOracle::schema_level(&awp_tables(&db), 2);
        let mut with = CnGenerator::new(
            db.schema_graph(),
            &oracle,
            CnGenConfig {
                max_size: 4,
                dedupe: true,
                max_cns: 0,
            },
        );
        let deduped = with.generate();
        assert!(with.duplicates_pruned > 0);
        // all canonical codes distinct
        let codes: HashSet<String> = deduped.iter().map(|c| c.canonical_code()).collect();
        assert_eq!(codes.len(), deduped.len());
    }

    #[test]
    fn canonical_code_invariant_under_renumbering() {
        let db = awp();
        let a = db.table_id("author").unwrap();
        let p = db.table_id("paper").unwrap();
        let w = db.table_id("write").unwrap();
        let cn1 = CandidateNetwork {
            nodes: vec![
                CnNode { table: a, mask: 1 },
                CnNode { table: w, mask: 0 },
                CnNode { table: p, mask: 2 },
            ],
            edges: vec![
                CnEdge {
                    a: 1,
                    b: 0,
                    schema_edge: 0,
                    a_is_from: true,
                },
                CnEdge {
                    a: 1,
                    b: 2,
                    schema_edge: 1,
                    a_is_from: true,
                },
            ],
        };
        let cn2 = CandidateNetwork {
            nodes: vec![
                CnNode { table: p, mask: 2 },
                CnNode { table: w, mask: 0 },
                CnNode { table: a, mask: 1 },
            ],
            edges: vec![
                CnEdge {
                    a: 1,
                    b: 2,
                    schema_edge: 0,
                    a_is_from: true,
                },
                CnEdge {
                    a: 0,
                    b: 1,
                    schema_edge: 1,
                    a_is_from: false,
                },
            ],
        };
        assert_eq!(cn1.canonical_code(), cn2.canonical_code());
    }

    #[test]
    fn free_leaf_rejected_by_validity() {
        let db = awp();
        let a = db.table_id("author").unwrap();
        let w = db.table_id("write").unwrap();
        let cn = CandidateNetwork {
            nodes: vec![
                CnNode {
                    table: a,
                    mask: 0b11,
                },
                CnNode { table: w, mask: 0 },
            ],
            edges: vec![CnEdge {
                a: 0,
                b: 1,
                schema_edge: 0,
                a_is_from: false,
            }],
        };
        assert!(!cn.is_valid(0b11));
    }

    #[test]
    fn growth_with_max_size() {
        let db = awp();
        let oracle = MaskOracle::schema_level(&awp_tables(&db), 2);
        let mut counts = Vec::new();
        for tmax in 1..=7 {
            let mut g = CnGenerator::new(
                db.schema_graph(),
                &oracle,
                CnGenConfig {
                    max_size: tmax,
                    dedupe: true,
                    max_cns: 0,
                },
            );
            counts.push(g.generate().len());
        }
        assert!(counts.windows(2).all(|w| w[0] <= w[1]));
        assert!(counts[6] > counts[2], "CN count must grow with Tmax");
    }

    #[test]
    fn data_aware_oracle_restricts_masks() {
        let mut db = awp();
        db.insert("author", vec![1.into(), "widom".into()]).unwrap();
        db.insert("paper", vec![10.into(), "xml".into()]).unwrap();
        db.insert("write", vec![1.into(), 10.into()]).unwrap();
        db.build_text_index();
        let ts = TupleSets::build(&db, &["widom", "xml"]).unwrap();
        let oracle = MaskOracle::from_tuplesets(&ts);
        let mut g = CnGenerator::new(
            db.schema_graph(),
            &oracle,
            CnGenConfig {
                max_size: 3,
                dedupe: true,
                max_cns: 0,
            },
        );
        let cns = g.generate();
        // No single tuple matches both keywords → no size-1 CN.
        assert!(cns.iter().all(|c| c.size() > 1));
        // The A^{widom}–W–P^{xml} CN exists.
        assert!(cns.iter().any(|c| c.size() == 3));
    }

    #[test]
    fn display_renders_masks() {
        let db = awp();
        let a = db.table_id("author").unwrap();
        let cn = CandidateNetwork {
            nodes: vec![CnNode {
                table: a,
                mask: 0b1,
            }],
            edges: vec![],
        };
        assert_eq!(cn.display(&db, &["widom", "xml"]), "author^{widom}");
    }

    #[test]
    fn cite_self_reference_generates_both_orientations() {
        let mut db = Database::new();
        dblp_schema(&mut db).unwrap();
        let paper = db.table_id("paper").unwrap();
        let oracle = MaskOracle::schema_level(&[paper], 2);
        let mut g = CnGenerator::new(
            db.schema_graph(),
            &oracle,
            CnGenConfig {
                max_size: 3,
                dedupe: true,
                max_cns: 0,
            },
        );
        let cns = g.generate();
        // P^{k1}–cite–P^{k2} must appear (papers connected by citation)
        assert!(cns
            .iter()
            .any(|c| c.size() == 3 && c.nodes.iter().filter(|n| n.table == paper).count() == 2));
    }
}
