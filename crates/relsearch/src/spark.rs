//! SPARK: top-k under a non-monotonic scoring function
//! (Luo et al., SIGMOD 07) — tutorial slide 117.
//!
//! SPARK's virtual-document score is not monotone in per-tuple scores, so
//! DISCOVER2's pipelines don't apply. SPARK instead sorts each keyword
//! node's tuples by the monotone upper bound `watf` (see
//! [`crate::score::ResultScorer::watf`]) and enumerates tuple combinations
//! in bound order:
//!
//! * [`skyline_sweep`] — a best-first sweep over the combination lattice:
//!   pop the combination with the highest bound, evaluate it (one probe per
//!   combination), push its lattice successors; stop when the k-th best
//!   *real* score dominates the best remaining bound.
//! * [`block_pipeline`] — the same sweep over *blocks* of tuples: bounds are
//!   computed per block combination, trading bound tightness for far fewer
//!   join invocations.
//! * [`naive_spark`] — evaluate everything; the correctness baseline.

use crate::eval::{default_rows, evaluate_cn, evaluate_cn_with};
use crate::topk::{RankedResult, TopKQuery};
use kwdb_common::{topk::TopK, Budget, Score, TruncationReason};
use kwdb_relational::{Database, ExecStats, RowId, TupleId};
use std::collections::{BinaryHeap, HashSet};
use std::ops::Deref;

/// Evaluate every CN fully and rank by the SPARK score.
pub fn naive_spark<S: AsRef<str>, D: Deref<Target = Database>>(
    q: &TopKQuery<'_, S, D>,
    k: usize,
    stats: &ExecStats,
) -> Vec<RankedResult> {
    let mut topk = TopK::new(k);
    for (ci, cn) in q.cns.iter().enumerate() {
        for r in evaluate_cn(q.db, cn, q.ts, stats) {
            let score = q.scorer.spark_score(&r, q.keywords);
            topk.push(score, (ci, r));
        }
    }
    finish(topk)
}

/// Per-CN lattice context.
struct Lattice {
    cn_idx: usize,
    nonfree: Vec<usize>,
    /// rows sorted by watf descending, with their watf values.
    sorted: Vec<Vec<(RowId, f64)>>,
    /// SPARK's size penalty is known per CN: every result of this CN has
    /// exactly `cn.size()` tuples, so the bound is tightened by 1/size.
    inv_size: f64,
}

impl Lattice {
    fn build<S: AsRef<str>, D: Deref<Target = Database>>(
        q: &TopKQuery<'_, S, D>,
        cn_idx: usize,
    ) -> Option<Self> {
        let cn = &q.cns[cn_idx];
        let nonfree = cn.keyword_nodes();
        let mut sorted = Vec::with_capacity(nonfree.len());
        for &ni in &nonfree {
            let node = cn.nodes[ni];
            let set = q.ts.get(node.table, node.mask)?;
            let mut rows: Vec<(RowId, f64)> = set
                .rows
                .iter()
                .map(|&r| (r, q.scorer.watf(TupleId::new(node.table, r), q.keywords)))
                .collect();
            rows.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
            sorted.push(rows);
        }
        Some(Lattice {
            cn_idx,
            nonfree,
            sorted,
            inv_size: 1.0 / cn.size() as f64,
        })
    }

    /// Upper bound of combination `combo` (tuple indices per keyword node).
    fn bound(&self, combo: &[usize]) -> Option<f64> {
        let mut sum = 0.0;
        for (rows, &i) in self.sorted.iter().zip(combo) {
            sum += rows.get(i)?.1;
        }
        Some(sum * self.inv_size)
    }
}

/// Queue entry: `(bound, lattice id, combo)` — max-heap by bound.
type Entry = (Score, usize, Vec<usize>);

/// Skyline-sweep over tuple combinations of all CNs.
pub fn skyline_sweep<S: AsRef<str>, D: Deref<Target = Database>>(
    q: &TopKQuery<'_, S, D>,
    k: usize,
    stats: &ExecStats,
) -> Vec<RankedResult> {
    sweep(q, k, stats, 1, &Budget::unlimited()).0
}

/// [`skyline_sweep`] under an execution [`Budget`]: every combination popped
/// from the sweep heap counts as one candidate; an exhausted budget returns
/// the (score-sorted) best-so-far plus the [`TruncationReason`].
pub fn skyline_sweep_budgeted<S: AsRef<str>, D: Deref<Target = Database>>(
    q: &TopKQuery<'_, S, D>,
    k: usize,
    stats: &ExecStats,
    budget: &Budget,
) -> (Vec<RankedResult>, Option<TruncationReason>) {
    sweep(q, k, stats, 1, budget)
}

/// Block pipeline: the same sweep with blocks of `block_size` tuples.
pub fn block_pipeline<S: AsRef<str>, D: Deref<Target = Database>>(
    q: &TopKQuery<'_, S, D>,
    k: usize,
    block_size: usize,
    stats: &ExecStats,
) -> Vec<RankedResult> {
    sweep(q, k, stats, block_size.max(1), &Budget::unlimited()).0
}

/// [`block_pipeline`] under an execution [`Budget`] (one candidate per block
/// combination popped).
pub fn block_pipeline_budgeted<S: AsRef<str>, D: Deref<Target = Database>>(
    q: &TopKQuery<'_, S, D>,
    k: usize,
    block_size: usize,
    stats: &ExecStats,
    budget: &Budget,
) -> (Vec<RankedResult>, Option<TruncationReason>) {
    sweep(q, k, stats, block_size.max(1), budget)
}

fn sweep<S: AsRef<str>, D: Deref<Target = Database>>(
    q: &TopKQuery<'_, S, D>,
    k: usize,
    stats: &ExecStats,
    block: usize,
    budget: &Budget,
) -> (Vec<RankedResult>, Option<TruncationReason>) {
    let lattices: Vec<Lattice> = (0..q.cns.len())
        .filter_map(|ci| Lattice::build(q, ci))
        .collect();
    let mut heap: BinaryHeap<Entry> = BinaryHeap::new();
    let mut seen: HashSet<(usize, Vec<usize>)> = HashSet::new();
    for (li, lat) in lattices.iter().enumerate() {
        let combo = vec![0usize; lat.nonfree.len()];
        if let Some(b) = lat.bound(&block_head(&combo, block)) {
            seen.insert((li, combo.clone()));
            heap.push((Score(b), li, combo));
        }
    }
    let mut topk = TopK::new(k);
    let mut popped: u64 = 0;
    let mut truncation = None;
    while let Some((Score(bound), li, combo)) = heap.pop() {
        if let Some(reason) = budget.truncation_at(popped) {
            truncation = Some(reason);
            break;
        }
        popped += 1;
        if let Some(th) = topk.threshold() {
            if bound <= th {
                break; // no remaining combination can beat the k-th best
            }
        }
        let lat = &lattices[li];
        let cn = &q.cns[lat.cn_idx];
        // Evaluate: keyword node j restricted to its block starting at
        // combo[j]·block; free nodes default.
        let results = evaluate_cn_with(
            q.db,
            cn,
            &|node| {
                if let Some(j) = lat.nonfree.iter().position(|&nf| nf == node) {
                    let start = combo[j] * block;
                    let end = (start + block).min(lat.sorted[j].len());
                    lat.sorted[j][start..end].iter().map(|&(r, _)| r).collect()
                } else {
                    default_rows(q.db, cn, q.ts, node)
                }
            },
            stats,
        );
        for r in results {
            let score = q.scorer.spark_score(&r, q.keywords);
            topk.push(score, (lat.cn_idx, r));
        }
        // push lattice successors (block granularity)
        for j in 0..combo.len() {
            let mut next = combo.clone();
            next[j] += 1;
            if next[j] * block >= lat.sorted[j].len() {
                continue;
            }
            if seen.insert((li, next.clone())) {
                if let Some(b) = lat.bound(&block_head(&next, block)) {
                    heap.push((Score(b), li, next));
                }
            }
        }
    }
    (finish(topk), truncation)
}

/// First tuple index of each block — where the block's max watf lives.
fn block_head(combo: &[usize], block: usize) -> Vec<usize> {
    combo.iter().map(|&c| c * block).collect()
}

fn finish(topk: TopK<(usize, crate::eval::JoinedResult)>) -> Vec<RankedResult> {
    topk.into_sorted_vec()
        .into_iter()
        .map(|(score, (cn_index, result))| RankedResult {
            cn_index,
            result,
            score,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cn::{CandidateNetwork, CnGenConfig, CnGenerator, MaskOracle};
    use crate::score::ResultScorer;
    use crate::tupleset::TupleSets;
    use kwdb_relational::database::dblp_schema;
    use kwdb_relational::Database;

    fn db() -> Database {
        let mut db = Database::new();
        dblp_schema(&mut db).unwrap();
        db.insert("conference", vec![1.into(), "SIGMOD".into(), 2007.into()])
            .unwrap();
        db.insert("author", vec![1.into(), "Jennifer Widom".into()])
            .unwrap();
        db.insert("author", vec![2.into(), "Widom Widom Widom".into()])
            .unwrap();
        db.insert("author", vec![3.into(), "Serge Abiteboul".into()])
            .unwrap();
        for (pid, title) in [
            (10, "XML keyword search"),
            (11, "XML XML XML spam"),
            (12, "Query processing"),
        ] {
            db.insert("paper", vec![pid.into(), title.into(), 1.into()])
                .unwrap();
        }
        for (wid, aid, pid) in [(100, 1, 10), (101, 2, 11), (102, 3, 12), (103, 1, 12)] {
            db.insert("write", vec![wid.into(), aid.into(), pid.into()])
                .unwrap();
        }
        db.build_text_index();
        db
    }

    fn setup(db: &Database, keywords: &[&str]) -> (TupleSets, Vec<CandidateNetwork>) {
        let ts = TupleSets::build(db, keywords).unwrap();
        let oracle = MaskOracle::from_tuplesets(&ts);
        let mut g = CnGenerator::new(
            db.schema_graph(),
            &oracle,
            CnGenConfig {
                max_size: 5,
                dedupe: true,
                max_cns: 0,
            },
        );
        let cns = g.generate();
        (ts, cns)
    }

    #[test]
    fn sweep_agrees_with_naive() {
        let db = db();
        let kws = ["widom", "xml"];
        let (ts, cns) = setup(&db, &kws);
        let scorer = ResultScorer::new(&db);
        let q = TopKQuery {
            db: &db,
            ts: &ts,
            cns: &cns,
            scorer: &scorer,
            keywords: &kws,
        };
        for k in [1, 3, 8] {
            let s1 = ExecStats::new();
            let s2 = ExecStats::new();
            let s3 = ExecStats::new();
            let a: Vec<f64> = naive_spark(&q, k, &s1).iter().map(|r| r.score).collect();
            let b: Vec<f64> = skyline_sweep(&q, k, &s2).iter().map(|r| r.score).collect();
            let c: Vec<f64> = block_pipeline(&q, k, 2, &s3)
                .iter()
                .map(|r| r.score)
                .collect();
            assert_eq!(a, b, "skyline differs at k={k}");
            assert_eq!(a, c, "block pipeline differs at k={k}");
        }
    }

    #[test]
    fn spam_advantage_is_heavily_damped() {
        // "Widom Widom Widom" + "XML XML XML spam" has 3× the term
        // frequencies of the clean pair; under the double-log damping and
        // length normalization its score advantage must collapse to well
        // under 1.5× (a monotone-tf scorer would give it nearly 3×).
        let db = db();
        let kws = ["xml", "widom"];
        let (ts, cns) = setup(&db, &kws);
        let scorer = ResultScorer::new(&db);
        let q = TopKQuery {
            db: &db,
            ts: &ts,
            cns: &cns,
            scorer: &scorer,
            keywords: &kws,
        };
        let stats = ExecStats::new();
        let res = naive_spark(&q, 10, &stats);
        assert!(res.len() >= 2);
        let is_spam = |r: &RankedResult| {
            r.result
                .tuples
                .iter()
                .flat_map(|&t| db.tuple_tokens(t))
                .any(|t| t == "spam")
        };
        let spam = res.iter().find(|r| is_spam(r)).expect("spam pair present");
        let clean = res
            .iter()
            .find(|r| !is_spam(r))
            .expect("clean pair present");
        assert!(
            spam.score < 1.5 * clean.score,
            "damping too weak: spam {} vs clean {}",
            spam.score,
            clean.score
        );
    }

    #[test]
    fn block_pipeline_fewer_joins_than_skyline() {
        let db = db();
        let kws = ["widom", "xml"];
        let (ts, cns) = setup(&db, &kws);
        let scorer = ResultScorer::new(&db);
        let q = TopKQuery {
            db: &db,
            ts: &ts,
            cns: &cns,
            scorer: &scorer,
            keywords: &kws,
        };
        let s_sky = ExecStats::new();
        skyline_sweep(&q, 3, &s_sky);
        let s_blk = ExecStats::new();
        block_pipeline(&q, 3, 4, &s_blk);
        assert!(
            s_blk.snapshot().joins_executed <= s_sky.snapshot().joins_executed,
            "block {} > skyline {}",
            s_blk.snapshot().joins_executed,
            s_sky.snapshot().joins_executed
        );
    }

    #[test]
    fn empty_when_keyword_unmatched() {
        let db = db();
        let kws = ["widom", "qqqq"];
        let (ts, cns) = setup(&db, &kws);
        let scorer = ResultScorer::new(&db);
        let q = TopKQuery {
            db: &db,
            ts: &ts,
            cns: &cns,
            scorer: &scorer,
            keywords: &kws,
        };
        let stats = ExecStats::new();
        assert!(skyline_sweep(&q, 3, &stats).is_empty());
    }
}
