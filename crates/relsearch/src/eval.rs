//! CN evaluation: turn a candidate network into joined tuple trees.

use crate::cn::CandidateNetwork;
use crate::tupleset::TupleSets;
use kwdb_relational::join::{hash_join, seed};
use kwdb_relational::{Database, ExecStats, RowId, TupleId};

/// One result of a CN: a joining tree of tuples, aligned with the CN's
/// node order (`tuples[i]` instantiates `cn.nodes[i]`).
///
/// `Ord` gives results a content-based total order, which the parallel
/// executor uses to break score ties deterministically across threads.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JoinedResult {
    pub tuples: Vec<TupleId>,
}

/// Evaluate `cn` fully: free nodes range over their whole table, non-free
/// nodes over their tuple set.
pub fn evaluate_cn(
    db: &Database,
    cn: &CandidateNetwork,
    ts: &TupleSets,
    stats: &ExecStats,
) -> Vec<JoinedResult> {
    evaluate_cn_with(db, cn, &|i| default_rows(db, cn, ts, i), stats)
}

/// Rows a CN node ranges over by default: the free set `R^∅` for free
/// nodes (exact-partition semantics), the tuple set otherwise.
pub fn default_rows(
    db: &Database,
    cn: &CandidateNetwork,
    ts: &TupleSets,
    node: usize,
) -> Vec<RowId> {
    let n = cn.nodes[node];
    if n.mask == 0 {
        ts.free_rows(db, n.table)
    } else {
        ts.get(n.table, n.mask)
            .map(|s| s.rows.clone())
            .unwrap_or_default()
    }
}

/// Row count of [`default_rows`] without materializing anything — the
/// cost model and scheduler only need sizes.
pub fn default_row_count(
    db: &Database,
    cn: &CandidateNetwork,
    ts: &TupleSets,
    node: usize,
) -> usize {
    let n = cn.nodes[node];
    if n.mask == 0 {
        ts.free_row_count(db, n.table)
    } else {
        ts.get(n.table, n.mask).map_or(0, |s| s.rows.len())
    }
}

/// Evaluate with per-node row restrictions (the pipelined executors narrow
/// nodes to score-ordered prefixes or single tuples).
pub fn evaluate_cn_with(
    db: &Database,
    cn: &CandidateNetwork,
    rows_of: &dyn Fn(usize) -> Vec<RowId>,
    stats: &ExecStats,
) -> Vec<JoinedResult> {
    let n = cn.nodes.len();
    if n == 0 {
        return Vec::new();
    }
    // BFS placement order from node 0.
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n]; // edge indices
    for (ei, e) in cn.edges.iter().enumerate() {
        adj[e.a].push(ei);
        adj[e.b].push(ei);
    }
    let mut order = vec![0usize];
    let mut join_via: Vec<Option<usize>> = vec![None; n]; // edge used to attach
    let mut placed = vec![false; n];
    placed[0] = true;
    let mut qi = 0;
    while qi < order.len() {
        let u = order[qi];
        qi += 1;
        for &ei in &adj[u] {
            let e = &cn.edges[ei];
            let v = if e.a == u { e.b } else { e.a };
            if !placed[v] {
                placed[v] = true;
                join_via[v] = Some(ei);
                order.push(v);
            }
        }
    }
    debug_assert_eq!(order.len(), n, "CN must be connected");

    // slot position of each node in the intermediate result
    let mut slot = vec![0usize; n];
    for (s, &node) in order.iter().enumerate() {
        slot[node] = s;
    }

    let first_rows = rows_of(order[0]);
    stats.add_scanned(first_rows.len() as u64);
    let mut inter = seed(&first_rows);
    for &node in order.iter().skip(1) {
        if inter.is_empty() {
            break;
        }
        let ei = join_via[node].expect("non-root placed via an edge");
        let e = &cn.edges[ei];
        let parent = if e.a == node { e.b } else { e.a };
        let se = &db.schema_graph().edges()[e.schema_edge];
        // column on each side: FK side uses fk_column, PK side pk_column
        let (parent_col, node_col) = if e.from_side_is(parent) {
            (se.fk_column, se.pk_column)
        } else {
            (se.pk_column, se.fk_column)
        };
        let rows = rows_of(node);
        inter = hash_join(
            &inter,
            slot[parent],
            db.table(cn.nodes[parent].table),
            parent_col,
            db.table(cn.nodes[node].table),
            &rows,
            node_col,
            stats,
        );
    }

    inter
        .into_iter()
        .map(|row_ids| {
            // reorder slots back to CN node order
            let mut tuples = vec![TupleId::new(cn.nodes[0].table, RowId(0)); n];
            for (s, &node) in order.iter().enumerate() {
                tuples[node] = TupleId::new(cn.nodes[node].table, row_ids[s]);
            }
            JoinedResult { tuples }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cn::{CnEdge, CnNode};
    use kwdb_relational::database::dblp_schema;

    fn db() -> Database {
        let mut db = Database::new();
        dblp_schema(&mut db).unwrap();
        db.insert("conference", vec![1.into(), "SIGMOD".into(), 2007.into()])
            .unwrap();
        db.insert("author", vec![1.into(), "Jennifer Widom".into()])
            .unwrap();
        db.insert("author", vec![2.into(), "Serge Abiteboul".into()])
            .unwrap();
        db.insert(
            "paper",
            vec![10.into(), "XML keyword search".into(), 1.into()],
        )
        .unwrap();
        db.insert("paper", vec![11.into(), "Data on the Web".into(), 1.into()])
            .unwrap();
        db.insert("write", vec![100.into(), 1.into(), 10.into()])
            .unwrap();
        db.insert("write", vec![101.into(), 2.into(), 11.into()])
            .unwrap();
        db.insert("write", vec![102.into(), 2.into(), 10.into()])
            .unwrap();
        db.build_text_index();
        db
    }

    /// author^{widom} — write — paper^{xml}
    fn awp_cn(db: &Database) -> CandidateNetwork {
        let a = db.table_id("author").unwrap();
        let p = db.table_id("paper").unwrap();
        let w = db.table_id("write").unwrap();
        let edges = db.schema_graph().edges();
        let se_wa = edges.iter().position(|e| e.from == w && e.to == a).unwrap();
        let se_wp = edges.iter().position(|e| e.from == w && e.to == p).unwrap();
        CandidateNetwork {
            nodes: vec![
                CnNode {
                    table: a,
                    mask: 0b01,
                },
                CnNode { table: w, mask: 0 },
                CnNode {
                    table: p,
                    mask: 0b10,
                },
            ],
            edges: vec![
                CnEdge {
                    a: 1,
                    b: 0,
                    schema_edge: se_wa,
                    a_is_from: true,
                },
                CnEdge {
                    a: 1,
                    b: 2,
                    schema_edge: se_wp,
                    a_is_from: true,
                },
            ],
        }
    }

    #[test]
    fn evaluates_joining_trees() {
        let db = db();
        let ts = TupleSets::build(&db, &["widom", "xml"]).unwrap();
        let cn = awp_cn(&db);
        let stats = ExecStats::new();
        let res = evaluate_cn(&db, &cn, &ts, &stats);
        // Widom wrote paper 10 (xml): exactly one joining tree.
        assert_eq!(res.len(), 1);
        let r = &res[0];
        assert_eq!(db.format_tuple(r.tuples[0]), "author(1, Jennifer Widom)");
        assert!(db.format_tuple(r.tuples[2]).contains("XML"));
        assert!(stats.snapshot().joins_executed >= 2);
    }

    #[test]
    fn empty_tuple_set_gives_no_results() {
        let db = db();
        let ts = TupleSets::build(&db, &["widom", "zzzz"]).unwrap();
        let cn = awp_cn(&db); // masks won't exist in ts
        let stats = ExecStats::new();
        let res = evaluate_cn(&db, &cn, &ts, &stats);
        assert!(res.is_empty());
    }

    #[test]
    fn row_restriction_narrows_results() {
        let db = db();
        let ts = TupleSets::build(&db, &["abiteboul", "xml"]).unwrap();
        // author^{abiteboul} — W — paper^{xml}: Abiteboul co-wrote paper 10
        let cn = awp_cn(&db);
        let stats = ExecStats::new();
        let all = evaluate_cn(&db, &cn, &ts, &stats);
        assert_eq!(all.len(), 1);
        // restrict the write node to row 0 only → no join
        let restricted = evaluate_cn_with(
            &db,
            &cn,
            &|i| {
                if i == 1 {
                    vec![RowId(0)]
                } else {
                    default_rows(&db, &cn, &ts, i)
                }
            },
            &stats,
        );
        assert!(restricted.is_empty());
    }

    #[test]
    fn self_join_cn_two_papers_one_author() {
        // paper^{xml} ← W → author^{abiteboul} ← W → paper^{web}
        let db = db();
        let ts = TupleSets::build(&db, &["xml", "abiteboul", "web"]).unwrap();
        let a = db.table_id("author").unwrap();
        let p = db.table_id("paper").unwrap();
        let w = db.table_id("write").unwrap();
        let edges = db.schema_graph().edges();
        let se_wa = edges.iter().position(|e| e.from == w && e.to == a).unwrap();
        let se_wp = edges.iter().position(|e| e.from == w && e.to == p).unwrap();
        let cn = CandidateNetwork {
            nodes: vec![
                CnNode {
                    table: p,
                    mask: 0b001,
                }, // xml
                CnNode { table: w, mask: 0 },
                CnNode {
                    table: a,
                    mask: 0b010,
                }, // abiteboul
                CnNode { table: w, mask: 0 },
                CnNode {
                    table: p,
                    mask: 0b100,
                }, // web
            ],
            edges: vec![
                CnEdge {
                    a: 1,
                    b: 0,
                    schema_edge: se_wp,
                    a_is_from: true,
                },
                CnEdge {
                    a: 1,
                    b: 2,
                    schema_edge: se_wa,
                    a_is_from: true,
                },
                CnEdge {
                    a: 3,
                    b: 2,
                    schema_edge: se_wa,
                    a_is_from: true,
                },
                CnEdge {
                    a: 3,
                    b: 4,
                    schema_edge: se_wp,
                    a_is_from: true,
                },
            ],
        };
        let stats = ExecStats::new();
        let res = evaluate_cn(&db, &cn, &ts, &stats);
        // Abiteboul wrote both paper 10 (xml) and 11 (web): one tree.
        assert_eq!(res.len(), 1);
        let r = &res[0];
        assert_ne!(r.tuples[1], r.tuples[3], "two distinct write tuples");
        assert_ne!(r.tuples[0], r.tuples[4]);
    }
}
