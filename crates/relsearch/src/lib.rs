//! Relational keyword search: the DISCOVER/SPARK family.
//!
//! Keyword search over a relational database answers a query
//! `Q = {k₁, …, k_l}` with *joining trees of tuples*: minimal trees of
//! FK-connected tuples that together contain every keyword (tutorial
//! slides 28, 44, 115–117). The pipeline:
//!
//! 1. [`tupleset`] — partition each table's keyword-matching rows into
//!    *tuple sets* `R^K` (rows containing exactly the keyword subset `K`);
//! 2. [`cn`] — enumerate *candidate networks* (CNs): schema-level join trees
//!    over tuple sets that are total and minimal covers of the query,
//!    breadth-first with canonical-form duplicate elimination
//!    (Hristidis & Papakonstantinou VLDB 02; Markowetz et al. SIGMOD 07);
//! 3. [`eval`] — evaluate a CN bottom-up with hash joins;
//! 4. [`topk`] — top-k executors over many CNs: Naive, Sparse, and the
//!    bound-driven Global Pipeline (DISCOVER2, VLDB 03);
//! 5. [`spark`] — SPARK's non-monotonic virtual-document scoring with the
//!    Skyline-Sweep and Block-Pipeline algorithms (Luo et al., SIGMOD 07);
//! 6. [`mesh`] — shared execution across CNs with common subtrees
//!    (operator mesh, SIGMOD 07; SPARK2 partition graph, TKDE 11);
//! 7. [`parallel`] — multi-core CN partitioning, sharing-oblivious vs
//!    sharing-aware vs operator-level (Qin et al., VLDB 10);
//! 8. [`rdbms_power`] — distinct-core evaluation expressed purely as
//!    relational operators (Qin et al., SIGMOD 09);
//! 9. [`dbselect`] — keyword-relationship summaries for routing queries to
//!    the right database (Yu et al., SIGMOD 07; slide 168);
//! 10. [`timebound`] — budgeted search returning residual query forms for
//!     the unexplored space (Baid et al., ICDE 10; slides 119–120).

pub mod cn;
pub mod dbselect;
pub mod eval;
pub mod facets;
pub mod mesh;
pub mod parallel;
pub mod pexec;
pub mod rdbms_power;
pub mod score;
pub mod spark;
pub mod timebound;
pub mod topk;
pub mod tupleset;

pub use cn::{CandidateNetwork, CnGenConfig, CnGenerator};
pub use eval::{evaluate_cn, JoinedResult};
pub use facets::{FacetAccum, FacetRequest, Refinement, ResolvedFacet, ResolvedRefinement};
pub use score::{corpus_stats, ResultScorer};
pub use tupleset::{TupleSet, TupleSets};
