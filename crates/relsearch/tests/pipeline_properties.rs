//! Property tests over randomly generated databases: the four top-k
//! executors and both SPARK sweeps must agree with their naive baselines,
//! and generated CNs must always be structurally valid.

use kwdb_relational::database::dblp_schema;
use kwdb_relational::{Database, ExecStats};
use kwdb_relsearch::cn::{CnGenConfig, CnGenerator, MaskOracle};
use kwdb_relsearch::spark::{block_pipeline, naive_spark, skyline_sweep};
use kwdb_relsearch::topk::{global_pipeline, naive, single_pipeline, sparse, TopKQuery};
use kwdb_relsearch::{ResultScorer, TupleSets};

/// Random tiny DBLP instance: authors/papers carry words from a 4-word
/// vocabulary so keyword collisions and multi-matches happen constantly.
fn random_db(author_words: &[u8], paper_words: &[(u8, u8)], writes: &[(u8, u8)]) -> Database {
    const VOCAB: [&str; 4] = ["alpha", "beta", "gamma", "delta"];
    let mut db = Database::new();
    dblp_schema(&mut db).unwrap();
    db.insert("conference", vec![0.into(), "venue".into(), 2000.into()])
        .unwrap();
    for (i, &w) in author_words.iter().enumerate() {
        db.insert(
            "author",
            vec![(i as i64).into(), VOCAB[w as usize % 4].into()],
        )
        .unwrap();
    }
    for (i, &(w1, w2)) in paper_words.iter().enumerate() {
        db.insert(
            "paper",
            vec![
                (i as i64).into(),
                format!("{} {}", VOCAB[w1 as usize % 4], VOCAB[w2 as usize % 4]).into(),
                0.into(),
            ],
        )
        .unwrap();
    }
    for (i, &(a, p)) in writes.iter().enumerate() {
        if author_words.is_empty() || paper_words.is_empty() {
            break;
        }
        db.insert(
            "write",
            vec![
                (i as i64).into(),
                ((a as usize % author_words.len()) as i64).into(),
                ((p as usize % paper_words.len()) as i64).into(),
            ],
        )
        .unwrap();
    }
    db.build_text_index();
    db
}

use kwdb_common::Rng;

fn rand_authors(rng: &mut Rng, lo: usize, hi: usize) -> Vec<u8> {
    let n = rng.gen_range(lo..hi);
    (0..n).map(|_| rng.gen_range(0u8..4)).collect()
}

fn rand_papers(rng: &mut Rng, lo: usize, hi: usize) -> Vec<(u8, u8)> {
    let n = rng.gen_range(lo..hi);
    (0..n)
        .map(|_| (rng.gen_range(0u8..4), rng.gen_range(0u8..4)))
        .collect()
}

fn rand_writes(rng: &mut Rng, hi: usize) -> Vec<(u8, u8)> {
    let n = rng.gen_index(hi);
    (0..n)
        .map(|_| (rng.gen_range(0u8..8), rng.gen_range(0u8..8)))
        .collect()
}

#[test]
fn all_executors_agree() {
    let mut rng = Rng::seed_from_u64(91);
    for _ in 0..24 {
        let authors = rand_authors(&mut rng, 1, 6);
        let papers = rand_papers(&mut rng, 1, 8);
        let writes = rand_writes(&mut rng, 10);
        let k = rng.gen_range(1usize..6);
        let db = random_db(&authors, &papers, &writes);
        let keywords = vec!["alpha".to_string(), "beta".to_string()];
        let ts = TupleSets::build(&db, &keywords).unwrap();
        let oracle = MaskOracle::from_tuplesets(&ts);
        let mut generator = CnGenerator::new(
            db.schema_graph(),
            &oracle,
            CnGenConfig {
                max_size: 4,
                dedupe: true,
                max_cns: 200,
            },
        );
        let cns = generator.generate();
        // structural validity of every generated CN
        for cn in &cns {
            assert!(cn.is_valid(ts.full_mask()), "invalid CN: {cn:?}");
        }
        let scorer = ResultScorer::new(&db);
        let q = TopKQuery {
            db: &db,
            ts: &ts,
            cns: &cns,
            scorer: &scorer,
            keywords: &keywords,
        };
        let s = ExecStats::new();
        let a: Vec<f64> = naive(&q, k, &s).iter().map(|r| r.score).collect();
        let b: Vec<f64> = sparse(&q, k, &s).iter().map(|r| r.score).collect();
        let c: Vec<f64> = single_pipeline(&q, k, &s).iter().map(|r| r.score).collect();
        let d: Vec<f64> = global_pipeline(&q, k, &s).iter().map(|r| r.score).collect();
        assert_eq!(&a, &b, "sparse mismatch");
        assert_eq!(&a, &c, "single pipeline mismatch");
        assert_eq!(&a, &d, "global pipeline mismatch");
    }
}

#[test]
fn spark_sweeps_agree_with_naive() {
    let mut rng = Rng::seed_from_u64(92);
    for _ in 0..24 {
        let authors = rand_authors(&mut rng, 1, 5);
        let papers = rand_papers(&mut rng, 1, 6);
        let writes = rand_writes(&mut rng, 8);
        let db = random_db(&authors, &papers, &writes);
        let keywords = vec!["alpha".to_string(), "gamma".to_string()];
        let ts = TupleSets::build(&db, &keywords).unwrap();
        let oracle = MaskOracle::from_tuplesets(&ts);
        let mut generator = CnGenerator::new(
            db.schema_graph(),
            &oracle,
            CnGenConfig {
                max_size: 4,
                dedupe: true,
                max_cns: 100,
            },
        );
        let cns = generator.generate();
        let scorer = ResultScorer::new(&db);
        let q = TopKQuery {
            db: &db,
            ts: &ts,
            cns: &cns,
            scorer: &scorer,
            keywords: &keywords,
        };
        let s = ExecStats::new();
        let a: Vec<f64> = naive_spark(&q, 4, &s).iter().map(|r| r.score).collect();
        let b: Vec<f64> = skyline_sweep(&q, 4, &s).iter().map(|r| r.score).collect();
        let c: Vec<f64> = block_pipeline(&q, 4, 3, &s)
            .iter()
            .map(|r| r.score)
            .collect();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-9, "skyline mismatch: {a:?} vs {b:?}");
        }
        assert_eq!(a.len(), c.len());
        for (x, y) in a.iter().zip(&c) {
            assert!((x - y).abs() < 1e-9, "block mismatch: {a:?} vs {c:?}");
        }
    }
}

#[test]
fn results_are_duplicate_free_and_covering() {
    let mut rng = Rng::seed_from_u64(93);
    for _ in 0..24 {
        let authors = rand_authors(&mut rng, 1, 5);
        let papers = rand_papers(&mut rng, 1, 6);
        let writes = rand_writes(&mut rng, 8);
        let db = random_db(&authors, &papers, &writes);
        let keywords = vec!["alpha".to_string(), "beta".to_string()];
        let ts = TupleSets::build(&db, &keywords).unwrap();
        let oracle = MaskOracle::from_tuplesets(&ts);
        let mut generator = CnGenerator::new(
            db.schema_graph(),
            &oracle,
            CnGenConfig {
                max_size: 4,
                dedupe: true,
                max_cns: 200,
            },
        );
        let cns = generator.generate();
        let scorer = ResultScorer::new(&db);
        let q = TopKQuery {
            db: &db,
            ts: &ts,
            cns: &cns,
            scorer: &scorer,
            keywords: &keywords,
        };
        let s = ExecStats::new();
        let all = naive(&q, 10_000, &s);
        let mut seen = std::collections::HashSet::new();
        for r in &all {
            let mut sig = r.result.tuples.clone();
            sig.sort();
            assert!(seen.insert(sig), "duplicate joining tree");
            let toks: Vec<String> = r
                .result
                .tuples
                .iter()
                .flat_map(|&t| db.tuple_tokens(t))
                .collect();
            for kw in &keywords {
                assert!(toks.iter().any(|t| t == kw), "result missing {kw}");
            }
        }
    }
}
