//! Label-path statistics: the data-statistics backbone of structure inference.
//!
//! XReal (Bao et al., ICDE 09) infers the best *search-for node type* by
//! scoring each label path by how many of its instances' subtrees contain
//! each query keyword; XBridge sketches structure + value distributions per
//! path. [`PathStats`] collects exactly those counts in one pass.

use crate::tree::{NodeId, XmlTree};
use kwdb_common::text::tokenize;
use std::collections::{HashMap, HashSet};

/// Statistics for one root-to-node label path (a "node type").
#[derive(Debug, Clone, Default)]
pub struct PathStat {
    /// Number of nodes with this label path.
    pub count: usize,
    /// Total text tokens in the subtrees of this path's nodes.
    pub token_count: usize,
    /// term → number of this path's nodes whose *subtree* contains the term.
    pub term_nodes: HashMap<String, usize>,
}

/// Per-path statistics for a whole tree.
#[derive(Debug, Clone, Default)]
pub struct PathStats {
    paths: HashMap<String, PathStat>,
    avg_leaf_depth: f64,
}

impl PathStats {
    /// Collect statistics in one pass: each term occurrence is credited to
    /// every ancestor's path once per (ancestor, term).
    pub fn build(tree: &XmlTree) -> Self {
        let mut paths: HashMap<String, PathStat> = HashMap::new();
        // node counts per path
        let mut node_paths: Vec<String> = Vec::with_capacity(tree.len());
        for n in tree.iter() {
            let p = tree.label_path(n);
            paths.entry(p.clone()).or_default().count += 1;
            node_paths.push(p);
        }
        // term containment: walk up from each text node, dedup (node, term)
        let mut seen: HashSet<(NodeId, String)> = HashSet::new();
        for n in tree.iter() {
            let Some(text) = tree.text(n) else { continue };
            for tok in tokenize(text) {
                // token totals: every occurrence is inside every ancestor's subtree
                let mut anc = Some(n);
                while let Some(x) = anc {
                    paths
                        .get_mut(&node_paths[x.0 as usize])
                        .expect("path recorded in first pass")
                        .token_count += 1;
                    anc = tree.parent(x);
                }
                let mut cur = Some(n);
                while let Some(x) = cur {
                    if seen.insert((x, tok.clone())) {
                        let p = &node_paths[x.0 as usize];
                        *paths
                            .get_mut(p)
                            .expect("path recorded in first pass")
                            .term_nodes
                            .entry(tok.clone())
                            .or_insert(0) += 1;
                    } else {
                        // ancestors above already credited for this term via
                        // an earlier occurrence under the same node
                        break;
                    }
                    cur = tree.parent(x);
                }
            }
        }
        PathStats {
            paths,
            avg_leaf_depth: tree.avg_leaf_depth(),
        }
    }

    /// Number of nodes with label path `path`.
    pub fn node_count(&self, path: &str) -> usize {
        self.paths.get(path).map_or(0, |s| s.count)
    }

    /// Total subtree tokens across `path`'s nodes — the language-model
    /// denominator for term-density scoring.
    pub fn token_count(&self, path: &str) -> usize {
        self.paths.get(path).map_or(0, |s| s.token_count)
    }

    /// Number of `path` nodes whose subtree contains `term`.
    pub fn term_node_count(&self, path: &str, term: &str) -> usize {
        self.paths
            .get(path)
            .and_then(|s| s.term_nodes.get(term))
            .copied()
            .unwrap_or(0)
    }

    /// All label paths.
    pub fn paths(&self) -> impl Iterator<Item = (&str, &PathStat)> {
        self.paths.iter().map(|(p, s)| (p.as_str(), s))
    }

    /// Average leaf depth of the underlying tree.
    pub fn avg_leaf_depth(&self) -> f64 {
        self.avg_leaf_depth
    }

    /// Depth of a path string (number of labels).
    pub fn path_depth(path: &str) -> usize {
        path.split('/').filter(|s| !s.is_empty()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::XmlTree;

    fn tree() -> XmlTree {
        let mut b = XmlTree::builder("bib");
        b.open("conf")
            .leaf("name", "SIGMOD")
            .open("paper")
            .leaf("title", "XML search")
            .leaf("author", "Widom")
            .close()
            .open("paper")
            .leaf("title", "graph search")
            .close()
            .close()
            .open("journal")
            .open("paper")
            .leaf("title", "XML views")
            .close()
            .close();
        b.build()
    }

    #[test]
    fn node_counts_per_path() {
        let s = PathStats::build(&tree());
        assert_eq!(s.node_count("/bib/conf/paper"), 2);
        assert_eq!(s.node_count("/bib/journal/paper"), 1);
        assert_eq!(s.node_count("/bib/conf/paper/title"), 2);
        assert_eq!(s.node_count("/nope"), 0);
    }

    #[test]
    fn term_containment_counts_subtrees() {
        let s = PathStats::build(&tree());
        // "xml" appears under one conf paper and one journal paper
        assert_eq!(s.term_node_count("/bib/conf/paper", "xml"), 1);
        assert_eq!(s.term_node_count("/bib/journal/paper", "xml"), 1);
        // "search" under both conf papers
        assert_eq!(s.term_node_count("/bib/conf/paper", "search"), 2);
        // propagated to the root
        assert_eq!(s.term_node_count("/bib", "search"), 1);
        assert_eq!(s.term_node_count("/bib/conf/paper", "widom"), 1);
        assert_eq!(s.term_node_count("/bib/journal/paper", "widom"), 0);
    }

    #[test]
    fn repeated_term_in_subtree_counts_once_per_node() {
        let mut b = XmlTree::builder("r");
        b.open("p").leaf("a", "dup").leaf("b", "dup").close();
        let s = PathStats::build(&b.build());
        assert_eq!(s.term_node_count("/r/p", "dup"), 1);
        assert_eq!(s.term_node_count("/r/p/a", "dup"), 1);
        assert_eq!(s.term_node_count("/r", "dup"), 1);
    }

    #[test]
    fn token_counts_accumulate_to_ancestors() {
        let s = PathStats::build(&tree());
        // total tokens: sigmod(1) + xml search(2) + widom(1) + graph search(2)
        //             + xml views(2) = 8
        assert_eq!(s.token_count("/bib"), 8);
        assert_eq!(s.token_count("/bib/conf"), 6);
        assert_eq!(s.token_count("/bib/conf/paper"), 5);
        assert_eq!(s.token_count("/bib/conf/paper/title"), 4);
        assert_eq!(s.token_count("/bib/journal/paper"), 2);
        assert_eq!(s.token_count("/nope"), 0);
    }

    #[test]
    fn path_depth_helper() {
        assert_eq!(PathStats::path_depth("/conf/paper"), 2);
        assert_eq!(PathStats::path_depth("/"), 0);
    }
}
