//! Keyword inverted lists over an XML tree.
//!
//! For each keyword the index stores the document-ordered list of nodes whose
//! *direct* text contains it. Because [`NodeId`] order equals
//! document order, the `lm`/`rm` probes the SLCA family needs are plain
//! binary searches — served by the shared [`kwdb_common::index`] kernels on
//! the plain layout and by the block skip directory on the compressed one.
//!
//! Storage lives in a [`SegmentedIndex`] keyed by the term dictionary: every
//! label and token is normalized through [`normalize_term`] and interned
//! once, and query paths resolve each keyword to a [`Sym`] a single time
//! via [`XmlIndex::sym`]. Lists are handed out as layout-agnostic
//! [`Postings`] views supporting iteration, cursors, and the probes. The
//! batch build seals and compacts into exactly one immutable segment
//! (`finalize_layout`), so the segment census reported by
//! [`XmlIndex::segment_counts`] is `{realtime: 0, sealed: 1}` for any
//! non-empty document.

use crate::tree::{NodeId, XmlTree};
use kwdb_common::index::{kernels, IndexStats, Layout, Postings, SegmentCounts, SegmentedIndex};
use kwdb_common::intern::Sym;
use kwdb_common::text::{normalize_term, tokenize};
use std::time::Duration;

/// A node *is* its posting: document-ordered, deduplicated on insert.
impl kwdb_common::index::Posting for NodeId {
    type SortKey = NodeId;

    fn sort_key(&self) -> NodeId {
        *self
    }

    fn key64(&self) -> u64 {
        self.0 as u64
    }

    fn from_parts(key: u64, _extras: &[u64]) -> Self {
        NodeId(key as u32)
    }

    fn coalesce(&mut self, other: &Self) -> bool {
        self == other
    }

    fn same_doc(&self, other: &Self) -> bool {
        self == other
    }
}

/// Inverted index: keyword → sorted node list.
#[derive(Debug, Clone, Default)]
pub struct XmlIndex {
    store: SegmentedIndex<NodeId>,
    build_time: Option<Duration>,
}

impl XmlIndex {
    /// Build the index by tokenizing every node's direct text. Element labels
    /// are also indexed (attribute marker stripped, lower-cased), so queries
    /// can match structure terms like `paper` — the tutorial's
    /// Q = {keyword, Mark} relies on label matches.
    pub fn build(tree: &XmlTree) -> Self {
        Self::build_with(tree, Layout::default())
    }

    /// Build with an explicit posting-list [`Layout`].
    pub fn build_with(tree: &XmlTree, layout: Layout) -> Self {
        let start = std::time::Instant::now();
        let mut store: SegmentedIndex<NodeId> = SegmentedIndex::new();
        for n in tree.iter() {
            let label = normalize_term(tree.label(n));
            if !label.is_empty() {
                store.add(&label, n);
            }
            if let Some(text) = tree.text(n) {
                for tok in tokenize(text) {
                    store.add(&tok, n);
                }
            }
        }
        // Pre-order iteration emits nodes in document order, so every list is
        // already sorted and deduplicated; finalize seals + compacts into a
        // single immutable segment in the requested layout.
        store.finalize_layout(layout);
        XmlIndex {
            store,
            build_time: Some(start.elapsed()),
        }
    }

    /// The configured physical layout.
    pub fn layout(&self) -> Layout {
        self.store.layout()
    }

    /// Re-encode the posting lists into `layout` (contents unchanged).
    pub fn set_layout(&mut self, layout: Layout) {
        self.store.set_layout(layout);
    }

    /// Resolve a query term to its dense id — one dictionary lookup. Do this
    /// once per query term, then fetch lists by `Sym`.
    pub fn sym(&self, term: &str) -> Option<Sym> {
        self.store.sym(term)
    }

    /// Document-ordered match list for `term` (the empty view if absent).
    pub fn nodes(&self, term: &str) -> Postings<'_, NodeId> {
        self.store.postings_str(term)
    }

    /// Document-ordered match list for an already-resolved term.
    pub fn nodes_sym(&self, sym: Sym) -> Postings<'_, NodeId> {
        self.store.postings(sym)
    }

    /// Number of nodes directly containing `term`.
    pub fn freq(&self, term: &str) -> usize {
        self.nodes(term).len()
    }

    /// Match lists for all `terms`, shortest first (the SLCA drivers iterate
    /// the smallest list). Returns `None` if any term has no matches —
    /// AND semantics make the result empty in that case.
    pub fn lists_for<'a, S: AsRef<str>>(
        &'a self,
        terms: &[S],
    ) -> Option<Vec<Postings<'a, NodeId>>> {
        let mut lists: Vec<Postings<'a, NodeId>> = Vec::with_capacity(terms.len());
        for t in terms {
            let l = self.nodes(t.as_ref());
            if l.is_empty() {
                return None;
            }
            lists.push(l);
        }
        lists.sort_by_key(|l| l.len());
        Some(lists)
    }

    /// Smallest node in a raw sorted `list` that is `≥ v` in document order
    /// (XKSearch's *rm* probe). `None` if all nodes precede `v`. Slice
    /// helper for algorithm-internal lists; index lists take the same probe
    /// on their [`Postings`] view.
    pub fn right_match(list: &[NodeId], v: NodeId) -> Option<NodeId> {
        kernels::right_match(list, v)
    }

    /// Largest node in a raw sorted `list` that is `≤ v` (XKSearch's *lm*
    /// probe).
    pub fn left_match(list: &[NodeId], v: NodeId) -> Option<NodeId> {
        kernels::left_match(list, v)
    }

    /// All indexed terms, in dictionary id order.
    pub fn terms(&self) -> impl Iterator<Item = &str> {
        self.store.terms()
    }

    /// Whole-index size figures, including the build wall-clock.
    pub fn index_stats(&self) -> IndexStats {
        self.store.index_stats().with_build(self.build_time)
    }

    /// Realtime/sealed segment census. A batch-built index is fully
    /// compacted: one sealed segment, nothing in realtime.
    pub fn segment_counts(&self) -> SegmentCounts {
        self.store.segment_counts()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::XmlTree;

    fn tree() -> XmlTree {
        let mut b = XmlTree::builder("conf");
        b.leaf("name", "SIGMOD")
            .open("paper")
            .leaf("title", "keyword search")
            .leaf("author", "Mark")
            .close()
            .open("paper")
            .leaf("title", "RDF keyword")
            .leaf("author", "Zhang")
            .close();
        b.build()
    }

    #[test]
    fn text_terms_indexed_in_doc_order() {
        let t = tree();
        let ix = XmlIndex::build(&t);
        let kw = ix.nodes("keyword").to_vec();
        assert_eq!(kw.len(), 2);
        assert!(kw[0] < kw[1]);
        assert_eq!(ix.freq("mark"), 1);
        assert_eq!(ix.freq("nothing"), 0);
    }

    #[test]
    fn labels_are_indexed() {
        let t = tree();
        let ix = XmlIndex::build(&t);
        assert_eq!(ix.freq("paper"), 2);
        assert_eq!(ix.freq("conf"), 1);
    }

    #[test]
    fn lists_for_orders_by_length_and_detects_missing() {
        let t = tree();
        let ix = XmlIndex::build(&t);
        let lists = ix.lists_for(&["keyword", "mark"]).unwrap();
        assert!(lists[0].len() <= lists[1].len());
        assert!(ix.lists_for(&["keyword", "zzz"]).is_none());
    }

    #[test]
    fn left_right_match_probes() {
        let list = [NodeId(2), NodeId(5), NodeId(9)];
        assert_eq!(XmlIndex::right_match(&list, NodeId(0)), Some(NodeId(2)));
        assert_eq!(XmlIndex::right_match(&list, NodeId(5)), Some(NodeId(5)));
        assert_eq!(XmlIndex::right_match(&list, NodeId(6)), Some(NodeId(9)));
        assert_eq!(XmlIndex::right_match(&list, NodeId(10)), None);
        assert_eq!(XmlIndex::left_match(&list, NodeId(10)), Some(NodeId(9)));
        assert_eq!(XmlIndex::left_match(&list, NodeId(5)), Some(NodeId(5)));
        assert_eq!(XmlIndex::left_match(&list, NodeId(1)), None);
    }

    #[test]
    fn attribute_labels_indexed_without_at() {
        let mut b = XmlTree::builder("movie");
        b.leaf("@year", "1980");
        let t = b.build();
        let ix = XmlIndex::build(&t);
        assert_eq!(ix.freq("year"), 1);
        assert_eq!(ix.freq("1980"), 1);
    }

    #[test]
    fn sym_api_matches_string_api() {
        let t = tree();
        let ix = XmlIndex::build(&t);
        let s = ix.sym("keyword").expect("indexed term resolves");
        assert_eq!(ix.nodes_sym(s), ix.nodes("keyword"));
        assert!(ix.sym("zzz").is_none());
    }

    #[test]
    fn index_stats_report_sizes_and_build_time() {
        let t = tree();
        let ix = XmlIndex::build(&t);
        let stats = ix.index_stats();
        assert!(stats.terms > 0);
        assert!(stats.postings >= stats.terms);
        assert_eq!(
            stats.posting_bytes,
            stats.postings * std::mem::size_of::<NodeId>()
        );
        assert!(stats.build.is_some(), "batch build is timed");
        let segs = ix.segment_counts();
        assert_eq!((segs.realtime, segs.sealed), (0, 1), "batch build compacts");
    }

    #[test]
    fn block_layout_answers_identically() {
        let t = tree();
        let plain = XmlIndex::build(&t);
        let blocks = XmlIndex::build_with(&t, Layout::Blocks);
        assert_eq!(blocks.layout(), Layout::Blocks);
        for term in plain.terms() {
            assert_eq!(blocks.nodes(term).to_vec(), plain.nodes(term).to_vec());
            assert_eq!(blocks.freq(term), plain.freq(term));
        }
    }
}
