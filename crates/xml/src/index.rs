//! Keyword inverted lists over an XML tree.
//!
//! For each keyword the index stores the document-ordered list of nodes whose
//! *direct* text contains it. Because [`NodeId`] order equals
//! document order, the `lm`/`rm` probes the SLCA family needs are plain
//! binary searches.

use crate::tree::{NodeId, XmlTree};
use kwdb_common::text::tokenize;
use std::collections::HashMap;

/// Inverted index: keyword → sorted node list.
#[derive(Debug, Clone, Default)]
pub struct XmlIndex {
    lists: HashMap<String, Vec<NodeId>>,
}

impl XmlIndex {
    /// Build the index by tokenizing every node's direct text. Element labels
    /// are also indexed (lower-cased), so queries can match structure terms
    /// like `paper` — the tutorial's Q = {keyword, Mark} relies on label
    /// matches.
    pub fn build(tree: &XmlTree) -> Self {
        let mut lists: HashMap<String, Vec<NodeId>> = HashMap::new();
        for n in tree.iter() {
            let label = tree.label(n).trim_start_matches('@').to_lowercase();
            if !label.is_empty() {
                let list = lists.entry(label).or_default();
                if list.last() != Some(&n) {
                    list.push(n);
                }
            }
            if let Some(text) = tree.text(n) {
                for tok in tokenize(text) {
                    let list = lists.entry(tok).or_default();
                    if list.last() != Some(&n) {
                        list.push(n);
                    }
                }
            }
        }
        // Lists are sorted by construction (pre-order iteration).
        XmlIndex { lists }
    }

    /// Document-ordered match list for `term` (empty if absent).
    pub fn nodes(&self, term: &str) -> &[NodeId] {
        self.lists.get(term).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Number of nodes directly containing `term`.
    pub fn freq(&self, term: &str) -> usize {
        self.nodes(term).len()
    }

    /// Match lists for all `terms`, shortest first (the SLCA drivers iterate
    /// the smallest list). Returns `None` if any term has no matches —
    /// AND semantics make the result empty in that case.
    pub fn lists_for<'a, S: AsRef<str>>(&'a self, terms: &[S]) -> Option<Vec<&'a [NodeId]>> {
        let mut lists: Vec<&[NodeId]> = Vec::with_capacity(terms.len());
        for t in terms {
            let l = self.nodes(t.as_ref());
            if l.is_empty() {
                return None;
            }
            lists.push(l);
        }
        lists.sort_by_key(|l| l.len());
        Some(lists)
    }

    /// Smallest node in `list` that is `≥ v` in document order (XKSearch's
    /// *rm* probe). `None` if all nodes precede `v`.
    pub fn right_match(list: &[NodeId], v: NodeId) -> Option<NodeId> {
        let i = list.partition_point(|&x| x < v);
        list.get(i).copied()
    }

    /// Largest node in `list` that is `≤ v` (XKSearch's *lm* probe).
    pub fn left_match(list: &[NodeId], v: NodeId) -> Option<NodeId> {
        let i = list.partition_point(|&x| x <= v);
        i.checked_sub(1).map(|j| list[j])
    }

    /// All indexed terms.
    pub fn terms(&self) -> impl Iterator<Item = &str> {
        self.lists.keys().map(|s| s.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::XmlTree;

    fn tree() -> XmlTree {
        let mut b = XmlTree::builder("conf");
        b.leaf("name", "SIGMOD")
            .open("paper")
            .leaf("title", "keyword search")
            .leaf("author", "Mark")
            .close()
            .open("paper")
            .leaf("title", "RDF keyword")
            .leaf("author", "Zhang")
            .close();
        b.build()
    }

    #[test]
    fn text_terms_indexed_in_doc_order() {
        let t = tree();
        let ix = XmlIndex::build(&t);
        let kw = ix.nodes("keyword");
        assert_eq!(kw.len(), 2);
        assert!(kw[0] < kw[1]);
        assert_eq!(ix.freq("mark"), 1);
        assert_eq!(ix.freq("nothing"), 0);
    }

    #[test]
    fn labels_are_indexed() {
        let t = tree();
        let ix = XmlIndex::build(&t);
        assert_eq!(ix.freq("paper"), 2);
        assert_eq!(ix.freq("conf"), 1);
    }

    #[test]
    fn lists_for_orders_by_length_and_detects_missing() {
        let t = tree();
        let ix = XmlIndex::build(&t);
        let lists = ix.lists_for(&["keyword", "mark"]).unwrap();
        assert!(lists[0].len() <= lists[1].len());
        assert!(ix.lists_for(&["keyword", "zzz"]).is_none());
    }

    #[test]
    fn left_right_match_probes() {
        let list = [NodeId(2), NodeId(5), NodeId(9)];
        assert_eq!(XmlIndex::right_match(&list, NodeId(0)), Some(NodeId(2)));
        assert_eq!(XmlIndex::right_match(&list, NodeId(5)), Some(NodeId(5)));
        assert_eq!(XmlIndex::right_match(&list, NodeId(6)), Some(NodeId(9)));
        assert_eq!(XmlIndex::right_match(&list, NodeId(10)), None);
        assert_eq!(XmlIndex::left_match(&list, NodeId(10)), Some(NodeId(9)));
        assert_eq!(XmlIndex::left_match(&list, NodeId(5)), Some(NodeId(5)));
        assert_eq!(XmlIndex::left_match(&list, NodeId(1)), None);
    }

    #[test]
    fn attribute_labels_indexed_without_at() {
        let mut b = XmlTree::builder("movie");
        b.leaf("@year", "1980");
        let t = b.build();
        let ix = XmlIndex::build(&t);
        assert_eq!(ix.freq("year"), 1);
        assert_eq!(ix.freq("1980"), 1);
    }
}
