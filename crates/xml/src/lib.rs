//! XML tree substrate for kwdb.
//!
//! XML keyword search (SLCA/ELCA families, XSeek, XReal, snippets, …) runs
//! over a tree store with three essential services, all provided here:
//!
//! * an **arena tree** with pre-order node ids and parent/children/depth
//!   accessors — [`tree::XmlTree`];
//! * **Dewey ids** supporting O(depth) lowest-common-ancestor and document-
//!   order comparison — [`dewey::Dewey`];
//! * **keyword inverted lists** sorted in document order with the binary-
//!   search probes (`lm`/`rm` in XKSearch's terms) the SLCA algorithms are
//!   built from — [`index::XmlIndex`];
//! * **label-path statistics** (node counts and term distributions per
//!   root-to-node label path) that XReal/XBridge score structures with —
//!   [`stats::PathStats`].
//!
//! Trees come from the tiny [`parse`] module (enough XML for datasets and
//! tests: elements, attributes, text) or the programmatic
//! [`tree::XmlBuilder`].

pub mod dewey;
pub mod index;
pub mod parse;
pub mod stats;
pub mod tree;

pub use dewey::Dewey;
pub use index::XmlIndex;
pub use parse::parse_xml;
pub use stats::PathStats;
pub use tree::{NodeId, XmlBuilder, XmlTree};
