//! Arena XML tree with pre-order node ids and Dewey identifiers.

use crate::dewey::Dewey;
use kwdb_common::intern::{Interner, Sym};

/// Node identifier. Because the arena is filled in document (pre-)order,
/// `NodeId` order *is* document order — the inverted lists exploit this.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

#[derive(Debug, Clone)]
pub(crate) struct Node {
    pub label: Sym,
    pub parent: Option<NodeId>,
    pub children: Vec<NodeId>,
    pub text: Option<String>,
    pub dewey: Dewey,
    pub depth: u32,
}

/// An XML document as an arena of element nodes.
///
/// Text content lives on the element that directly contains it (mixed
/// content is concatenated). Attributes are modeled as child elements whose
/// label starts with `@`, which lets every algorithm treat them uniformly.
#[derive(Debug, Clone)]
pub struct XmlTree {
    pub(crate) nodes: Vec<Node>,
    pub(crate) labels: Interner,
}

impl XmlTree {
    /// Start building a tree whose root element has `label`.
    pub fn builder(label: &str) -> XmlBuilder {
        XmlBuilder::new(label)
    }

    pub fn root(&self) -> NodeId {
        NodeId(0)
    }

    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    pub fn label(&self, n: NodeId) -> &str {
        self.labels.resolve(self.nodes[n.0 as usize].label)
    }

    pub fn label_sym(&self, n: NodeId) -> Sym {
        self.nodes[n.0 as usize].label
    }

    pub fn parent(&self, n: NodeId) -> Option<NodeId> {
        self.nodes[n.0 as usize].parent
    }

    pub fn children(&self, n: NodeId) -> &[NodeId] {
        &self.nodes[n.0 as usize].children
    }

    pub fn text(&self, n: NodeId) -> Option<&str> {
        self.nodes[n.0 as usize].text.as_deref()
    }

    pub fn dewey(&self, n: NodeId) -> &Dewey {
        &self.nodes[n.0 as usize].dewey
    }

    pub fn depth(&self, n: NodeId) -> u32 {
        self.nodes[n.0 as usize].depth
    }

    /// Resolve a Dewey id back to the node carrying it, or `None` if no such
    /// node exists. O(depth).
    pub fn node_at(&self, d: &Dewey) -> Option<NodeId> {
        let mut cur = self.root();
        for &ord in d.components() {
            cur = *self.children(cur).get(ord as usize)?;
        }
        Some(cur)
    }

    /// Lowest common ancestor of two nodes.
    pub fn lca(&self, a: NodeId, b: NodeId) -> NodeId {
        let d = self.dewey(a).lca(self.dewey(b));
        self.node_at(&d).expect("LCA Dewey always resolves")
    }

    /// Is `a` an ancestor of `b` (proper)?
    pub fn is_ancestor(&self, a: NodeId, b: NodeId) -> bool {
        self.dewey(a).is_ancestor_of(self.dewey(b))
    }

    /// Pre-order iterator over all node ids.
    pub fn iter(&self) -> impl Iterator<Item = NodeId> {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Nodes in the subtree rooted at `n` (including `n`), document order.
    pub fn subtree(&self, n: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut stack = vec![n];
        while let Some(x) = stack.pop() {
            out.push(x);
            // push children reversed so pop yields document order
            for &c in self.children(x).iter().rev() {
                stack.push(c);
            }
        }
        out
    }

    /// Number of nodes in the subtree rooted at `n`.
    pub fn subtree_size(&self, n: NodeId) -> usize {
        self.subtree(n).len()
    }

    /// Root-to-node label path, e.g. `/conf/paper/title`.
    pub fn label_path(&self, n: NodeId) -> String {
        let mut parts = Vec::new();
        let mut cur = Some(n);
        while let Some(x) = cur {
            parts.push(self.label(x));
            cur = self.parent(x);
        }
        parts.reverse();
        format!("/{}", parts.join("/"))
    }

    /// All text in the subtree of `n`, concatenated in document order.
    pub fn subtree_text(&self, n: NodeId) -> String {
        let mut out = String::new();
        for x in self.subtree(n) {
            if let Some(t) = self.text(x) {
                if !out.is_empty() {
                    out.push(' ');
                }
                out.push_str(t);
            }
        }
        out
    }

    /// Subtree sizes for every node in one O(n) pass. Because node ids are
    /// pre-order, the subtree of `n` is exactly the id range
    /// `[n, n + sizes[n])` — the interval trick the SLCA/ELCA algorithms use.
    pub fn subtree_sizes(&self) -> Vec<u32> {
        let mut sizes = vec![1u32; self.nodes.len()];
        // children have larger ids than parents; accumulate in reverse
        for i in (0..self.nodes.len()).rev() {
            if let Some(p) = self.nodes[i].parent {
                sizes[p.0 as usize] += sizes[i];
            }
        }
        sizes
    }

    /// Average leaf depth, used by proximity discounting.
    pub fn avg_leaf_depth(&self) -> f64 {
        let leaves: Vec<u32> = self
            .iter()
            .filter(|&n| self.children(n).is_empty())
            .map(|n| self.depth(n))
            .collect();
        if leaves.is_empty() {
            0.0
        } else {
            leaves.iter().map(|&d| d as f64).sum::<f64>() / leaves.len() as f64
        }
    }

    /// Serialize back to XML text (for snippets and debugging).
    pub fn to_xml(&self, n: NodeId) -> String {
        let mut s = String::new();
        self.write_xml(n, &mut s);
        s
    }

    fn write_xml(&self, n: NodeId, out: &mut String) {
        let label = self.label(n);
        out.push('<');
        out.push_str(label);
        out.push('>');
        if let Some(t) = self.text(n) {
            out.push_str(t);
        }
        for &c in self.children(n) {
            self.write_xml(c, out);
        }
        out.push_str("</");
        out.push_str(label);
        out.push('>');
    }
}

/// Cursor-style builder producing an [`XmlTree`] in document order.
#[derive(Debug)]
pub struct XmlBuilder {
    nodes: Vec<Node>,
    labels: Interner,
    /// Stack of open elements.
    open: Vec<NodeId>,
}

impl XmlBuilder {
    pub fn new(root_label: &str) -> Self {
        let mut labels = Interner::new();
        let sym = labels.intern(root_label);
        let root = Node {
            label: sym,
            parent: None,
            children: Vec::new(),
            text: None,
            dewey: Dewey::root(),
            depth: 0,
        };
        XmlBuilder {
            nodes: vec![root],
            labels,
            open: vec![NodeId(0)],
        }
    }

    fn current(&self) -> NodeId {
        *self.open.last().expect("builder has no open element")
    }

    /// Open a child element and descend into it.
    pub fn open(&mut self, label: &str) -> &mut Self {
        let parent = self.current();
        let sym = self.labels.intern(label);
        let ord = self.nodes[parent.0 as usize].children.len() as u32;
        let dewey = self.nodes[parent.0 as usize].dewey.child(ord);
        let depth = self.nodes[parent.0 as usize].depth + 1;
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            label: sym,
            parent: Some(parent),
            children: Vec::new(),
            text: None,
            dewey,
            depth,
        });
        self.nodes[parent.0 as usize].children.push(id);
        self.open.push(id);
        self
    }

    /// Append text content to the current element.
    pub fn text(&mut self, t: &str) -> &mut Self {
        let cur = self.current();
        let slot = &mut self.nodes[cur.0 as usize].text;
        match slot {
            Some(existing) => {
                existing.push(' ');
                existing.push_str(t);
            }
            None => *slot = Some(t.to_string()),
        }
        self
    }

    /// Close the current element, ascending to its parent.
    pub fn close(&mut self) -> &mut Self {
        assert!(self.open.len() > 1, "cannot close the root element");
        self.open.pop();
        self
    }

    /// Shorthand: open an element, set text, close it.
    pub fn leaf(&mut self, label: &str, text: &str) -> &mut Self {
        self.open(label).text(text).close()
    }

    /// Finish. Panics if elements other than the root remain open — a
    /// construction bug, not a runtime condition.
    pub fn build(mut self) -> XmlTree {
        assert_eq!(self.open.len(), 1, "unclosed elements at build()");
        self.open.clear();
        XmlTree {
            nodes: self.nodes,
            labels: self.labels,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> XmlTree {
        let mut b = XmlTree::builder("conf");
        b.leaf("name", "SIGMOD")
            .leaf("year", "2007")
            .open("paper")
            .leaf("title", "keyword search")
            .leaf("author", "Mark")
            .close();
        b.build()
    }

    #[test]
    fn structure_is_document_order() {
        let t = sample();
        assert_eq!(t.len(), 6);
        assert_eq!(t.label(t.root()), "conf");
        let kids = t.children(t.root());
        assert_eq!(kids.len(), 3);
        assert_eq!(t.label(kids[2]), "paper");
        // NodeId order == document order
        let ids: Vec<u32> = t.iter().map(|n| n.0).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn dewey_assignment() {
        let t = sample();
        let paper = t.children(t.root())[2];
        assert_eq!(t.dewey(paper).components(), &[2]);
        let title = t.children(paper)[0];
        assert_eq!(t.dewey(title).components(), &[2, 0]);
        assert_eq!(t.node_at(t.dewey(title)), Some(title));
        assert_eq!(t.depth(title), 2);
    }

    #[test]
    fn lca_and_ancestor() {
        let t = sample();
        let paper = t.children(t.root())[2];
        let title = t.children(paper)[0];
        let author = t.children(paper)[1];
        assert_eq!(t.lca(title, author), paper);
        assert_eq!(t.lca(title, t.children(t.root())[0]), t.root());
        assert!(t.is_ancestor(t.root(), title));
        assert!(!t.is_ancestor(title, t.root()));
    }

    #[test]
    fn subtree_and_text() {
        let t = sample();
        let paper = t.children(t.root())[2];
        assert_eq!(t.subtree_size(paper), 3);
        assert_eq!(t.subtree_text(paper), "keyword search Mark");
        assert_eq!(t.subtree(paper).len(), 3);
    }

    #[test]
    fn label_path() {
        let t = sample();
        let paper = t.children(t.root())[2];
        let title = t.children(paper)[0];
        assert_eq!(t.label_path(title), "/conf/paper/title");
        assert_eq!(t.label_path(t.root()), "/conf");
    }

    #[test]
    fn to_xml_round_text() {
        let t = sample();
        let paper = t.children(t.root())[2];
        assert_eq!(
            t.to_xml(paper),
            "<paper><title>keyword search</title><author>Mark</author></paper>"
        );
    }

    #[test]
    fn avg_leaf_depth() {
        let t = sample();
        // leaves: name(1), year(1), title(2), author(2) → 1.5
        assert!((t.avg_leaf_depth() - 1.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "unclosed")]
    fn unbalanced_build_panics() {
        let mut b = XmlTree::builder("r");
        b.open("x");
        b.build();
    }

    #[test]
    fn mixed_text_concatenates() {
        let mut b = XmlTree::builder("r");
        b.text("hello").text("world");
        let t = b.build();
        assert_eq!(t.text(t.root()), Some("hello world"));
    }
}
