//! Dewey identifiers.
//!
//! A Dewey id encodes a node's root-to-node path as the sequence of child
//! ordinals along the way (the root is the empty sequence). Document order is
//! lexicographic order on the components; the lowest common ancestor of two
//! nodes is their longest common prefix — both O(depth), which is what makes
//! the SLCA/ELCA algorithms of Xu & Papakonstantinou run in
//! `O(k · d · |S_min| · log |S_max|)`.

use std::cmp::Ordering;
use std::fmt;

/// A Dewey identifier: the child-ordinal path from the root.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Dewey {
    path: Vec<u32>,
}

impl Dewey {
    /// The root's Dewey id (empty path).
    pub fn root() -> Self {
        Dewey { path: Vec::new() }
    }

    pub fn from_path(path: Vec<u32>) -> Self {
        Dewey { path }
    }

    /// The id of this node's `ord`-th child.
    pub fn child(&self, ord: u32) -> Self {
        let mut path = Vec::with_capacity(self.path.len() + 1);
        path.extend_from_slice(&self.path);
        path.push(ord);
        Dewey { path }
    }

    /// Parent id, or `None` for the root.
    pub fn parent(&self) -> Option<Self> {
        if self.path.is_empty() {
            None
        } else {
            Some(Dewey {
                path: self.path[..self.path.len() - 1].to_vec(),
            })
        }
    }

    /// Depth: root is 0.
    pub fn depth(&self) -> usize {
        self.path.len()
    }

    pub fn components(&self) -> &[u32] {
        &self.path
    }

    /// Is `self` an ancestor of `other` (proper: not equal)?
    pub fn is_ancestor_of(&self, other: &Dewey) -> bool {
        self.path.len() < other.path.len() && other.path[..self.path.len()] == self.path[..]
    }

    /// Is `self` an ancestor of or equal to `other`?
    pub fn is_ancestor_or_self(&self, other: &Dewey) -> bool {
        self == other || self.is_ancestor_of(other)
    }

    /// Lowest common ancestor: the longest common prefix.
    pub fn lca(&self, other: &Dewey) -> Dewey {
        let n = self
            .path
            .iter()
            .zip(&other.path)
            .take_while(|(a, b)| a == b)
            .count();
        Dewey {
            path: self.path[..n].to_vec(),
        }
    }
}

impl PartialOrd for Dewey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Dewey {
    /// Document (pre-)order: lexicographic on components; an ancestor
    /// precedes its descendants.
    fn cmp(&self, other: &Self) -> Ordering {
        self.path.cmp(&other.path)
    }
}

impl fmt::Display for Dewey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.path.is_empty() {
            return f.write_str("ε");
        }
        let parts: Vec<String> = self.path.iter().map(|c| c.to_string()).collect();
        f.write_str(&parts.join("."))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kwdb_common::Rng;

    fn d(p: &[u32]) -> Dewey {
        Dewey::from_path(p.to_vec())
    }

    fn rand_path(rng: &mut Rng, max_len: usize) -> Vec<u32> {
        let len = rng.gen_index(max_len);
        (0..len).map(|_| rng.gen_range(0u32..4)).collect()
    }

    #[test]
    fn child_and_parent_round_trip() {
        let n = Dewey::root().child(2).child(0);
        assert_eq!(n.components(), &[2, 0]);
        assert_eq!(n.parent().unwrap().components(), &[2]);
        assert_eq!(Dewey::root().parent(), None);
        assert_eq!(n.depth(), 2);
    }

    #[test]
    fn ancestor_tests() {
        assert!(d(&[1]).is_ancestor_of(&d(&[1, 0])));
        assert!(d(&[]).is_ancestor_of(&d(&[5])));
        assert!(!d(&[1]).is_ancestor_of(&d(&[1])));
        assert!(d(&[1]).is_ancestor_or_self(&d(&[1])));
        assert!(!d(&[1, 0]).is_ancestor_of(&d(&[1])));
        assert!(!d(&[1]).is_ancestor_of(&d(&[2, 0])));
    }

    #[test]
    fn lca_is_common_prefix() {
        assert_eq!(d(&[1, 2, 3]).lca(&d(&[1, 2, 5])), d(&[1, 2]));
        assert_eq!(d(&[1]).lca(&d(&[2])), Dewey::root());
        assert_eq!(d(&[1, 2]).lca(&d(&[1, 2])), d(&[1, 2]));
        assert_eq!(d(&[1, 2]).lca(&d(&[1, 2, 9])), d(&[1, 2]));
    }

    #[test]
    fn document_order() {
        assert!(d(&[1]) < d(&[1, 0])); // ancestor first
        assert!(d(&[1, 9]) < d(&[2]));
        assert!(d(&[]) < d(&[0]));
    }

    #[test]
    fn display() {
        assert_eq!(Dewey::root().to_string(), "ε");
        assert_eq!(d(&[1, 0, 4]).to_string(), "1.0.4");
    }

    #[test]
    fn lca_commutes() {
        let mut rng = Rng::seed_from_u64(1);
        for _ in 0..300 {
            let a = Dewey::from_path(rand_path(&mut rng, 6));
            let b = Dewey::from_path(rand_path(&mut rng, 6));
            assert_eq!(a.lca(&b), b.lca(&a), "{a} vs {b}");
        }
    }

    #[test]
    fn lca_is_ancestor_or_self_of_both() {
        let mut rng = Rng::seed_from_u64(2);
        for _ in 0..300 {
            let a = Dewey::from_path(rand_path(&mut rng, 6));
            let b = Dewey::from_path(rand_path(&mut rng, 6));
            let l = a.lca(&b);
            assert!(l.is_ancestor_or_self(&a), "{l} vs {a}");
            assert!(l.is_ancestor_or_self(&b), "{l} vs {b}");
        }
    }

    #[test]
    fn ancestor_implies_doc_order() {
        let mut rng = Rng::seed_from_u64(3);
        for _ in 0..300 {
            let a = Dewey::from_path(rand_path(&mut rng, 6));
            let ext_len = rng.gen_range(1usize..4);
            let mut p = a.components().to_vec();
            p.extend((0..ext_len).map(|_| rng.gen_range(0u32..4)));
            let desc = Dewey::from_path(p);
            assert!(a.is_ancestor_of(&desc), "{a} vs {desc}");
            assert!(a < desc, "{a} vs {desc}");
        }
    }
}
