//! A small XML parser — elements, attributes, text, self-closing tags.
//!
//! This is deliberately not a full XML 1.0 implementation: no namespaces,
//! DTDs, CDATA or processing instructions. It covers the documents the kwdb
//! datasets generate and the tutorial's examples use. Attributes become child
//! elements labeled `@name` so downstream algorithms treat structure
//! uniformly.

use crate::tree::{XmlBuilder, XmlTree};
use kwdb_common::{KwdbError, Result};

/// Parse an XML document string into an [`XmlTree`].
pub fn parse_xml(input: &str) -> Result<XmlTree> {
    let mut p = Parser {
        input: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws_and_prolog();
    let (name, attrs, self_closing) = p.read_open_tag()?;
    let mut b = XmlBuilder::new(&name);
    for (k, v) in attrs {
        b.leaf(&format!("@{k}"), &v);
    }
    if !self_closing {
        p.read_content(&mut b, &name)?;
    }
    p.skip_ws();
    if p.pos != p.input.len() {
        return Err(KwdbError::Parse(
            "trailing content after root element".into(),
        ));
    }
    Ok(b.build())
}

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b) if b.is_ascii_whitespace()) {
            self.pos += 1;
        }
    }

    fn skip_ws_and_prolog(&mut self) {
        loop {
            self.skip_ws();
            if self.input[self.pos..].starts_with(b"<?") {
                match self.input[self.pos..].windows(2).position(|w| w == b"?>") {
                    Some(off) => self.pos += off + 2,
                    None => {
                        self.pos = self.input.len();
                        return;
                    }
                }
            } else if self.input[self.pos..].starts_with(b"<!--") {
                match self.input[self.pos..].windows(3).position(|w| w == b"-->") {
                    Some(off) => self.pos += off + 3,
                    None => {
                        self.pos = self.input.len();
                        return;
                    }
                }
            } else {
                return;
            }
        }
    }

    fn read_name(&mut self) -> Result<String> {
        let start = self.pos;
        while matches!(self.peek(), Some(b) if b.is_ascii_alphanumeric() || b == b'_' || b == b'-' || b == b'.' || b == b':')
        {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(KwdbError::Parse(format!(
                "expected name at byte {}",
                self.pos
            )));
        }
        Ok(String::from_utf8_lossy(&self.input[start..self.pos]).into_owned())
    }

    /// Read `<name attr="v" …>` (caller positioned at `<`). Returns
    /// `(name, attrs, self_closing)`.
    #[allow(clippy::type_complexity)]
    fn read_open_tag(&mut self) -> Result<(String, Vec<(String, String)>, bool)> {
        if self.peek() != Some(b'<') {
            return Err(KwdbError::Parse(format!(
                "expected '<' at byte {}",
                self.pos
            )));
        }
        self.pos += 1;
        let name = self.read_name()?;
        let mut attrs = Vec::new();
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'>') => {
                    self.pos += 1;
                    return Ok((name, attrs, false));
                }
                Some(b'/') => {
                    self.pos += 1;
                    if self.peek() == Some(b'>') {
                        self.pos += 1;
                        return Ok((name, attrs, true));
                    }
                    return Err(KwdbError::Parse("lone '/' in tag".into()));
                }
                Some(_) => {
                    let key = self.read_name()?;
                    self.skip_ws();
                    if self.peek() != Some(b'=') {
                        return Err(KwdbError::Parse(format!(
                            "expected '=' after attribute {key}"
                        )));
                    }
                    self.pos += 1;
                    self.skip_ws();
                    let quote = self.peek();
                    if quote != Some(b'"') && quote != Some(b'\'') {
                        return Err(KwdbError::Parse("unquoted attribute value".into()));
                    }
                    let q = quote.unwrap();
                    self.pos += 1;
                    let start = self.pos;
                    while self.peek().is_some_and(|b| b != q) {
                        self.pos += 1;
                    }
                    if self.peek().is_none() {
                        return Err(KwdbError::Parse("unterminated attribute value".into()));
                    }
                    let val = String::from_utf8_lossy(&self.input[start..self.pos]).into_owned();
                    self.pos += 1;
                    attrs.push((key, unescape(&val)));
                }
                None => return Err(KwdbError::Parse("unterminated tag".into())),
            }
        }
    }

    /// Read element content until the matching close tag of `name`.
    fn read_content(&mut self, b: &mut XmlBuilder, name: &str) -> Result<()> {
        loop {
            // text run
            let start = self.pos;
            while self.peek().is_some_and(|c| c != b'<') {
                self.pos += 1;
            }
            if self.pos > start {
                let text = String::from_utf8_lossy(&self.input[start..self.pos]);
                let text = unescape(text.trim());
                if !text.is_empty() {
                    b.text(&text);
                }
            }
            match self.peek() {
                None => {
                    return Err(KwdbError::Parse(format!("unclosed element <{name}>")));
                }
                Some(b'<') => {
                    if self.input[self.pos..].starts_with(b"<!--") {
                        match self.input[self.pos..].windows(3).position(|w| w == b"-->") {
                            Some(off) => {
                                self.pos += off + 3;
                                continue;
                            }
                            None => return Err(KwdbError::Parse("unterminated comment".into())),
                        }
                    }
                    if self.input[self.pos..].starts_with(b"</") {
                        self.pos += 2;
                        let close = self.read_name()?;
                        self.skip_ws();
                        if self.peek() != Some(b'>') {
                            return Err(KwdbError::Parse("malformed close tag".into()));
                        }
                        self.pos += 1;
                        if close != name {
                            return Err(KwdbError::Parse(format!(
                                "mismatched close tag: <{name}> closed by </{close}>"
                            )));
                        }
                        return Ok(());
                    }
                    // child element
                    let (child, attrs, self_closing) = self.read_open_tag()?;
                    b.open(&child);
                    for (k, v) in attrs {
                        b.leaf(&format!("@{k}"), &v);
                    }
                    if !self_closing {
                        self.read_content(b, &child)?;
                    }
                    b.close();
                }
                _ => unreachable!(),
            }
        }
    }
}

fn unescape(s: &str) -> String {
    s.replace("&lt;", "<")
        .replace("&gt;", ">")
        .replace("&quot;", "\"")
        .replace("&apos;", "'")
        .replace("&amp;", "&")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_elements() {
        let t =
            parse_xml("<conf><name>SIGMOD</name><paper><title>XML</title></paper></conf>").unwrap();
        assert_eq!(t.label(t.root()), "conf");
        assert_eq!(t.len(), 4);
        let paper = t.children(t.root())[1];
        assert_eq!(t.label(paper), "paper");
        assert_eq!(t.subtree_text(paper), "XML");
    }

    #[test]
    fn attributes_become_at_children() {
        let t = parse_xml(r#"<movie year="1980"><name>Shining</name></movie>"#).unwrap();
        let attr = t.children(t.root())[0];
        assert_eq!(t.label(attr), "@year");
        assert_eq!(t.text(attr), Some("1980"));
    }

    #[test]
    fn self_closing_tags() {
        let t = parse_xml(r#"<a><b/><c x="1"/></a>"#).unwrap();
        assert_eq!(t.children(t.root()).len(), 2);
        let c = t.children(t.root())[1];
        assert_eq!(t.label(t.children(c)[0]), "@x");
    }

    #[test]
    fn prolog_and_comments_skipped() {
        let t =
            parse_xml("<?xml version=\"1.0\"?><!-- hi --><r><x>1</x><!-- mid -->ok</r>").unwrap();
        assert_eq!(t.label(t.root()), "r");
        assert_eq!(t.text(t.root()), Some("ok"));
    }

    #[test]
    fn entity_unescaping() {
        let t = parse_xml("<r>a &amp; b &lt;c&gt;</r>").unwrap();
        assert_eq!(t.text(t.root()), Some("a & b <c>"));
    }

    #[test]
    fn mismatched_tags_error() {
        assert!(parse_xml("<a><b></a></b>").is_err());
        assert!(parse_xml("<a>").is_err());
        assert!(parse_xml("<a></a><b></b>").is_err());
    }

    #[test]
    fn round_trip_with_builder_output() {
        let mut b = XmlTree::builder("conf");
        b.leaf("name", "ICDE")
            .open("paper")
            .leaf("title", "graphs")
            .close();
        let t1 = b.build();
        let t2 = parse_xml(&t1.to_xml(t1.root())).unwrap();
        assert_eq!(t1.len(), t2.len());
        assert_eq!(t2.subtree_text(t2.root()), "ICDE graphs");
    }
}
