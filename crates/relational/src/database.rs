//! The database: tables, schema graph, and the full-text index.

use crate::index::{InvertedIndex, Posting};
use crate::schema::{SchemaEdge, SchemaGraph, TableBuilder, TableId};
use crate::table::{Row, RowId, Table, TupleId};
use kwdb_common::index::{Layout, SegmentCounts};
use kwdb_common::text::tokenize;
use kwdb_common::{KwdbError, Result, Value};
use std::collections::HashMap;

/// An in-memory relational database.
///
/// Construction order matters only for foreign keys: a referenced table must
/// exist (with a primary key) before the referencing table is created, so the
/// FK can be resolved into a [`SchemaGraph`] edge eagerly.
///
/// # Generations
///
/// Every mutation bumps a monotonically increasing **generation counter**;
/// `indexed_generation` records the generation the text index reflects.
/// [`ingest`](Self::ingest) and [`delete`](Self::delete) maintain the index
/// incrementally (realtime segment + tombstones), so they advance both
/// counters together. Raw [`insert`](Self::insert) does **not** touch the
/// index, leaving it behind until the next
/// [`build_text_index`](Self::build_text_index) — queries in between get a
/// typed
/// [`KwdbError::IndexStale`] instead of silently missing rows.
#[derive(Debug, Default, Clone)]
pub struct Database {
    tables: Vec<Table>,
    by_name: HashMap<String, TableId>,
    schema_graph: SchemaGraph,
    text_index: InvertedIndex,
    /// Bumped by every data mutation (`insert`/`ingest`/`delete`).
    generation: u64,
    /// Generation the text index reflects; `None` until the first build.
    indexed_generation: Option<u64>,
}

impl Database {
    pub fn new() -> Self {
        Self::default()
    }

    /// Create a table from a builder. Resolves foreign keys against already
    /// existing tables and extends the schema graph.
    pub fn create_table(&mut self, builder: TableBuilder) -> Result<TableId> {
        let schema = builder.build()?;
        if self.by_name.contains_key(&schema.name) {
            return Err(KwdbError::Schema(format!(
                "table {} already exists",
                schema.name
            )));
        }
        let id = TableId(self.tables.len() as u32);
        for fk in &schema.foreign_keys {
            let ref_id = self
                .by_name
                .get(&fk.ref_table)
                .copied()
                .ok_or_else(|| KwdbError::UnknownObject(fk.ref_table.clone()))?;
            let pk_column = self.tables[ref_id.0 as usize]
                .schema
                .primary_key
                .ok_or_else(|| {
                    KwdbError::Schema(format!("FK target {} has no primary key", fk.ref_table))
                })?;
            self.schema_graph.add_edge(SchemaEdge {
                from: id,
                to: ref_id,
                fk_column: fk.column,
                pk_column,
            });
        }
        self.by_name.insert(schema.name.clone(), id);
        self.tables.push(Table::new(id, schema));
        Ok(id)
    }

    /// Insert a row into a table by name **without** maintaining the text
    /// index: bumps the data generation and leaves the index behind. Use for
    /// bulk loads that end with [`build_text_index`](Self::build_text_index),
    /// or use [`ingest`](Self::ingest) to keep the index live.
    pub fn insert(&mut self, table: &str, row: Row) -> Result<TupleId> {
        let id = self.table_id(table)?;
        let rid = self.tables[id.0 as usize].insert(row)?;
        self.generation += 1;
        Ok(TupleId::new(id, rid))
    }

    /// Insert a row **and** index it incrementally: the tuple's text tokens
    /// land in the index's realtime segment, visible to queries immediately
    /// (no rebuild, no [`commit_index`](Self::commit_index) needed).
    ///
    /// Unlike [`insert`](Self::insert), `ingest` validates foreign keys: a
    /// non-NULL FK value must resolve to an existing (live) referenced row.
    ///
    /// Requires a fresh index — build once (even over an empty database)
    /// before switching to ingest. Raw `insert`s since the last build make
    /// the index unmaintainable incrementally and yield the same typed error
    /// a query would get.
    pub fn ingest(&mut self, table: &str, row: Row) -> Result<TupleId> {
        let id = self.table_id(table)?;
        self.check_index_fresh()?;
        // FK validation before any state changes.
        for fk in self.schema_graph.edges().iter().filter(|e| e.from == id) {
            let Some(key) = row.get(fk.fk_column) else {
                continue; // arity error surfaces from Table::insert below
            };
            if key.is_null() {
                continue;
            }
            let target = self.table(fk.to);
            if target.lookup_pk(key).is_none() {
                return Err(KwdbError::Schema(format!(
                    "table {}: FK {} = {} has no match in {}",
                    self.tables[id.0 as usize].schema.name,
                    self.tables[id.0 as usize].schema.columns[fk.fk_column].name,
                    key,
                    target.schema.name
                )));
            }
        }
        let rid = self.tables[id.0 as usize].insert(row)?;
        self.generation += 1;
        self.indexed_generation = Some(self.generation);
        let tid = TupleId::new(id, rid);
        let t = &self.tables[id.0 as usize];
        let text_cols: Vec<usize> = t.schema.text_columns().collect();
        let mut additions: Vec<(String, Posting)> = Vec::new();
        for &c in &text_cols {
            if let Some(text) = t.get(rid, c).as_text() {
                for tok in tokenize(text) {
                    additions.push((
                        tok,
                        Posting {
                            tuple: tid,
                            column: c,
                            tf: 1,
                        },
                    ));
                }
            }
        }
        for (tok, p) in additions {
            self.text_index.add(&tok, p);
        }
        self.text_index.set_tuple_count(id, t.live_len());
        Ok(tid)
    }

    /// Delete the row of `table` whose primary key equals `pk`: tombstones
    /// the row slot and every index posting of the tuple. Effective on all
    /// query paths immediately; the storage is reclaimed by the next
    /// [`merge_index`](Self::merge_index). Requires a fresh index, like
    /// [`ingest`](Self::ingest). No cascade: referencing rows keep their FK
    /// value and simply lose the join partner.
    pub fn delete(&mut self, table: &str, pk: &Value) -> Result<TupleId> {
        let id = self.table_id(table)?;
        self.check_index_fresh()?;
        let t = &mut self.tables[id.0 as usize];
        let rid = t.lookup_pk(pk).ok_or_else(|| {
            KwdbError::UnknownObject(format!("{table} row with primary key {pk}"))
        })?;
        t.delete(rid);
        let live = t.live_len();
        let tid = TupleId::new(id, rid);
        self.text_index.delete_tuple(tid);
        self.text_index.set_tuple_count(id, live);
        self.generation += 1;
        self.indexed_generation = Some(self.generation);
        Ok(tid)
    }

    /// Seal the index's realtime segment into an immutable compressed
    /// segment (see [`kwdb_common::index::SegmentedIndex::commit`]).
    ///
    /// Sealing restructures the physical index, so on a fresh index it
    /// counts as a generation event like any other mutation: anything
    /// keyed on the generation (plan cache, result cache, tuple-set
    /// cache) recomputes over the sealed layout rather than serving a
    /// response built against the pre-seal segments.
    pub fn commit_index(&mut self) -> SegmentCounts {
        self.bump_sealed_generation();
        self.text_index.commit()
    }

    /// Fully compact the index: one sealed segment, tombstones purged,
    /// exact stats (see [`kwdb_common::index::SegmentedIndex::merge`]).
    /// A generation event, like [`commit_index`](Self::commit_index).
    pub fn merge_index(&mut self) -> SegmentCounts {
        self.bump_sealed_generation();
        self.text_index.merge()
    }

    /// Generation bump for seal/compact operations. Only meaningful when
    /// the index is fresh — a stale database stays stale (the gap between
    /// `generation` and `indexed_generation` is preserved) so sealing can
    /// never mask a missing rebuild.
    fn bump_sealed_generation(&mut self) {
        if self.is_index_fresh() {
            self.generation += 1;
            self.indexed_generation = Some(self.generation);
        }
    }

    pub fn table_id(&self, name: &str) -> Result<TableId> {
        self.by_name
            .get(name)
            .copied()
            .ok_or_else(|| KwdbError::UnknownObject(name.to_string()))
    }

    pub fn table(&self, id: TableId) -> &Table {
        &self.tables[id.0 as usize]
    }

    pub fn table_by_name(&self, name: &str) -> Result<&Table> {
        Ok(self.table(self.table_id(name)?))
    }

    pub fn tables(&self) -> impl Iterator<Item = &Table> {
        self.tables.iter()
    }

    pub fn table_count(&self) -> usize {
        self.tables.len()
    }

    /// Total number of live tuples across all tables.
    pub fn tuple_count(&self) -> usize {
        self.tables.iter().map(|t| t.live_len()).sum()
    }

    pub fn schema_graph(&self) -> &SchemaGraph {
        &self.schema_graph
    }

    /// A stable fingerprint of the schema: table names, column names and
    /// order, primary keys, and schema-graph edges. Two databases with equal
    /// fingerprints generate identical candidate networks for the same
    /// tuple-set masks, which is what keys the plan cache.
    pub fn schema_fingerprint(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        for t in &self.tables {
            t.schema.name.hash(&mut h);
            t.schema.primary_key.hash(&mut h);
            for c in &t.schema.columns {
                c.name.hash(&mut h);
            }
        }
        for e in self.schema_graph.edges() {
            (e.from.0, e.to.0, e.fk_column, e.pk_column).hash(&mut h);
        }
        h.finish()
    }

    /// (Re)build the full-text inverted index over all text columns,
    /// recording the build wall-clock in the index's stats.
    pub fn build_text_index(&mut self) {
        self.build_text_index_with(Layout::default());
    }

    /// [`build_text_index`](Self::build_text_index) with an explicit posting
    /// layout for the rebuilt index.
    pub fn build_text_index_with(&mut self, layout: Layout) {
        let start = std::time::Instant::now();
        let mut ix = InvertedIndex::new();
        ix.set_layout(layout);
        for t in &self.tables {
            ix.set_tuple_count(t.id, t.live_len());
            let text_cols: Vec<usize> = t.schema.text_columns().collect();
            for (rid, row) in t.iter() {
                for &c in &text_cols {
                    if let Some(text) = row[c].as_text() {
                        for tok in tokenize(text) {
                            ix.add(
                                &tok,
                                Posting {
                                    tuple: TupleId::new(t.id, rid),
                                    column: c,
                                    tf: 1,
                                },
                            );
                        }
                    }
                }
            }
        }
        ix.finalize();
        ix.set_build_time(start.elapsed());
        self.text_index = ix;
        self.indexed_generation = Some(self.generation);
    }

    /// Re-encode the (already built) text index into `layout`; contents are
    /// unchanged. No-op on a stale index — pick the layout at the next
    /// [`build_text_index_with`](Self::build_text_index_with) instead.
    pub fn set_posting_layout(&mut self, layout: Layout) {
        if self.is_index_fresh() {
            self.text_index.set_layout(layout);
        }
    }

    /// The full-text index, or a typed error when it does not reflect the
    /// current data: [`KwdbError::IndexNotBuilt`] before the first
    /// [`build_text_index`](Self::build_text_index), [`KwdbError::IndexStale`]
    /// after a raw [`insert`](Self::insert) left it behind.
    pub fn text_index(&self) -> Result<&InvertedIndex> {
        self.check_index_fresh()?;
        Ok(&self.text_index)
    }

    fn check_index_fresh(&self) -> Result<()> {
        match self.indexed_generation {
            None => Err(KwdbError::IndexNotBuilt),
            Some(g) if g != self.generation => Err(KwdbError::IndexStale {
                indexed: g,
                current: self.generation,
            }),
            Some(_) => Ok(()),
        }
    }

    /// Whether the index reflects the current data.
    pub fn is_index_fresh(&self) -> bool {
        self.indexed_generation == Some(self.generation)
    }

    /// Current data generation: bumped by every mutation.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Generation the text index reflects; `None` until the first build.
    pub fn indexed_generation(&self) -> Option<u64> {
        self.indexed_generation
    }

    /// All tokens of a tuple's indexed text columns, for scoring.
    pub fn tuple_tokens(&self, tid: TupleId) -> Vec<String> {
        let t = self.table(tid.table);
        let mut toks = Vec::new();
        for c in t.schema.text_columns() {
            if let Some(text) = t.get(tid.row, c).as_text() {
                toks.extend(tokenize(text));
            }
        }
        toks
    }

    /// Follow a tuple's foreign keys to the referenced tuples.
    pub fn fk_neighbors(&self, tid: TupleId) -> Vec<TupleId> {
        let mut out = Vec::new();
        let t = self.table(tid.table);
        for fk in self
            .schema_graph
            .edges()
            .iter()
            .filter(|e| e.from == tid.table)
        {
            let key = t.get(tid.row, fk.fk_column);
            if key.is_null() {
                continue;
            }
            let target = self.table(fk.to);
            if let Some(r) = target.lookup_pk(key) {
                out.push(TupleId::new(fk.to, r));
            }
        }
        out
    }

    /// Rows of `table` whose column `col` equals `value` (sequential scan;
    /// FK joins go through [`crate::join`] with a hash table instead).
    pub fn scan_eq(&self, table: TableId, col: usize, value: &Value) -> Vec<RowId> {
        self.table(table)
            .iter()
            .filter(|(_, row)| &row[col] == value)
            .map(|(rid, _)| rid)
            .collect()
    }

    /// Render a tuple for display: `table(v1, v2, …)`.
    pub fn format_tuple(&self, tid: TupleId) -> String {
        let t = self.table(tid.table);
        let vals: Vec<String> = t.row(tid.row).iter().map(|v| v.to_string()).collect();
        format!("{}({})", t.schema.name, vals.join(", "))
    }
}

/// Convenience: the classic DBLP-style schema used in the tutorial's examples
/// (author, paper, conference, write, cite). Tests across the workspace share
/// this fixture.
pub fn dblp_schema(db: &mut Database) -> Result<()> {
    use crate::schema::ColumnType;
    db.create_table(
        TableBuilder::new("conference")
            .column("cid", ColumnType::Int)
            .column("name", ColumnType::Text)
            .column("year", ColumnType::Int)
            .primary_key("cid"),
    )?;
    db.create_table(
        TableBuilder::new("author")
            .column("aid", ColumnType::Int)
            .column("name", ColumnType::Text)
            .primary_key("aid"),
    )?;
    db.create_table(
        TableBuilder::new("paper")
            .column("pid", ColumnType::Int)
            .column("title", ColumnType::Text)
            .column("cid", ColumnType::Int)
            .primary_key("pid")
            .foreign_key("cid", "conference"),
    )?;
    db.create_table(
        TableBuilder::new("write")
            .column("wid", ColumnType::Int)
            .column("aid", ColumnType::Int)
            .column("pid", ColumnType::Int)
            .primary_key("wid")
            .foreign_key("aid", "author")
            .foreign_key("pid", "paper"),
    )?;
    db.create_table(
        TableBuilder::new("cite")
            .column("id", ColumnType::Int)
            .column("citing", ColumnType::Int)
            .column("cited", ColumnType::Int)
            .primary_key("id")
            .foreign_key("citing", "paper")
            .foreign_key("cited", "paper"),
    )?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnType;

    fn small_db() -> Database {
        let mut db = Database::new();
        dblp_schema(&mut db).unwrap();
        db.insert("conference", vec![1.into(), "SIGMOD".into(), 2007.into()])
            .unwrap();
        db.insert("author", vec![1.into(), "Jennifer Widom".into()])
            .unwrap();
        db.insert("author", vec![2.into(), "John Smith".into()])
            .unwrap();
        db.insert(
            "paper",
            vec![10.into(), "XML keyword search".into(), 1.into()],
        )
        .unwrap();
        db.insert("write", vec![100.into(), 1.into(), 10.into()])
            .unwrap();
        db.build_text_index();
        db
    }

    #[test]
    fn create_and_insert() {
        let db = small_db();
        assert_eq!(db.table_count(), 5);
        assert_eq!(db.tuple_count(), 5);
        assert_eq!(db.table_by_name("author").unwrap().len(), 2);
    }

    #[test]
    fn duplicate_table_rejected() {
        let mut db = Database::new();
        db.create_table(TableBuilder::new("t").column("a", ColumnType::Int))
            .unwrap();
        assert!(db
            .create_table(TableBuilder::new("t").column("a", ColumnType::Int))
            .is_err());
    }

    #[test]
    fn fk_requires_existing_target_with_pk() {
        let mut db = Database::new();
        let r = db.create_table(
            TableBuilder::new("w")
                .column("aid", ColumnType::Int)
                .foreign_key("aid", "missing"),
        );
        assert!(r.is_err());
        db.create_table(TableBuilder::new("nopk").column("x", ColumnType::Int))
            .unwrap();
        let r = db.create_table(
            TableBuilder::new("w")
                .column("aid", ColumnType::Int)
                .foreign_key("aid", "nopk"),
        );
        assert!(r.is_err());
    }

    #[test]
    fn schema_graph_built_from_fks() {
        let db = small_db();
        // paper→conference, write→author, write→paper, cite→paper ×2 = 5 edges
        assert_eq!(db.schema_graph().edges().len(), 5);
        let paper = db.table_id("paper").unwrap();
        // paper touches: paper→conference, write→paper, cite→paper ×2
        assert_eq!(db.schema_graph().degree(paper), 4);
    }

    #[test]
    fn text_index_finds_keywords() {
        let db = small_db();
        let ix = db.text_index().unwrap();
        assert_eq!(ix.postings("widom").len(), 1);
        assert_eq!(ix.postings("xml").len(), 1);
        let author = db.table_id("author").unwrap();
        assert_eq!(ix.rows_in("john", author), vec![RowId(1)]);
    }

    #[test]
    fn never_built_index_is_typed_error() {
        let mut db = Database::new();
        dblp_schema(&mut db).unwrap();
        db.insert("author", vec![1.into(), "Widom".into()]).unwrap();
        assert_eq!(db.text_index().unwrap_err(), KwdbError::IndexNotBuilt);
        assert!(!db.is_index_fresh());
    }

    #[test]
    fn stale_index_is_typed_error() {
        let mut db = small_db();
        let gen_at_build = db.generation();
        db.insert("author", vec![3.into(), "New Author".into()])
            .unwrap();
        match db.text_index() {
            Err(KwdbError::IndexStale { indexed, current }) => {
                assert_eq!(indexed, gen_at_build);
                assert_eq!(current, gen_at_build + 1);
            }
            other => panic!("expected IndexStale, got {other:?}"),
        }
        // ingest refuses to maintain an index that is already behind
        assert!(matches!(
            db.ingest("author", vec![4.into(), "X".into()]),
            Err(KwdbError::IndexStale { .. })
        ));
        // a rebuild restores freshness
        db.build_text_index();
        assert!(db.is_index_fresh());
        assert!(db.text_index().is_ok());
    }

    #[test]
    fn ingest_indexes_immediately_and_validates_fks() {
        let mut db = small_db();
        let t0 = db
            .ingest("author", vec![3.into(), "Alan Turing".into()])
            .unwrap();
        assert!(db.is_index_fresh());
        let ix = db.text_index().unwrap();
        assert_eq!(ix.postings("turing").len(), 1, "visible without commit");
        assert_eq!(ix.postings("turing").to_vec()[0].tuple, t0);
        assert_eq!(ix.segment_counts().realtime, 1);

        // dangling FK rejected, and nothing was inserted or indexed
        let before = db.tuple_count();
        assert!(matches!(
            db.ingest("paper", vec![11.into(), "Bad ref".into(), 99.into()]),
            Err(KwdbError::Schema(_))
        ));
        assert_eq!(db.tuple_count(), before);
        assert!(db.text_index().unwrap().postings("bad").is_empty());
        assert!(db.is_index_fresh(), "failed ingest does not dirty anything");

        // valid FK accepted; NULL FK accepted
        db.ingest("paper", vec![11.into(), "Turing award".into(), 1.into()])
            .unwrap();
        db.ingest("paper", vec![12.into(), "Orphan note".into(), Value::Null])
            .unwrap();
        assert_eq!(db.text_index().unwrap().postings("turing").len(), 2);

        // commit seals realtime; results unchanged
        let counts = db.commit_index();
        assert_eq!(counts.realtime, 0);
        assert_eq!(db.text_index().unwrap().postings("turing").len(), 2);
    }

    #[test]
    fn delete_tombstones_row_and_postings() {
        let mut db = small_db();
        let author = db.table_id("author").unwrap();
        let tid = db.delete("author", &2.into()).unwrap();
        assert_eq!(tid, TupleId::new(author, RowId(1)));
        assert!(db.is_index_fresh());
        let ix = db.text_index().unwrap();
        assert!(ix.postings("john").is_empty(), "postings hidden at once");
        assert!(ix.rows_in("smith", author).is_empty());
        assert_eq!(db.tuple_count(), 4);
        assert!(db.scan_eq(author, 0, &2.into()).is_empty());
        // unknown pk is a typed error
        assert!(matches!(
            db.delete("author", &99.into()),
            Err(KwdbError::UnknownObject(_))
        ));
        // merge purges tombstones without changing results
        db.merge_index();
        assert!(db.text_index().unwrap().postings("john").is_empty());
        assert_eq!(db.text_index().unwrap().doc_freq("widom"), 1);
    }

    #[test]
    fn generation_counts_every_mutation() {
        let mut db = Database::new();
        dblp_schema(&mut db).unwrap();
        assert_eq!(db.generation(), 0);
        assert_eq!(db.indexed_generation(), None);
        db.insert("author", vec![1.into(), "A".into()]).unwrap();
        assert_eq!(db.generation(), 1);
        db.build_text_index();
        assert_eq!(db.indexed_generation(), Some(1));
        db.ingest("author", vec![2.into(), "B".into()]).unwrap();
        assert_eq!(db.generation(), 2);
        assert_eq!(db.indexed_generation(), Some(2));
        db.delete("author", &1.into()).unwrap();
        assert_eq!(db.generation(), 3);
        assert_eq!(db.indexed_generation(), Some(3));
    }

    #[test]
    fn fk_neighbors_follow_references() {
        let db = small_db();
        let write = db.table_id("write").unwrap();
        let n = db.fk_neighbors(TupleId::new(write, RowId(0)));
        assert_eq!(n.len(), 2); // author 1 and paper 10
        let author = db.table_id("author").unwrap();
        assert!(db.fk_neighbors(TupleId::new(author, RowId(0))).is_empty());
    }

    #[test]
    fn scan_eq_finds_rows() {
        let db = small_db();
        let paper = db.table_id("paper").unwrap();
        assert_eq!(db.scan_eq(paper, 2, &1.into()), vec![RowId(0)]);
        assert!(db.scan_eq(paper, 2, &99.into()).is_empty());
    }

    #[test]
    fn tuple_tokens_concatenate_text_cols() {
        let db = small_db();
        let author = db.table_id("author").unwrap();
        let toks = db.tuple_tokens(TupleId::new(author, RowId(0)));
        assert_eq!(toks, vec!["jennifer", "widom"]);
    }

    #[test]
    fn format_tuple_renders() {
        let db = small_db();
        let author = db.table_id("author").unwrap();
        assert_eq!(
            db.format_tuple(TupleId::new(author, RowId(0))),
            "author(1, Jennifer Widom)"
        );
    }
}
