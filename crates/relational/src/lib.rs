//! In-memory relational substrate for kwdb.
//!
//! Relational keyword search (DISCOVER, SPARK, BANKS over tuple graphs, …)
//! needs a database engine underneath: a typed schema with foreign keys, a
//! tuple store, equi-joins, selections, and a full-text inverted index over
//! text attributes. This crate is that engine, sized for the workloads the
//! ICDE 2011 tutorial discusses (10⁵–10⁶ tuples) and instrumented so the
//! benchmark harness can count tuples scanned, join probes performed, and
//! rows produced — the cost metrics the tutorial's efficiency section
//! compares engines on.
//!
//! # Quick tour
//!
//! ```
//! use kwdb_relational::{Database, TableBuilder, ColumnType};
//!
//! let mut db = Database::new();
//! db.create_table(
//!     TableBuilder::new("author")
//!         .column("aid", ColumnType::Int)
//!         .column("name", ColumnType::Text)
//!         .primary_key("aid"),
//! ).unwrap();
//! db.create_table(
//!     TableBuilder::new("paper")
//!         .column("pid", ColumnType::Int)
//!         .column("title", ColumnType::Text)
//!         .primary_key("pid"),
//! ).unwrap();
//! db.create_table(
//!     TableBuilder::new("write")
//!         .column("aid", ColumnType::Int)
//!         .column("pid", ColumnType::Int)
//!         .foreign_key("aid", "author")
//!         .foreign_key("pid", "paper"),
//! ).unwrap();
//!
//! db.insert("author", vec![1.into(), "Jennifer Widom".into()]).unwrap();
//! db.insert("paper", vec![10.into(), "XML query processing".into()]).unwrap();
//! db.insert("write", vec![1.into(), 10.into()]).unwrap();
//! db.build_text_index();
//!
//! let hits = db.text_index().unwrap().postings("widom");
//! assert_eq!(hits.len(), 1);
//!
//! // Incremental ingest: indexed immediately, no rebuild needed.
//! db.ingest("author", vec![2.into(), "Alan Turing".into()]).unwrap();
//! assert_eq!(db.text_index().unwrap().postings("turing").len(), 1);
//! db.commit_index(); // seal the realtime segment
//! assert_eq!(db.text_index().unwrap().postings("turing").len(), 1);
//! ```

pub mod database;
pub mod index;
pub mod join;
pub mod schema;
pub mod stats;
pub mod table;

pub use database::Database;
pub use index::InvertedIndex;
pub use schema::{
    ColumnDef, ColumnType, ForeignKey, SchemaGraph, TableBuilder, TableId, TableSchema,
};
pub use stats::ExecStats;
pub use table::{Row, RowId, Table, TupleId};
