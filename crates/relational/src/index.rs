//! Full-text inverted index over a database's text columns.
//!
//! Storage lives in the shared [`kwdb_common::index`] core: terms are
//! interned into a dense-`Sym` dictionary (each distinct term allocated
//! exactly once, however many occurrences the build sees) and postings sit
//! in per-term sorted lists. Query paths resolve each keyword to a [`Sym`]
//! once via [`InvertedIndex::sym`] and then fetch slices by dense id; the
//! string-keyed methods remain as conveniences that do exactly one
//! dictionary lookup.

use crate::schema::TableId;
use crate::table::{RowId, TupleId};
use kwdb_common::index::{IndexStats, PostingStore, TermStats};
use kwdb_common::intern::Sym;
use std::collections::HashMap;
use std::time::Duration;

/// One posting: a keyword occurrence in a tuple's column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Posting {
    pub tuple: TupleId,
    /// Column where the keyword occurred.
    pub column: usize,
    /// Occurrences of the keyword within that column value.
    pub tf: u32,
}

impl kwdb_common::index::Posting for Posting {
    type SortKey = (TableId, RowId, usize);

    fn sort_key(&self) -> Self::SortKey {
        (self.tuple.table, self.tuple.row, self.column)
    }

    fn coalesce(&mut self, other: &Self) -> bool {
        if self.tuple == other.tuple && self.column == other.column {
            self.tf += other.tf;
            true
        } else {
            false
        }
    }

    fn occurrences(&self) -> u64 {
        self.tf as u64
    }

    fn same_doc(&self, other: &Self) -> bool {
        self.tuple == other.tuple
    }
}

/// Inverted index: keyword → postings, with a per-table view.
///
/// Postings are stored sorted by `(table, row, column)` so per-table slices
/// ("query tuple sets" in DISCOVER terms) are contiguous and extractable
/// without allocation-heavy filtering.
#[derive(Debug, Clone, Default)]
pub struct InvertedIndex {
    store: PostingStore<Posting>,
    /// Documents (tuples) per table, for IDF computation by callers.
    tuple_counts: HashMap<TableId, usize>,
    build_time: Option<Duration>,
}

impl InvertedIndex {
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn add(&mut self, term: &str, posting: Posting) {
        self.store.add(term, posting);
    }

    pub(crate) fn set_tuple_count(&mut self, table: TableId, n: usize) {
        self.tuple_counts.insert(table, n);
    }

    pub(crate) fn set_build_time(&mut self, d: Duration) {
        self.build_time = Some(d);
    }

    pub(crate) fn finalize(&mut self) {
        self.store.finalize();
    }

    /// Resolve a query term to its dense id — one dictionary lookup. Do this
    /// once per query term, then drive the query off the `Sym`.
    pub fn sym(&self, term: &str) -> Option<Sym> {
        self.store.sym(term)
    }

    /// All postings for `term` (empty slice if absent).
    pub fn postings(&self, term: &str) -> &[Posting] {
        self.store.postings_str(term)
    }

    /// All postings for an already-resolved term.
    pub fn postings_sym(&self, sym: Sym) -> &[Posting] {
        self.store.postings(sym)
    }

    /// Postings for `term` within one table.
    pub fn postings_in(&self, term: &str, table: TableId) -> &[Posting] {
        Self::table_slice(self.postings(term), table)
    }

    /// Postings for an already-resolved term within one table.
    pub fn postings_in_sym(&self, sym: Sym, table: TableId) -> &[Posting] {
        Self::table_slice(self.postings_sym(sym), table)
    }

    fn table_slice(all: &[Posting], table: TableId) -> &[Posting] {
        let lo = all.partition_point(|p| p.tuple.table < table);
        let hi = all.partition_point(|p| p.tuple.table <= table);
        &all[lo..hi]
    }

    /// Distinct rows of `table` containing `term` (sorted, deduplicated).
    pub fn rows_in(&self, term: &str, table: TableId) -> Vec<RowId> {
        let mut rows: Vec<RowId> = self
            .postings_in(term, table)
            .iter()
            .map(|p| p.tuple.row)
            .collect();
        rows.dedup();
        rows
    }

    /// Number of distinct tuples (across tables) containing `term`.
    /// `O(1)` on a finalized index — served from the term's cached stats.
    pub fn doc_freq(&self, term: &str) -> usize {
        self.sym(term).map_or(0, |s| self.doc_freq_sym(s))
    }

    /// Document frequency for an already-resolved term.
    pub fn doc_freq_sym(&self, sym: Sym) -> usize {
        self.store.term_stats(sym).df as usize
    }

    /// Per-term stats (document frequency, total term frequency).
    pub fn term_stats(&self, sym: Sym) -> TermStats {
        self.store.term_stats(sym)
    }

    /// Number of tuples indexed in `table`.
    pub fn tuple_count(&self, table: TableId) -> usize {
        self.tuple_counts.get(&table).copied().unwrap_or(0)
    }

    /// All indexed terms, in dictionary id order.
    pub fn terms(&self) -> impl Iterator<Item = &str> {
        self.store.terms()
    }

    pub fn term_count(&self) -> usize {
        self.store.term_count()
    }

    /// Whole-index size figures, with the build wall-clock when the owner
    /// measured one.
    pub fn index_stats(&self) -> IndexStats {
        IndexStats {
            build: self.build_time,
            ..self.store.index_stats()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(table: u32, row: u32, col: usize) -> Posting {
        Posting {
            tuple: TupleId::new(TableId(table), RowId(row)),
            column: col,
            tf: 1,
        }
    }

    fn index() -> InvertedIndex {
        let mut ix = InvertedIndex::new();
        ix.add("xml", t(0, 0, 1));
        ix.add("xml", t(0, 0, 1)); // duplicate occurrence, merges to tf=2
        ix.add("xml", t(1, 3, 0));
        ix.add("xml", t(0, 2, 1));
        ix.add("graph", t(1, 3, 0));
        ix.finalize();
        ix
    }

    #[test]
    fn postings_sorted_and_merged() {
        let ix = index();
        let ps = ix.postings("xml");
        assert_eq!(ps.len(), 3);
        assert_eq!(ps[0].tf, 2);
        assert!(ps
            .windows(2)
            .all(|w| (w[0].tuple.table, w[0].tuple.row) <= (w[1].tuple.table, w[1].tuple.row)));
    }

    #[test]
    fn per_table_slice() {
        let ix = index();
        assert_eq!(ix.postings_in("xml", TableId(0)).len(), 2);
        assert_eq!(ix.postings_in("xml", TableId(1)).len(), 1);
        assert_eq!(ix.postings_in("xml", TableId(9)).len(), 0);
    }

    #[test]
    fn rows_in_dedups() {
        let ix = index();
        assert_eq!(ix.rows_in("xml", TableId(0)), vec![RowId(0), RowId(2)]);
    }

    #[test]
    fn doc_freq_counts_tuples() {
        let ix = index();
        assert_eq!(ix.doc_freq("xml"), 3);
        assert_eq!(ix.doc_freq("graph"), 1);
        assert_eq!(ix.doc_freq("nope"), 0);
    }

    #[test]
    fn missing_term_is_empty() {
        let ix = index();
        assert!(ix.postings("nothing").is_empty());
        assert!(ix.rows_in("nothing", TableId(0)).is_empty());
    }

    #[test]
    fn sym_api_matches_string_api() {
        let ix = index();
        let xml = ix.sym("xml").expect("indexed term resolves");
        assert_eq!(ix.postings_sym(xml), ix.postings("xml"));
        assert_eq!(
            ix.postings_in_sym(xml, TableId(0)),
            ix.postings_in("xml", TableId(0))
        );
        assert_eq!(ix.doc_freq_sym(xml), ix.doc_freq("xml"));
        assert!(ix.sym("nothing").is_none());
    }

    #[test]
    fn index_stats_report_sizes() {
        let ix = index();
        let stats = ix.index_stats();
        assert_eq!(stats.terms, 2);
        assert_eq!(stats.postings, 4);
        assert_eq!(stats.posting_bytes, 4 * std::mem::size_of::<Posting>());
        assert!(stats.build.is_none(), "unit-built index is untimed");
    }

    #[test]
    fn term_stats_track_tf_and_df() {
        let ix = index();
        let xml = ix.sym("xml").unwrap();
        let stats = ix.term_stats(xml);
        assert_eq!(stats.df, 3);
        assert_eq!(stats.total_tf, 4); // tf=2 posting plus two tf=1 postings
    }
}
