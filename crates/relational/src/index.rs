//! Full-text inverted index over a database's text columns.

use crate::schema::TableId;
use crate::table::{RowId, TupleId};
use std::collections::HashMap;

/// One posting: a keyword occurrence in a tuple's column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Posting {
    pub tuple: TupleId,
    /// Column where the keyword occurred.
    pub column: usize,
    /// Occurrences of the keyword within that column value.
    pub tf: u32,
}

/// Inverted index: keyword → postings, with a per-table view.
///
/// Postings are stored sorted by `(table, row, column)` so per-table slices
/// ("query tuple sets" in DISCOVER terms) are contiguous and extractable
/// without allocation-heavy filtering.
#[derive(Debug, Clone, Default)]
pub struct InvertedIndex {
    postings: HashMap<String, Vec<Posting>>,
    /// Documents (tuples) per table, for IDF computation by callers.
    tuple_counts: HashMap<TableId, usize>,
}

impl InvertedIndex {
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn add(&mut self, term: &str, posting: Posting) {
        self.postings
            .entry(term.to_string())
            .or_default()
            .push(posting);
    }

    pub(crate) fn set_tuple_count(&mut self, table: TableId, n: usize) {
        self.tuple_counts.insert(table, n);
    }

    pub(crate) fn finalize(&mut self) {
        for v in self.postings.values_mut() {
            v.sort_by_key(|p| (p.tuple.table, p.tuple.row, p.column));
            // Merge duplicate (tuple, column) entries into tf counts.
            let mut merged: Vec<Posting> = Vec::with_capacity(v.len());
            for p in v.drain(..) {
                match merged.last_mut() {
                    Some(last) if last.tuple == p.tuple && last.column == p.column => {
                        last.tf += p.tf;
                    }
                    _ => merged.push(p),
                }
            }
            *v = merged;
        }
    }

    /// All postings for `term` (empty slice if absent).
    pub fn postings(&self, term: &str) -> &[Posting] {
        self.postings.get(term).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Postings for `term` within one table.
    pub fn postings_in(&self, term: &str, table: TableId) -> &[Posting] {
        let all = self.postings(term);
        let lo = all.partition_point(|p| p.tuple.table < table);
        let hi = all.partition_point(|p| p.tuple.table <= table);
        &all[lo..hi]
    }

    /// Distinct rows of `table` containing `term` (sorted, deduplicated).
    pub fn rows_in(&self, term: &str, table: TableId) -> Vec<RowId> {
        let mut rows: Vec<RowId> = self
            .postings_in(term, table)
            .iter()
            .map(|p| p.tuple.row)
            .collect();
        rows.dedup();
        rows
    }

    /// Number of distinct tuples (across tables) containing `term`.
    pub fn doc_freq(&self, term: &str) -> usize {
        let mut n = 0;
        let mut last: Option<TupleId> = None;
        for p in self.postings(term) {
            if last != Some(p.tuple) {
                n += 1;
                last = Some(p.tuple);
            }
        }
        n
    }

    /// Number of tuples indexed in `table`.
    pub fn tuple_count(&self, table: TableId) -> usize {
        self.tuple_counts.get(&table).copied().unwrap_or(0)
    }

    /// All indexed terms.
    pub fn terms(&self) -> impl Iterator<Item = &str> {
        self.postings.keys().map(|s| s.as_str())
    }

    pub fn term_count(&self) -> usize {
        self.postings.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(table: u32, row: u32, col: usize) -> Posting {
        Posting {
            tuple: TupleId::new(TableId(table), RowId(row)),
            column: col,
            tf: 1,
        }
    }

    fn index() -> InvertedIndex {
        let mut ix = InvertedIndex::new();
        ix.add("xml", t(0, 0, 1));
        ix.add("xml", t(0, 0, 1)); // duplicate occurrence, merges to tf=2
        ix.add("xml", t(1, 3, 0));
        ix.add("xml", t(0, 2, 1));
        ix.add("graph", t(1, 3, 0));
        ix.finalize();
        ix
    }

    #[test]
    fn postings_sorted_and_merged() {
        let ix = index();
        let ps = ix.postings("xml");
        assert_eq!(ps.len(), 3);
        assert_eq!(ps[0].tf, 2);
        assert!(ps
            .windows(2)
            .all(|w| (w[0].tuple.table, w[0].tuple.row) <= (w[1].tuple.table, w[1].tuple.row)));
    }

    #[test]
    fn per_table_slice() {
        let ix = index();
        assert_eq!(ix.postings_in("xml", TableId(0)).len(), 2);
        assert_eq!(ix.postings_in("xml", TableId(1)).len(), 1);
        assert_eq!(ix.postings_in("xml", TableId(9)).len(), 0);
    }

    #[test]
    fn rows_in_dedups() {
        let ix = index();
        assert_eq!(ix.rows_in("xml", TableId(0)), vec![RowId(0), RowId(2)]);
    }

    #[test]
    fn doc_freq_counts_tuples() {
        let ix = index();
        assert_eq!(ix.doc_freq("xml"), 3);
        assert_eq!(ix.doc_freq("graph"), 1);
        assert_eq!(ix.doc_freq("nope"), 0);
    }

    #[test]
    fn missing_term_is_empty() {
        let ix = index();
        assert!(ix.postings("nothing").is_empty());
        assert!(ix.rows_in("nothing", TableId(0)).is_empty());
    }
}
