//! Full-text inverted index over a database's text columns.
//!
//! Storage lives in the shared [`kwdb_common::index`] core: terms are
//! interned into a dense-`Sym` dictionary (each distinct term allocated
//! exactly once, however many occurrences the build sees) and postings sit
//! in per-term sorted lists behind the layout-agnostic [`Postings`] /
//! cursor API (plain `Vec`s or compressed blocks, per [`Layout`]). Query
//! paths resolve each keyword to a [`Sym`] once via [`InvertedIndex::sym`]
//! and then fetch views by dense id; the string-keyed methods remain as
//! conveniences that do exactly one dictionary lookup.

use crate::schema::TableId;
use crate::table::{RowId, TupleId};
use kwdb_common::index::{IndexStats, Layout, Postings, SegmentCounts, SegmentedIndex, TermStats};
use kwdb_common::intern::Sym;
use std::collections::HashMap;
use std::time::Duration;

/// One posting: a keyword occurrence in a tuple's column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Posting {
    pub tuple: TupleId,
    /// Column where the keyword occurred.
    pub column: usize,
    /// Occurrences of the keyword within that column value.
    pub tf: u32,
}

impl kwdb_common::index::Posting for Posting {
    type SortKey = (TableId, RowId, usize);

    /// Payload round-tripped by the block codec: column, then tf.
    const EXTRA_FIELDS: usize = 2;

    fn sort_key(&self) -> Self::SortKey {
        (self.tuple.table, self.tuple.row, self.column)
    }

    /// `(table, row)` packed into one key. Deliberately column-blind:
    /// cursors and WAND treat a tuple's occurrences across columns as one
    /// logical document (they share a key and aggregate their impacts).
    fn key64(&self) -> u64 {
        tuple_key(self.tuple)
    }

    fn extra(&self, i: usize) -> u64 {
        match i {
            0 => self.column as u64,
            _ => self.tf as u64,
        }
    }

    fn from_parts(key: u64, extras: &[u64]) -> Self {
        Posting {
            tuple: TupleId::new(TableId((key >> 32) as u32), RowId(key as u32)),
            column: extras[0] as usize,
            tf: extras[1] as u32,
        }
    }

    fn coalesce(&mut self, other: &Self) -> bool {
        if self.tuple == other.tuple && self.column == other.column {
            self.tf += other.tf;
            true
        } else {
            false
        }
    }

    fn occurrences(&self) -> u64 {
        self.tf as u64
    }

    fn same_doc(&self, other: &Self) -> bool {
        self.tuple == other.tuple
    }
}

/// The cursor key ([`kwdb_common::index::Posting::key64`]) of a tuple.
pub fn tuple_key(tuple: TupleId) -> u64 {
    ((tuple.table.0 as u64) << 32) | tuple.row.0 as u64
}

/// Half-open cursor-key range `[lo, hi)` covering every posting of `table`
/// — the `seek` window for per-table scans and WAND over one table.
pub fn table_key_range(table: TableId) -> (u64, u64) {
    let lo = (table.0 as u64) << 32;
    (lo, lo + (1u64 << 32))
}

/// Inverted index: keyword → postings, with a per-table view.
///
/// Postings are stored sorted by `(table, row, column)` so per-table runs
/// are contiguous ("query tuple sets" in DISCOVER terms) and reachable by
/// a single cursor `seek` into [`table_key_range`].
///
/// Storage is a generational [`SegmentedIndex`]: a batch build seals into a
/// single compacted segment (identical to the old build-once store), while
/// an `add` after a build lands in the realtime segment and
/// `delete_tuple` tombstones — both visible to every
/// query immediately, no rebuild required.
#[derive(Debug, Clone, Default)]
pub struct InvertedIndex {
    store: SegmentedIndex<Posting>,
    /// Documents (tuples) per table, for IDF computation by callers.
    tuple_counts: HashMap<TableId, usize>,
    build_time: Option<Duration>,
}

impl InvertedIndex {
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn add(&mut self, term: &str, posting: Posting) {
        self.store.add(term, posting);
    }

    pub(crate) fn set_tuple_count(&mut self, table: TableId, n: usize) {
        self.tuple_counts.insert(table, n);
    }

    pub(crate) fn set_build_time(&mut self, d: Duration) {
        self.build_time = Some(d);
    }

    /// Seal + compact the batch build into one segment in the configured
    /// layout.
    pub(crate) fn finalize(&mut self) {
        self.store.finalize_layout(self.store.layout());
    }

    /// Tombstone every posting of `tuple`, in every segment. Returns `false`
    /// when the tuple was already dead.
    pub(crate) fn delete_tuple(&mut self, tuple: TupleId) -> bool {
        self.store.delete_key(tuple_key(tuple))
    }

    /// Seal the realtime segment (see [`SegmentedIndex::commit`]).
    pub(crate) fn commit(&mut self) -> SegmentCounts {
        self.store.commit()
    }

    /// Full compaction (see [`SegmentedIndex::merge`]).
    pub(crate) fn merge(&mut self) -> SegmentCounts {
        self.store.merge()
    }

    /// Current segment census (realtime/sealed).
    pub fn segment_counts(&self) -> SegmentCounts {
        self.store.segment_counts()
    }

    /// Completed segment-merge operations over this index's lifetime.
    pub fn merges(&self) -> u64 {
        self.store.merges()
    }

    /// The configured physical layout.
    pub fn layout(&self) -> Layout {
        self.store.layout()
    }

    /// Re-encode the posting lists into `layout` (contents unchanged).
    pub fn set_layout(&mut self, layout: Layout) {
        self.store.set_layout(layout);
    }

    /// Resolve a query term to its dense id — one dictionary lookup. Do this
    /// once per query term, then drive the query off the `Sym`.
    pub fn sym(&self, term: &str) -> Option<Sym> {
        self.store.sym(term)
    }

    /// All postings for `term` (the empty view if absent).
    pub fn postings(&self, term: &str) -> Postings<'_, Posting> {
        self.store.postings_str(term)
    }

    /// All postings for an already-resolved term.
    pub fn postings_sym(&self, sym: Sym) -> Postings<'_, Posting> {
        self.store.postings(sym)
    }

    /// Postings for `term` within one table (decoded into a fresh `Vec`).
    pub fn postings_in(&self, term: &str, table: TableId) -> Vec<Posting> {
        self.sym(term)
            .map_or_else(Vec::new, |s| self.postings_in_sym(s, table))
    }

    /// Postings for an already-resolved term within one table: one cursor
    /// `seek` to the table's key range, then a bounded scan.
    pub fn postings_in_sym(&self, sym: Sym, table: TableId) -> Vec<Posting> {
        let (lo, hi) = table_key_range(table);
        let mut cursor = self.store.postings(sym).cursor();
        let mut out = Vec::new();
        cursor.seek(lo);
        while let Some(p) = cursor.peek() {
            if kwdb_common::index::Posting::key64(&p) >= hi {
                break;
            }
            out.push(p);
            cursor.advance();
        }
        out
    }

    /// Distinct rows of `table` containing `term` (sorted, deduplicated).
    pub fn rows_in(&self, term: &str, table: TableId) -> Vec<RowId> {
        let mut rows: Vec<RowId> = self
            .postings_in(term, table)
            .iter()
            .map(|p| p.tuple.row)
            .collect();
        rows.dedup();
        rows
    }

    /// Number of distinct tuples (across tables) containing `term`.
    /// `O(1)` on a finalized index — served from the term's cached stats.
    pub fn doc_freq(&self, term: &str) -> usize {
        self.sym(term).map_or(0, |s| self.doc_freq_sym(s))
    }

    /// Document frequency for an already-resolved term.
    pub fn doc_freq_sym(&self, sym: Sym) -> usize {
        self.store.term_stats(sym).df as usize
    }

    /// Per-term stats (document frequency, total term frequency).
    pub fn term_stats(&self, sym: Sym) -> TermStats {
        self.store.term_stats(sym)
    }

    /// Number of tuples indexed in `table`.
    pub fn tuple_count(&self, table: TableId) -> usize {
        self.tuple_counts.get(&table).copied().unwrap_or(0)
    }

    /// All indexed terms, in dictionary id order.
    pub fn terms(&self) -> impl Iterator<Item = &str> {
        self.store.terms()
    }

    pub fn term_count(&self) -> usize {
        self.store.term_count()
    }

    /// Whole-index size figures, with the build wall-clock when the owner
    /// measured one.
    pub fn index_stats(&self) -> IndexStats {
        self.store.index_stats().with_build(self.build_time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(table: u32, row: u32, col: usize) -> Posting {
        Posting {
            tuple: TupleId::new(TableId(table), RowId(row)),
            column: col,
            tf: 1,
        }
    }

    fn index() -> InvertedIndex {
        let mut ix = InvertedIndex::new();
        ix.add("xml", t(0, 0, 1));
        ix.add("xml", t(0, 0, 1)); // duplicate occurrence, merges to tf=2
        ix.add("xml", t(1, 3, 0));
        ix.add("xml", t(0, 2, 1));
        ix.add("graph", t(1, 3, 0));
        ix.finalize();
        ix
    }

    #[test]
    fn postings_sorted_and_merged() {
        let ix = index();
        let ps = ix.postings("xml").to_vec();
        assert_eq!(ps.len(), 3);
        assert_eq!(ps[0].tf, 2);
        assert!(ps
            .windows(2)
            .all(|w| (w[0].tuple.table, w[0].tuple.row) <= (w[1].tuple.table, w[1].tuple.row)));
    }

    #[test]
    fn per_table_slice() {
        let ix = index();
        assert_eq!(ix.postings_in("xml", TableId(0)).len(), 2);
        assert_eq!(ix.postings_in("xml", TableId(1)).len(), 1);
        assert_eq!(ix.postings_in("xml", TableId(9)).len(), 0);
    }

    #[test]
    fn rows_in_dedups() {
        let ix = index();
        assert_eq!(ix.rows_in("xml", TableId(0)), vec![RowId(0), RowId(2)]);
    }

    #[test]
    fn doc_freq_counts_tuples() {
        let ix = index();
        assert_eq!(ix.doc_freq("xml"), 3);
        assert_eq!(ix.doc_freq("graph"), 1);
        assert_eq!(ix.doc_freq("nope"), 0);
    }

    #[test]
    fn missing_term_is_empty() {
        let ix = index();
        assert!(ix.postings("nothing").is_empty());
        assert!(ix.rows_in("nothing", TableId(0)).is_empty());
    }

    #[test]
    fn sym_api_matches_string_api() {
        let ix = index();
        let xml = ix.sym("xml").expect("indexed term resolves");
        assert_eq!(ix.postings_sym(xml), ix.postings("xml"));
        assert_eq!(
            ix.postings_in_sym(xml, TableId(0)),
            ix.postings_in("xml", TableId(0))
        );
        assert_eq!(ix.doc_freq_sym(xml), ix.doc_freq("xml"));
        assert!(ix.sym("nothing").is_none());
    }

    #[test]
    fn index_stats_report_sizes() {
        let ix = index();
        let stats = ix.index_stats();
        assert_eq!(stats.terms, 2);
        assert_eq!(stats.postings, 4);
        assert_eq!(stats.posting_bytes, 4 * std::mem::size_of::<Posting>());
        assert!(stats.build.is_none(), "unit-built index is untimed");
    }

    #[test]
    fn term_stats_track_tf_and_df() {
        let ix = index();
        let xml = ix.sym("xml").unwrap();
        let stats = ix.term_stats(xml);
        assert_eq!(stats.df, 3);
        assert_eq!(stats.total_tf, 4); // tf=2 posting plus two tf=1 postings
    }

    #[test]
    fn layout_switch_preserves_query_results() {
        let mut ix = InvertedIndex::new();
        for row in 0..2000u32 {
            ix.add("dense", t(0, row, 0));
            ix.add("dense", t(1, row / 2, 1));
        }
        ix.finalize();
        let plain = ix.postings("dense").to_vec();
        let plain_in: Vec<_> = ix.postings_in("dense", TableId(1));
        let plain_bytes = ix.index_stats().posting_bytes;

        ix.set_layout(Layout::Blocks);
        assert_eq!(ix.layout(), Layout::Blocks);
        assert_eq!(ix.postings("dense").to_vec(), plain);
        assert_eq!(ix.postings_in("dense", TableId(1)), plain_in);
        assert_eq!(ix.rows_in("dense", TableId(1)).len(), 1000);
        assert!(ix.index_stats().posting_bytes < plain_bytes);
        assert!(ix.index_stats().blocks > 0);
    }
}
