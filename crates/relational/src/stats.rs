//! Execution statistics — the cost metrics the tutorial's efficiency section
//! compares engines on (tuples scanned, join probes, results produced).

use std::sync::atomic::{AtomicU64, Ordering};

/// Shared, thread-safe operator counters. The parallel CN executor updates
/// these from worker threads, so they are atomics rather than `Cell`s.
#[derive(Debug, Default)]
pub struct ExecStats {
    tuples_scanned: AtomicU64,
    join_probes: AtomicU64,
    joins_executed: AtomicU64,
    rows_output: AtomicU64,
    probe_rows: AtomicU64,
    blocks_skipped: AtomicU64,
}

impl ExecStats {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn add_scanned(&self, n: u64) {
        self.tuples_scanned.fetch_add(n, Ordering::Relaxed);
    }
    pub fn add_probes(&self, n: u64) {
        self.join_probes.fetch_add(n, Ordering::Relaxed);
    }
    pub fn add_join(&self) {
        self.joins_executed.fetch_add(1, Ordering::Relaxed);
    }
    pub fn add_output(&self, n: u64) {
        self.rows_output.fetch_add(n, Ordering::Relaxed);
    }
    /// Rows matched by hash-join probes (probe *hits*, not attempts).
    pub fn add_probe_rows(&self, n: u64) {
        self.probe_rows.fetch_add(n, Ordering::Relaxed);
    }
    /// Posting-list blocks jumped over undecoded by cursor seeks and
    /// block-max pruning.
    pub fn add_blocks_skipped(&self, n: u64) {
        self.blocks_skipped.fetch_add(n, Ordering::Relaxed);
    }

    pub fn tuples_scanned(&self) -> u64 {
        self.tuples_scanned.load(Ordering::Relaxed)
    }
    pub fn join_probes(&self) -> u64 {
        self.join_probes.load(Ordering::Relaxed)
    }
    pub fn joins_executed(&self) -> u64 {
        self.joins_executed.load(Ordering::Relaxed)
    }
    pub fn rows_output(&self) -> u64 {
        self.rows_output.load(Ordering::Relaxed)
    }
    pub fn probe_rows(&self) -> u64 {
        self.probe_rows.load(Ordering::Relaxed)
    }
    pub fn blocks_skipped(&self) -> u64 {
        self.blocks_skipped.load(Ordering::Relaxed)
    }

    /// Reset all counters to zero.
    pub fn reset(&self) {
        self.tuples_scanned.store(0, Ordering::Relaxed);
        self.join_probes.store(0, Ordering::Relaxed);
        self.joins_executed.store(0, Ordering::Relaxed);
        self.rows_output.store(0, Ordering::Relaxed);
        self.probe_rows.store(0, Ordering::Relaxed);
        self.blocks_skipped.store(0, Ordering::Relaxed);
    }

    /// Snapshot as a plain struct for reporting.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            tuples_scanned: self.tuples_scanned(),
            join_probes: self.join_probes(),
            joins_executed: self.joins_executed(),
            rows_output: self.rows_output(),
            probe_rows: self.probe_rows(),
            blocks_skipped: self.blocks_skipped(),
        }
    }
}

/// A point-in-time copy of [`ExecStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    pub tuples_scanned: u64,
    pub join_probes: u64,
    pub joins_executed: u64,
    pub rows_output: u64,
    pub probe_rows: u64,
    pub blocks_skipped: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = ExecStats::new();
        s.add_scanned(5);
        s.add_scanned(3);
        s.add_probes(2);
        s.add_join();
        s.add_output(7);
        s.add_probe_rows(4);
        s.add_blocks_skipped(6);
        let snap = s.snapshot();
        assert_eq!(snap.tuples_scanned, 8);
        assert_eq!(snap.join_probes, 2);
        assert_eq!(snap.joins_executed, 1);
        assert_eq!(snap.rows_output, 7);
        assert_eq!(snap.probe_rows, 4);
        assert_eq!(snap.blocks_skipped, 6);
    }

    #[test]
    fn reset_zeroes() {
        let s = ExecStats::new();
        s.add_scanned(5);
        s.reset();
        assert_eq!(s.snapshot(), StatsSnapshot::default());
    }
}
