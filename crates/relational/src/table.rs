//! Tuple storage.

use crate::schema::{TableId, TableSchema};
use kwdb_common::{KwdbError, Result, Value};
use std::collections::HashMap;

/// Dense row identifier within one table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RowId(pub u32);

/// Globally unique tuple identifier: `(table, row)`. This is also the node
/// identity when a database is viewed as a data graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TupleId {
    pub table: TableId,
    pub row: RowId,
}

impl TupleId {
    pub fn new(table: TableId, row: RowId) -> Self {
        TupleId { table, row }
    }
}

/// A tuple: one value per column.
pub type Row = Vec<Value>;

/// A table: schema plus row store plus a primary-key index.
#[derive(Debug, Clone)]
pub struct Table {
    pub id: TableId,
    pub schema: TableSchema,
    rows: Vec<Row>,
    /// PK value → row, maintained when a primary key is declared.
    pk_index: HashMap<Value, RowId>,
}

impl Table {
    pub(crate) fn new(id: TableId, schema: TableSchema) -> Self {
        Table {
            id,
            schema,
            rows: Vec::new(),
            pk_index: HashMap::new(),
        }
    }

    /// Insert a typed row; checks arity, column types and PK uniqueness.
    pub fn insert(&mut self, row: Row) -> Result<RowId> {
        if row.len() != self.schema.arity() {
            return Err(KwdbError::Schema(format!(
                "table {}: expected {} values, got {}",
                self.schema.name,
                self.schema.arity(),
                row.len()
            )));
        }
        for (v, c) in row.iter().zip(&self.schema.columns) {
            if let Some(vt) = v.value_type() {
                let compatible = vt == c.ty
                    || (vt == kwdb_common::value::ValueType::Int
                        && c.ty == kwdb_common::value::ValueType::Float);
                if !compatible {
                    return Err(KwdbError::TypeMismatch {
                        expected: match c.ty {
                            kwdb_common::value::ValueType::Int => "int",
                            kwdb_common::value::ValueType::Float => "float",
                            kwdb_common::value::ValueType::Text => "text",
                            kwdb_common::value::ValueType::Bool => "bool",
                        },
                        found: v.type_name(),
                    });
                }
            }
        }
        let rid = RowId(self.rows.len() as u32);
        if let Some(pk) = self.schema.primary_key {
            let key = row[pk].clone();
            if key.is_null() {
                return Err(KwdbError::Schema(format!(
                    "table {}: NULL primary key",
                    self.schema.name
                )));
            }
            match self.pk_index.entry(key) {
                std::collections::hash_map::Entry::Occupied(_) => {
                    return Err(KwdbError::Schema(format!(
                        "table {}: duplicate primary key {}",
                        self.schema.name, row[pk]
                    )));
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(rid);
                }
            }
        }
        self.rows.push(row);
        Ok(rid)
    }

    pub fn row(&self, id: RowId) -> &Row {
        &self.rows[id.0 as usize]
    }

    pub fn get(&self, id: RowId, col: usize) -> &Value {
        &self.rows[id.0 as usize][col]
    }

    /// Look up a row by primary-key value.
    pub fn lookup_pk(&self, key: &Value) -> Option<RowId> {
        self.pk_index.get(key).copied()
    }

    pub fn len(&self) -> usize {
        self.rows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Iterate `(RowId, &Row)` in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (RowId, &Row)> {
        self.rows
            .iter()
            .enumerate()
            .map(|(i, r)| (RowId(i as u32), r))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnType, TableBuilder};

    fn table() -> Table {
        let schema = TableBuilder::new("author")
            .column("aid", ColumnType::Int)
            .column("name", ColumnType::Text)
            .primary_key("aid")
            .build()
            .unwrap();
        Table::new(TableId(0), schema)
    }

    #[test]
    fn insert_and_read() {
        let mut t = table();
        let r = t.insert(vec![1.into(), "Widom".into()]).unwrap();
        assert_eq!(t.get(r, 1).as_text(), Some("Widom"));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn arity_checked() {
        let mut t = table();
        assert!(t.insert(vec![1.into()]).is_err());
    }

    #[test]
    fn type_checked() {
        let mut t = table();
        assert!(t.insert(vec!["oops".into(), "Widom".into()]).is_err());
    }

    #[test]
    fn null_allowed_in_non_pk() {
        let mut t = table();
        assert!(t.insert(vec![1.into(), Value::Null]).is_ok());
    }

    #[test]
    fn pk_uniqueness_and_lookup() {
        let mut t = table();
        t.insert(vec![7.into(), "a".into()]).unwrap();
        assert!(t.insert(vec![7.into(), "b".into()]).is_err());
        assert!(t.insert(vec![Value::Null, "c".into()]).is_err());
        assert_eq!(t.lookup_pk(&7.into()), Some(RowId(0)));
        assert_eq!(t.lookup_pk(&8.into()), None);
    }

    #[test]
    fn int_widens_to_float_column() {
        let schema = TableBuilder::new("m")
            .column("price", ColumnType::Float)
            .build()
            .unwrap();
        let mut t = Table::new(TableId(0), schema);
        assert!(t.insert(vec![3.into()]).is_ok());
    }
}
