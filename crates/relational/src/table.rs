//! Tuple storage.

use crate::schema::{TableId, TableSchema};
use kwdb_common::{KwdbError, Result, Value};
use std::collections::HashMap;

/// Dense row identifier within one table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RowId(pub u32);

/// Globally unique tuple identifier: `(table, row)`. This is also the node
/// identity when a database is viewed as a data graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TupleId {
    pub table: TableId,
    pub row: RowId,
}

impl TupleId {
    pub fn new(table: TableId, row: RowId) -> Self {
        TupleId { table, row }
    }
}

/// A tuple: one value per column.
pub type Row = Vec<Value>;

/// A table: schema plus row store plus a primary-key index.
#[derive(Debug, Clone)]
pub struct Table {
    pub id: TableId,
    pub schema: TableSchema,
    rows: Vec<Row>,
    /// PK value → row, maintained when a primary key is declared.
    pk_index: HashMap<Value, RowId>,
    /// Tombstone bitmap, one bit per row slot. Row ids are never reused:
    /// deleted slots stay allocated so `RowId`s held by postings and FK
    /// edges remain stable; iteration and scans skip dead slots.
    deleted: Vec<u64>,
    dead: u32,
}

impl Table {
    pub(crate) fn new(id: TableId, schema: TableSchema) -> Self {
        Table {
            id,
            schema,
            rows: Vec::new(),
            pk_index: HashMap::new(),
            deleted: Vec::new(),
            dead: 0,
        }
    }

    /// Insert a typed row; checks arity, column types and PK uniqueness.
    pub fn insert(&mut self, row: Row) -> Result<RowId> {
        if row.len() != self.schema.arity() {
            return Err(KwdbError::Schema(format!(
                "table {}: expected {} values, got {}",
                self.schema.name,
                self.schema.arity(),
                row.len()
            )));
        }
        for (v, c) in row.iter().zip(&self.schema.columns) {
            if let Some(vt) = v.value_type() {
                let compatible = vt == c.ty
                    || (vt == kwdb_common::value::ValueType::Int
                        && c.ty == kwdb_common::value::ValueType::Float);
                if !compatible {
                    return Err(KwdbError::TypeMismatch {
                        expected: match c.ty {
                            kwdb_common::value::ValueType::Int => "int",
                            kwdb_common::value::ValueType::Float => "float",
                            kwdb_common::value::ValueType::Text => "text",
                            kwdb_common::value::ValueType::Bool => "bool",
                        },
                        found: v.type_name(),
                    });
                }
            }
        }
        let rid = RowId(self.rows.len() as u32);
        if let Some(pk) = self.schema.primary_key {
            let key = row[pk].clone();
            if key.is_null() {
                return Err(KwdbError::Schema(format!(
                    "table {}: NULL primary key",
                    self.schema.name
                )));
            }
            match self.pk_index.entry(key) {
                std::collections::hash_map::Entry::Occupied(_) => {
                    return Err(KwdbError::Schema(format!(
                        "table {}: duplicate primary key {}",
                        self.schema.name, row[pk]
                    )));
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(rid);
                }
            }
        }
        self.rows.push(row);
        Ok(rid)
    }

    /// Tombstone a row: mark the slot dead and drop its PK entry. The slot
    /// itself (and its `RowId`) stays allocated forever. Returns `false` if
    /// the row was already dead.
    pub fn delete(&mut self, id: RowId) -> bool {
        let i = id.0 as usize;
        assert!(i < self.rows.len(), "delete: row {i} out of bounds");
        let (word, bit) = (i / 64, 1u64 << (i % 64));
        if self.deleted.len() <= word {
            self.deleted.resize(word + 1, 0);
        }
        if self.deleted[word] & bit != 0 {
            return false;
        }
        self.deleted[word] |= bit;
        self.dead += 1;
        if let Some(pk) = self.schema.primary_key {
            self.pk_index.remove(&self.rows[i][pk]);
        }
        true
    }

    /// Whether this row slot has been tombstoned by [`Table::delete`].
    pub fn is_deleted(&self, id: RowId) -> bool {
        let i = id.0 as usize;
        self.deleted
            .get(i / 64)
            .is_some_and(|w| w & (1u64 << (i % 64)) != 0)
    }

    pub fn row(&self, id: RowId) -> &Row {
        &self.rows[id.0 as usize]
    }

    pub fn get(&self, id: RowId, col: usize) -> &Value {
        &self.rows[id.0 as usize][col]
    }

    /// Look up a row by primary-key value.
    pub fn lookup_pk(&self, key: &Value) -> Option<RowId> {
        self.pk_index.get(key).copied()
    }

    /// Number of row **slots** (including tombstoned ones); `RowId`s range
    /// over `0..len()`.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Number of live (non-deleted) rows.
    pub fn live_len(&self) -> usize {
        self.rows.len() - self.dead as usize
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Iterate `(RowId, &Row)` over **live** rows in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (RowId, &Row)> {
        self.rows
            .iter()
            .enumerate()
            .map(|(i, r)| (RowId(i as u32), r))
            .filter(|(id, _)| !self.is_deleted(*id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnType, TableBuilder};

    fn table() -> Table {
        let schema = TableBuilder::new("author")
            .column("aid", ColumnType::Int)
            .column("name", ColumnType::Text)
            .primary_key("aid")
            .build()
            .unwrap();
        Table::new(TableId(0), schema)
    }

    #[test]
    fn insert_and_read() {
        let mut t = table();
        let r = t.insert(vec![1.into(), "Widom".into()]).unwrap();
        assert_eq!(t.get(r, 1).as_text(), Some("Widom"));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn arity_checked() {
        let mut t = table();
        assert!(t.insert(vec![1.into()]).is_err());
    }

    #[test]
    fn type_checked() {
        let mut t = table();
        assert!(t.insert(vec!["oops".into(), "Widom".into()]).is_err());
    }

    #[test]
    fn null_allowed_in_non_pk() {
        let mut t = table();
        assert!(t.insert(vec![1.into(), Value::Null]).is_ok());
    }

    #[test]
    fn pk_uniqueness_and_lookup() {
        let mut t = table();
        t.insert(vec![7.into(), "a".into()]).unwrap();
        assert!(t.insert(vec![7.into(), "b".into()]).is_err());
        assert!(t.insert(vec![Value::Null, "c".into()]).is_err());
        assert_eq!(t.lookup_pk(&7.into()), Some(RowId(0)));
        assert_eq!(t.lookup_pk(&8.into()), None);
    }

    #[test]
    fn delete_tombstones_and_frees_pk() {
        let mut t = table();
        let r0 = t.insert(vec![1.into(), "a".into()]).unwrap();
        let r1 = t.insert(vec![2.into(), "b".into()]).unwrap();
        assert!(t.delete(r0));
        assert!(!t.delete(r0), "double delete is a no-op");
        assert!(t.is_deleted(r0));
        assert!(!t.is_deleted(r1));
        assert_eq!(t.len(), 2, "slots stay allocated");
        assert_eq!(t.live_len(), 1);
        assert_eq!(t.lookup_pk(&1.into()), None, "PK entry dropped");
        assert_eq!(t.lookup_pk(&2.into()), Some(r1));
        let live: Vec<RowId> = t.iter().map(|(id, _)| id).collect();
        assert_eq!(live, vec![r1], "iteration skips tombstones");
        // The PK value of a deleted row may be inserted again (new slot).
        let r2 = t.insert(vec![1.into(), "a2".into()]).unwrap();
        assert_eq!(r2, RowId(2));
    }

    #[test]
    fn int_widens_to_float_column() {
        let schema = TableBuilder::new("m")
            .column("price", ColumnType::Float)
            .build()
            .unwrap();
        let mut t = Table::new(TableId(0), schema);
        assert!(t.insert(vec![3.into()]).is_ok());
    }
}
