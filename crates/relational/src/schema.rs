//! Schema objects: tables, columns, foreign keys, and the schema graph.

use kwdb_common::{KwdbError, Result};
use std::collections::HashMap;

pub use kwdb_common::value::ValueType as ColumnType;

/// Dense table identifier, in creation order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TableId(pub u32);

/// A column definition.
#[derive(Debug, Clone)]
pub struct ColumnDef {
    pub name: String,
    pub ty: ColumnType,
    /// Text columns are full-text indexed by default; set to `false` for
    /// codes/identifiers that should not match keywords.
    pub full_text: bool,
}

/// A single-column foreign key referencing another table's primary key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ForeignKey {
    /// Index of the referencing column in this table.
    pub column: usize,
    /// Referenced table name (resolved to an id when the table is created).
    pub ref_table: String,
}

/// A table's schema.
#[derive(Debug, Clone)]
pub struct TableSchema {
    pub name: String,
    pub columns: Vec<ColumnDef>,
    /// Index of the primary-key column, if declared.
    pub primary_key: Option<usize>,
    pub foreign_keys: Vec<ForeignKey>,
}

impl TableSchema {
    /// Index of a column by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Indices of full-text-indexed text columns.
    pub fn text_columns(&self) -> impl Iterator<Item = usize> + '_ {
        self.columns
            .iter()
            .enumerate()
            .filter(|(_, c)| c.full_text && c.ty == ColumnType::Text)
            .map(|(i, _)| i)
    }
}

/// Fluent builder for [`TableSchema`], consumed by
/// [`Database::create_table`](crate::Database::create_table).
#[derive(Debug, Clone)]
pub struct TableBuilder {
    schema: TableSchema,
}

impl TableBuilder {
    pub fn new(name: &str) -> Self {
        TableBuilder {
            schema: TableSchema {
                name: name.to_string(),
                columns: Vec::new(),
                primary_key: None,
                foreign_keys: Vec::new(),
            },
        }
    }

    /// Append a column.
    pub fn column(mut self, name: &str, ty: ColumnType) -> Self {
        self.schema.columns.push(ColumnDef {
            name: name.to_string(),
            ty,
            full_text: true,
        });
        self
    }

    /// Append a text column excluded from the full-text index.
    pub fn column_no_index(mut self, name: &str, ty: ColumnType) -> Self {
        self.schema.columns.push(ColumnDef {
            name: name.to_string(),
            ty,
            full_text: false,
        });
        self
    }

    /// Declare `name` (already added) as the primary key.
    pub fn primary_key(mut self, name: &str) -> Self {
        self.schema.primary_key = self.schema.column_index(name);
        self
    }

    /// Declare `column` (already added) as a foreign key to `ref_table`'s
    /// primary key.
    pub fn foreign_key(mut self, column: &str, ref_table: &str) -> Self {
        if let Some(idx) = self.schema.column_index(column) {
            self.schema.foreign_keys.push(ForeignKey {
                column: idx,
                ref_table: ref_table.to_string(),
            });
        }
        self
    }

    /// Validate and finish. Errors on empty tables, dangling PK/FK columns.
    pub fn build(self) -> Result<TableSchema> {
        let s = self.schema;
        if s.columns.is_empty() {
            return Err(KwdbError::Schema(format!(
                "table {} has no columns",
                s.name
            )));
        }
        let mut names = std::collections::HashSet::new();
        for c in &s.columns {
            if !names.insert(c.name.as_str()) {
                return Err(KwdbError::Schema(format!(
                    "duplicate column {} in table {}",
                    c.name, s.name
                )));
            }
        }
        Ok(s)
    }
}

/// An edge in the schema graph: a foreign key from one table to another.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SchemaEdge {
    /// Referencing table.
    pub from: TableId,
    /// Referenced table.
    pub to: TableId,
    /// FK column index in `from`.
    pub fk_column: usize,
    /// PK column index in `to`.
    pub pk_column: usize,
}

/// The schema graph: tables as nodes, foreign keys as (directed) edges,
/// traversed in both directions by candidate-network generation.
#[derive(Debug, Clone, Default)]
pub struct SchemaGraph {
    edges: Vec<SchemaEdge>,
    /// Adjacency: for each table, (edge index, direction) where direction
    /// `true` means the edge is traversed from → to.
    adj: HashMap<TableId, Vec<(usize, bool)>>,
}

impl SchemaGraph {
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn new() -> Self {
        Self::default()
    }

    pub(crate) fn add_edge(&mut self, e: SchemaEdge) {
        let idx = self.edges.len();
        self.adj.entry(e.from).or_default().push((idx, true));
        self.adj.entry(e.to).or_default().push((idx, false));
        self.edges.push(e);
    }

    pub fn edges(&self) -> &[SchemaEdge] {
        &self.edges
    }

    /// Edges incident to `t`, each as `(edge, neighbor)`.
    pub fn neighbors(&self, t: TableId) -> impl Iterator<Item = (&SchemaEdge, TableId)> {
        self.adj
            .get(&t)
            .into_iter()
            .flatten()
            .map(move |&(i, fwd)| {
                let e = &self.edges[i];
                (e, if fwd { e.to } else { e.from })
            })
    }

    /// Degree of table `t` in the schema graph.
    pub fn degree(&self, t: TableId) -> usize {
        self.adj.get(&t).map_or(0, |v| v.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_validates_duplicates() {
        let err = TableBuilder::new("t")
            .column("a", ColumnType::Int)
            .column("a", ColumnType::Text)
            .build();
        assert!(err.is_err());
    }

    #[test]
    fn builder_rejects_empty() {
        assert!(TableBuilder::new("t").build().is_err());
    }

    #[test]
    fn column_lookup() {
        let s = TableBuilder::new("t")
            .column("a", ColumnType::Int)
            .column("b", ColumnType::Text)
            .primary_key("a")
            .build()
            .unwrap();
        assert_eq!(s.column_index("b"), Some(1));
        assert_eq!(s.column_index("z"), None);
        assert_eq!(s.primary_key, Some(0));
        assert_eq!(s.arity(), 2);
    }

    #[test]
    fn text_columns_respect_no_index() {
        let s = TableBuilder::new("t")
            .column("a", ColumnType::Text)
            .column_no_index("code", ColumnType::Text)
            .column("n", ColumnType::Int)
            .build()
            .unwrap();
        let cols: Vec<usize> = s.text_columns().collect();
        assert_eq!(cols, vec![0]);
    }

    #[test]
    fn schema_graph_adjacency() {
        let mut g = SchemaGraph::new();
        g.add_edge(SchemaEdge {
            from: TableId(2),
            to: TableId(0),
            fk_column: 0,
            pk_column: 0,
        });
        g.add_edge(SchemaEdge {
            from: TableId(2),
            to: TableId(1),
            fk_column: 1,
            pk_column: 0,
        });
        assert_eq!(g.degree(TableId(2)), 2);
        assert_eq!(g.degree(TableId(0)), 1);
        let n0: Vec<TableId> = g.neighbors(TableId(0)).map(|(_, t)| t).collect();
        assert_eq!(n0, vec![TableId(2)]);
        let n2: Vec<TableId> = g.neighbors(TableId(2)).map(|(_, t)| t).collect();
        assert_eq!(n2, vec![TableId(0), TableId(1)]);
    }
}
