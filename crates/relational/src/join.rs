//! Hash equi-join over row sets — the workhorse of candidate-network
//! evaluation.

use crate::stats::ExecStats;
use crate::table::{RowId, Table};
use kwdb_common::Value;
use std::collections::HashMap;

/// An intermediate join result: each output tuple is one `RowId` per joined
/// table, in join-sequence order. Slot `i` belongs to the `i`-th table of the
/// sequence the caller maintains.
pub type JoinedRows = Vec<Vec<RowId>>;

/// Seed an intermediate result from a single table's row set.
pub fn seed(rows: &[RowId]) -> JoinedRows {
    rows.iter().map(|&r| vec![r]).collect()
}

/// Hash-join `left` (an intermediate result) with `right_rows` of
/// `right_table`.
///
/// The join predicate is `left[left_slot].left_col == right.right_col`, the
/// FK = PK equality of a schema-graph edge. The right side is built into a
/// hash table (`O(|right|)`), then each left tuple probes it
/// (`O(|left| + output)`).
///
/// NULL join keys never match, per SQL semantics.
#[allow(clippy::too_many_arguments)] // a join has two fully-qualified sides
pub fn hash_join(
    left: &JoinedRows,
    left_slot: usize,
    left_table: &Table,
    left_col: usize,
    right_table: &Table,
    right_rows: &[RowId],
    right_col: usize,
    stats: &ExecStats,
) -> JoinedRows {
    stats.add_join();
    let mut ht: HashMap<&Value, Vec<RowId>> = HashMap::with_capacity(right_rows.len());
    for &r in right_rows {
        let key = right_table.get(r, right_col);
        stats.add_scanned(1);
        if !key.is_null() {
            ht.entry(key).or_default().push(r);
        }
    }
    let mut out = Vec::new();
    for lt in left {
        let key = left_table.get(lt[left_slot], left_col);
        stats.add_probes(1);
        if key.is_null() {
            continue;
        }
        if let Some(matches) = ht.get(key) {
            stats.add_probe_rows(matches.len() as u64);
            for &r in matches {
                let mut tup = lt.clone();
                tup.push(r);
                out.push(tup);
            }
        }
    }
    stats.add_output(out.len() as u64);
    out
}

/// Semi-join: rows of `left_rows` (of `left_table`) that have at least one
/// match in `right_rows` on `left_col == right_col`. Used by the
/// RDBMS-powered evaluation strategy (Qin et al., SIGMOD 09) to prune tuple
/// sets before full joins.
pub fn semi_join(
    left_table: &Table,
    left_rows: &[RowId],
    left_col: usize,
    right_table: &Table,
    right_rows: &[RowId],
    right_col: usize,
    stats: &ExecStats,
) -> Vec<RowId> {
    let mut keys: std::collections::HashSet<&Value> =
        std::collections::HashSet::with_capacity(right_rows.len());
    for &r in right_rows {
        let v = right_table.get(r, right_col);
        stats.add_scanned(1);
        if !v.is_null() {
            keys.insert(v);
        }
    }
    let out: Vec<RowId> = left_rows
        .iter()
        .copied()
        .filter(|&r| {
            stats.add_probes(1);
            let v = left_table.get(r, left_col);
            !v.is_null() && keys.contains(v)
        })
        .collect();
    stats.add_output(out.len() as u64);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnType, TableBuilder, TableId};
    use kwdb_common::Value;

    fn tables() -> (Table, Table) {
        let a_schema = TableBuilder::new("author")
            .column("aid", ColumnType::Int)
            .column("name", ColumnType::Text)
            .primary_key("aid")
            .build()
            .unwrap();
        let mut a = Table::new(TableId(0), a_schema);
        a.insert(vec![1.into(), "widom".into()]).unwrap();
        a.insert(vec![2.into(), "ullman".into()]).unwrap();

        let w_schema = TableBuilder::new("write")
            .column("aid", ColumnType::Int)
            .column("pid", ColumnType::Int)
            .build()
            .unwrap();
        let mut w = Table::new(TableId(1), w_schema);
        w.insert(vec![1.into(), 10.into()]).unwrap();
        w.insert(vec![1.into(), 11.into()]).unwrap();
        w.insert(vec![2.into(), 10.into()]).unwrap();
        w.insert(vec![Value::Null, 12.into()]).unwrap();
        (a, w)
    }

    #[test]
    fn join_matches_fk() {
        let (a, w) = tables();
        let stats = ExecStats::new();
        let left = seed(&[RowId(0), RowId(1)]); // both authors
        let wrows: Vec<RowId> = (0..4).map(RowId).collect();
        let out = hash_join(&left, 0, &a, 0, &w, &wrows, 0, &stats);
        // widom joins 2 writes, ullman joins 1; NULL aid never matches.
        assert_eq!(out.len(), 3);
        assert!(out.iter().all(|t| t.len() == 2));
        assert_eq!(stats.snapshot().joins_executed, 1);
        assert_eq!(stats.snapshot().join_probes, 2);
    }

    #[test]
    fn join_empty_sides() {
        let (a, w) = tables();
        let stats = ExecStats::new();
        let out = hash_join(&seed(&[]), 0, &a, 0, &w, &[RowId(0)], 0, &stats);
        assert!(out.is_empty());
        let out = hash_join(&seed(&[RowId(0)]), 0, &a, 0, &w, &[], 0, &stats);
        assert!(out.is_empty());
    }

    #[test]
    fn multiway_join_extends_tuples() {
        let (a, w) = tables();
        let stats = ExecStats::new();
        let left = seed(&[RowId(0)]);
        let step1 = hash_join(
            &left,
            0,
            &a,
            0,
            &w,
            &[RowId(0), RowId(1), RowId(2)],
            0,
            &stats,
        );
        assert_eq!(step1.len(), 2);
        // join back to authors via slot 1 (write.aid) — self-rejoin
        let step2 = hash_join(&step1, 1, &w, 0, &a, &[RowId(0), RowId(1)], 0, &stats);
        assert_eq!(step2.len(), 2);
        assert!(step2.iter().all(|t| t.len() == 3));
    }

    #[test]
    fn semi_join_filters_left() {
        let (a, w) = tables();
        let stats = ExecStats::new();
        // authors having a write with pid=10
        let writes_pid10: Vec<RowId> = vec![RowId(0), RowId(2)];
        let out = semi_join(&a, &[RowId(0), RowId(1)], 0, &w, &writes_pid10, 0, &stats);
        assert_eq!(out, vec![RowId(0), RowId(1)]);
        // only widom has write rows {0,1}
        let out = semi_join(&a, &[RowId(0), RowId(1)], 0, &w, &[RowId(1)], 0, &stats);
        assert_eq!(out, vec![RowId(0)]);
    }
}
