//! Property tests for the join operators: the hash join must agree with a
//! nested-loop oracle on arbitrary data, including NULLs and duplicates.

use kwdb_common::Value;
use kwdb_relational::join::{hash_join, seed, semi_join};
use kwdb_relational::{ColumnType, Database, ExecStats, RowId, TableBuilder};

fn build_tables(left: &[Option<i64>], right: &[Option<i64>]) -> Database {
    let mut db = Database::new();
    db.create_table(TableBuilder::new("l").column("k", ColumnType::Int))
        .unwrap();
    db.create_table(TableBuilder::new("r").column("k", ColumnType::Int))
        .unwrap();
    for v in left {
        db.insert("l", vec![v.map(Value::from).unwrap_or(Value::Null)])
            .unwrap();
    }
    for v in right {
        db.insert("r", vec![v.map(Value::from).unwrap_or(Value::Null)])
            .unwrap();
    }
    db
}

use kwdb_common::Rng;

fn rand_column(rng: &mut Rng, max_len: usize, vals: i64) -> Vec<Option<i64>> {
    let n = rng.gen_index(max_len);
    (0..n)
        .map(|_| {
            if rng.gen_bool(0.2) {
                None
            } else {
                Some(rng.gen_range(0..vals))
            }
        })
        .collect()
}

#[test]
fn hash_join_matches_nested_loop() {
    let mut rng = Rng::seed_from_u64(101);
    for _ in 0..100 {
        let left = rand_column(&mut rng, 12, 6);
        let right = rand_column(&mut rng, 12, 6);
        let db = build_tables(&left, &right);
        let lt = db.table_by_name("l").unwrap();
        let rt = db.table_by_name("r").unwrap();
        let lrows: Vec<RowId> = (0..left.len() as u32).map(RowId).collect();
        let rrows: Vec<RowId> = (0..right.len() as u32).map(RowId).collect();
        let stats = ExecStats::new();
        let out = hash_join(&seed(&lrows), 0, lt, 0, rt, &rrows, 0, &stats);
        // nested loop oracle: NULLs never match
        let mut expected = 0usize;
        for a in &left {
            for b in &right {
                if let (Some(x), Some(y)) = (a, b) {
                    if x == y {
                        expected += 1;
                    }
                }
            }
        }
        assert_eq!(out.len(), expected);
        // every output pair really matches
        for t in &out {
            assert_eq!(lt.get(t[0], 0), rt.get(t[1], 0));
        }
    }
}

#[test]
fn semi_join_is_a_filter_of_left() {
    let mut rng = Rng::seed_from_u64(102);
    for _ in 0..100 {
        let left = rand_column(&mut rng, 12, 6);
        let right = rand_column(&mut rng, 12, 6);
        let db = build_tables(&left, &right);
        let lt = db.table_by_name("l").unwrap();
        let rt = db.table_by_name("r").unwrap();
        let lrows: Vec<RowId> = (0..left.len() as u32).map(RowId).collect();
        let rrows: Vec<RowId> = (0..right.len() as u32).map(RowId).collect();
        let stats = ExecStats::new();
        let out = semi_join(lt, &lrows, 0, rt, &rrows, 0, &stats);
        // subset of left, in order, exactly the rows with a match
        let right_vals: std::collections::HashSet<i64> = right.iter().flatten().copied().collect();
        let expected: Vec<RowId> = lrows
            .iter()
            .copied()
            .filter(|&r| {
                lt.get(r, 0)
                    .as_int()
                    .map(|v| right_vals.contains(&v))
                    .unwrap_or(false)
            })
            .collect();
        assert_eq!(out, expected);
    }
}

#[test]
fn semi_join_idempotent() {
    let mut rng = Rng::seed_from_u64(103);
    for _ in 0..100 {
        let left = rand_column(&mut rng, 10, 4);
        let right = rand_column(&mut rng, 10, 4);
        let db = build_tables(&left, &right);
        let lt = db.table_by_name("l").unwrap();
        let rt = db.table_by_name("r").unwrap();
        let lrows: Vec<RowId> = (0..left.len() as u32).map(RowId).collect();
        let rrows: Vec<RowId> = (0..right.len() as u32).map(RowId).collect();
        let stats = ExecStats::new();
        let once = semi_join(lt, &lrows, 0, rt, &rrows, 0, &stats);
        let twice = semi_join(lt, &once, 0, rt, &rrows, 0, &stats);
        assert_eq!(once, twice);
    }
}
