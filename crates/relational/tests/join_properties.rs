//! Property tests for the join operators: the hash join must agree with a
//! nested-loop oracle on arbitrary data, including NULLs and duplicates.

use kwdb_common::Value;
use kwdb_relational::join::{hash_join, seed, semi_join};
use kwdb_relational::{ColumnType, Database, ExecStats, RowId, TableBuilder};
use proptest::prelude::*;

fn build_tables(left: &[Option<i64>], right: &[Option<i64>]) -> Database {
    let mut db = Database::new();
    db.create_table(TableBuilder::new("l").column("k", ColumnType::Int))
        .unwrap();
    db.create_table(TableBuilder::new("r").column("k", ColumnType::Int))
        .unwrap();
    for v in left {
        db.insert("l", vec![v.map(Value::from).unwrap_or(Value::Null)])
            .unwrap();
    }
    for v in right {
        db.insert("r", vec![v.map(Value::from).unwrap_or(Value::Null)])
            .unwrap();
    }
    db
}

proptest! {
    #[test]
    fn hash_join_matches_nested_loop(
        left in proptest::collection::vec(proptest::option::of(0i64..6), 0..12),
        right in proptest::collection::vec(proptest::option::of(0i64..6), 0..12),
    ) {
        let db = build_tables(&left, &right);
        let lt = db.table_by_name("l").unwrap();
        let rt = db.table_by_name("r").unwrap();
        let lrows: Vec<RowId> = (0..left.len() as u32).map(RowId).collect();
        let rrows: Vec<RowId> = (0..right.len() as u32).map(RowId).collect();
        let stats = ExecStats::new();
        let out = hash_join(&seed(&lrows), 0, lt, 0, rt, &rrows, 0, &stats);
        // nested loop oracle: NULLs never match
        let mut expected = 0usize;
        for a in &left {
            for b in &right {
                if let (Some(x), Some(y)) = (a, b) {
                    if x == y { expected += 1; }
                }
            }
        }
        prop_assert_eq!(out.len(), expected);
        // every output pair really matches
        for t in &out {
            prop_assert_eq!(lt.get(t[0], 0), rt.get(t[1], 0));
        }
    }

    #[test]
    fn semi_join_is_a_filter_of_left(
        left in proptest::collection::vec(proptest::option::of(0i64..6), 0..12),
        right in proptest::collection::vec(proptest::option::of(0i64..6), 0..12),
    ) {
        let db = build_tables(&left, &right);
        let lt = db.table_by_name("l").unwrap();
        let rt = db.table_by_name("r").unwrap();
        let lrows: Vec<RowId> = (0..left.len() as u32).map(RowId).collect();
        let rrows: Vec<RowId> = (0..right.len() as u32).map(RowId).collect();
        let stats = ExecStats::new();
        let out = semi_join(lt, &lrows, 0, rt, &rrows, 0, &stats);
        // subset of left, in order, exactly the rows with a match
        let right_vals: std::collections::HashSet<i64> =
            right.iter().flatten().copied().collect();
        let expected: Vec<RowId> = lrows
            .iter()
            .copied()
            .filter(|&r| {
                lt.get(r, 0).as_int().map(|v| right_vals.contains(&v)).unwrap_or(false)
            })
            .collect();
        prop_assert_eq!(out, expected);
    }

    #[test]
    fn semi_join_idempotent(
        left in proptest::collection::vec(proptest::option::of(0i64..4), 0..10),
        right in proptest::collection::vec(proptest::option::of(0i64..4), 0..10),
    ) {
        let db = build_tables(&left, &right);
        let lt = db.table_by_name("l").unwrap();
        let rt = db.table_by_name("r").unwrap();
        let lrows: Vec<RowId> = (0..left.len() as u32).map(RowId).collect();
        let rrows: Vec<RowId> = (0..right.len() as u32).map(RowId).collect();
        let stats = ExecStats::new();
        let once = semi_join(lt, &lrows, 0, rt, &rrows, 0, &stats);
        let twice = semi_join(lt, &once, 0, rt, &rrows, 0, &stats);
        prop_assert_eq!(once, twice);
    }
}
