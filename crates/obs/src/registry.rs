//! The thread-safe metrics registry: named, labeled counters, gauges, and
//! histograms.
//!
//! A [`MetricsRegistry`] is a process-wide (or deployment-unit-wide) table
//! of metric instruments keyed by family name plus a sorted label set —
//! `kwdb_queries_total{engine="relational", algorithm="global_pipeline"}`.
//! Lookup uses the same double-checked read-mostly locking as the CN plan
//! cache: the hot path takes a read lock and clones an `Arc` handle;
//! creation upgrades to the write lock exactly once per instrument.
//! Recording through a handle is lock-free (atomics only), so engines can
//! keep handles across queries or re-resolve them per query — either way
//! concurrent workers never serialize on the registry.

use crate::flight::{FlightRecorder, QueryRecord, SamplePolicy, SlowThreshold};
use crate::hist::{Histogram, HistogramSnapshot};
use crate::record::families;
use crate::trace::TraceLevel;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    pub fn inc(&self) {
        self.add(1);
    }

    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can go up and down (queue depths, cache sizes,
/// in-flight request counts).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    pub fn inc(&self) {
        self.add(1);
    }

    pub fn dec(&self) {
        self.add(-1);
    }

    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A sorted, deduplicated label set. Construction sorts by key, so
/// `[("b","2"),("a","1")]` and `[("a","1"),("b","2")]` address the same
/// instrument.
#[derive(Debug, Clone, Default, PartialEq, Eq, PartialOrd, Ord)]
pub struct Labels(Vec<(String, String)>);

impl Labels {
    pub fn new(pairs: &[(&str, &str)]) -> Self {
        let mut v: Vec<(String, String)> = pairs
            .iter()
            .map(|&(k, val)| (k.to_string(), val.to_string()))
            .collect();
        v.sort();
        v.dedup_by(|a, b| a.0 == b.0);
        Labels(v)
    }

    pub fn empty() -> Self {
        Labels::default()
    }

    pub fn pairs(&self) -> &[(String, String)] {
        &self.0
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl From<Vec<(String, String)>> for Labels {
    fn from(mut v: Vec<(String, String)>) -> Self {
        v.sort();
        v.dedup_by(|a, b| a.0 == b.0);
        Labels(v)
    }
}

/// Fully qualified instrument identity: family name + label set.
pub type MetricKey = (String, Labels);

#[derive(Default)]
struct Families {
    counters: BTreeMap<MetricKey, Arc<Counter>>,
    gauges: BTreeMap<MetricKey, Arc<Gauge>>,
    histograms: BTreeMap<MetricKey, Arc<Histogram>>,
}

/// The thread-safe registry of all metric instruments — plus the query
/// [`FlightRecorder`] and its [`SamplePolicy`], so flight recording is
/// always on wherever a registry is attached (no per-engine plumbing).
#[derive(Default)]
pub struct MetricsRegistry {
    inner: RwLock<Families>,
    flight: FlightRecorder,
    policy: RwLock<SamplePolicy>,
    /// Global arrival counter driving 1-in-N trace sampling; deterministic
    /// under serial execution.
    sample_seq: AtomicU64,
}

/// Double-checked get-or-create over one of the three family maps.
macro_rules! get_or_create {
    ($self:ident, $field:ident, $name:ident, $labels:ident, $new:expr) => {{
        let key: MetricKey = ($name.to_string(), Labels::new($labels));
        if let Some(m) = $self
            .inner
            .read()
            .expect("metrics registry poisoned")
            .$field
            .get(&key)
        {
            return Arc::clone(m);
        }
        let mut inner = $self.inner.write().expect("metrics registry poisoned");
        Arc::clone(inner.$field.entry(key).or_insert_with(|| Arc::new($new)))
    }};
}

impl MetricsRegistry {
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// A registry whose flight recorder retains the last `capacity` queries
    /// (default: [`crate::flight::DEFAULT_CAPACITY`]).
    pub fn with_flight_capacity(capacity: usize) -> Self {
        MetricsRegistry {
            flight: FlightRecorder::with_capacity(capacity),
            ..Default::default()
        }
    }

    /// The always-on query flight recorder.
    pub fn flight(&self) -> &FlightRecorder {
        &self.flight
    }

    /// The current trace sampling / slow-query policy.
    pub fn sample_policy(&self) -> SamplePolicy {
        *self.policy.read().expect("sample policy poisoned")
    }

    /// Replace the trace sampling / slow-query policy.
    pub fn set_sample_policy(&self, policy: SamplePolicy) {
        *self.policy.write().expect("sample policy poisoned") = policy;
    }

    /// Decide the effective trace level for one arriving query: the
    /// caller's `requested` level, possibly upgraded to the policy's level.
    /// Returns `(level, sampled)` where `sampled` marks a policy promotion
    /// (counted into `kwdb_trace_sampled_total` at seal time).
    ///
    /// Promotion fires on the 1-in-N arrival counter, or — with a
    /// [`SlowThreshold::Fixed`] policy — for every query of an
    /// `engine × algorithm` class whose live p99 sits at or above the
    /// threshold, so a currently-slow executor's queries arrive in the
    /// recorder *with* their span trees. Requests already tracing at or
    /// above the policy level pass through untouched and don't consume a
    /// sampling tick.
    pub fn sample_trace_level(
        &self,
        engine: &str,
        algorithm: &str,
        requested: TraceLevel,
    ) -> (TraceLevel, bool) {
        let p = self.sample_policy();
        if p.level == TraceLevel::Off || requested >= p.level {
            return (requested, false);
        }
        let mut promote = false;
        if p.sample_every > 0 {
            let n = self.sample_seq.fetch_add(1, Ordering::Relaxed) + 1;
            promote = n.is_multiple_of(p.sample_every);
        }
        if !promote {
            if let SlowThreshold::Fixed(d) = p.slow_threshold {
                let (p99, count) = self.latency_p99(engine, algorithm);
                promote = count > 0 && p99 >= d.as_nanos().min(u64::MAX as u128) as u64;
            }
        }
        if promote {
            (p.level, true)
        } else {
            (requested, false)
        }
    }

    /// Seal-time flight recording: decide the record's slow flag against
    /// the policy, append it to the ring, and keep the recorder's
    /// self-metrics current (`kwdb_flightrec_entries`,
    /// `kwdb_flightrec_dropped_total` by the overwritten record's engine,
    /// `kwdb_trace_sampled_total`).
    ///
    /// Call *before* folding this query into the latency histogram
    /// ([`crate::record_query`]) so an [`SlowThreshold::AutoP99`] threshold
    /// compares the query against the traffic that preceded it.
    pub fn record_flight(&self, mut rec: QueryRecord) {
        let total_ns = rec.total().as_nanos().min(u64::MAX as u128) as u64;
        rec.slow = match self.sample_policy().slow_threshold {
            SlowThreshold::Off => false,
            SlowThreshold::Fixed(d) => total_ns >= d.as_nanos().min(u64::MAX as u128) as u64,
            SlowThreshold::AutoP99 => {
                let (p99, count) = self.latency_p99(&rec.engine, &rec.algorithm);
                count >= SamplePolicy::AUTO_MIN_SAMPLES && total_ns > p99
            }
        };
        let engine = rec.engine.clone();
        let engine_label = [("engine", engine.as_str())];
        // Register the sampled counter even at zero so the family is always
        // present in snapshots; increment only on actual promotions.
        let sampled = self.counter(families::TRACE_SAMPLED, &engine_label);
        if rec.sampled {
            sampled.inc();
        }
        // Same zero-registration for drops, so `metrics_check` can require
        // the family before the ring ever wraps.
        let dropped = self.counter(families::FLIGHT_DROPPED, &engine_label);
        if let Some(old) = self.flight.append(rec) {
            if old.engine == engine {
                dropped.inc();
            } else {
                self.counter(families::FLIGHT_DROPPED, &[("engine", old.engine.as_str())])
                    .inc();
            }
        }
        self.gauge(families::FLIGHT_ENTRIES, &[])
            .set(self.flight.len() as i64);
    }

    /// The live p99 (and observation count) of the `engine × algorithm`
    /// end-to-end latency histogram, without creating the instrument.
    fn latency_p99(&self, engine: &str, algorithm: &str) -> (u64, u64) {
        let key: MetricKey = (
            families::QUERY_LATENCY.to_string(),
            Labels::new(&[("engine", engine), ("algorithm", algorithm)]),
        );
        match self
            .inner
            .read()
            .expect("metrics registry poisoned")
            .histograms
            .get(&key)
        {
            Some(h) => {
                let snap = h.snapshot();
                (snap.p99(), snap.count)
            }
            None => (0, 0),
        }
    }

    /// The counter `name{labels}`, created on first use.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        get_or_create!(self, counters, name, labels, Counter::default())
    }

    /// The gauge `name{labels}`, created on first use.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        get_or_create!(self, gauges, name, labels, Gauge::default())
    }

    /// The histogram `name{labels}`, created on first use.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        get_or_create!(self, histograms, name, labels, Histogram::new())
    }

    /// Read a counter's current value without creating it (0 if absent).
    pub fn counter_value(&self, name: &str, labels: &[(&str, &str)]) -> u64 {
        let key: MetricKey = (name.to_string(), Labels::new(labels));
        self.inner
            .read()
            .expect("metrics registry poisoned")
            .counters
            .get(&key)
            .map(|c| c.get())
            .unwrap_or(0)
    }

    /// Sum of a counter family's values across every label set.
    pub fn counter_family_total(&self, name: &str) -> u64 {
        self.inner
            .read()
            .expect("metrics registry poisoned")
            .counters
            .iter()
            .filter(|((n, _), _)| n == name)
            .map(|(_, c)| c.get())
            .sum()
    }

    /// A point-in-time copy of every instrument, in deterministic
    /// (name, labels) order — the input of both exporters.
    pub fn snapshot(&self) -> Snapshot {
        let inner = self.inner.read().expect("metrics registry poisoned");
        Snapshot {
            counters: inner
                .counters
                .iter()
                .map(|((n, l), c)| (MetricId::new(n, l), c.get()))
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|((n, l), g)| (MetricId::new(n, l), g.get()))
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|((n, l), h)| (MetricId::new(n, l), h.snapshot()))
                .collect(),
        }
    }
}

/// Identity of one instrument inside a [`Snapshot`].
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct MetricId {
    pub name: String,
    /// Sorted label pairs.
    pub labels: Vec<(String, String)>,
}

impl MetricId {
    fn new(name: &str, labels: &Labels) -> Self {
        MetricId {
            name: name.to_string(),
            labels: labels.pairs().to_vec(),
        }
    }
}

/// A point-in-time copy of a registry: the unit of export, comparison, and
/// JSON round-tripping.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Snapshot {
    pub counters: Vec<(MetricId, u64)>,
    pub gauges: Vec<(MetricId, i64)>,
    pub histograms: Vec<(MetricId, HistogramSnapshot)>,
}

impl Snapshot {
    /// Family names present in this snapshot (sorted, deduplicated).
    pub fn family_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self
            .counters
            .iter()
            .map(|(id, _)| id.name.as_str())
            .chain(self.gauges.iter().map(|(id, _)| id.name.as_str()))
            .chain(self.histograms.iter().map(|(id, _)| id.name.as_str()))
            .collect();
        names.sort_unstable();
        names.dedup();
        names
    }

    /// Sum of one counter family across label sets.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .filter(|(id, _)| id.name == name)
            .map(|&(_, v)| v)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_accumulate() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("requests_total", &[("engine", "relational")]);
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // same name+labels resolves to the same instrument
        reg.counter("requests_total", &[("engine", "relational")])
            .inc();
        assert_eq!(
            reg.counter_value("requests_total", &[("engine", "relational")]),
            6
        );

        let g = reg.gauge("inflight", &[]);
        g.inc();
        g.inc();
        g.dec();
        assert_eq!(g.get(), 1);
        g.set(-3);
        assert_eq!(g.get(), -3);
    }

    #[test]
    fn label_order_does_not_matter() {
        let reg = MetricsRegistry::new();
        reg.counter("m", &[("a", "1"), ("b", "2")]).inc();
        reg.counter("m", &[("b", "2"), ("a", "1")]).inc();
        assert_eq!(reg.counter_value("m", &[("a", "1"), ("b", "2")]), 2);
        assert_eq!(reg.snapshot().counters.len(), 1);
    }

    #[test]
    fn family_total_sums_across_label_sets() {
        let reg = MetricsRegistry::new();
        reg.counter("ops", &[("engine", "graph")]).add(3);
        reg.counter("ops", &[("engine", "xml")]).add(4);
        reg.counter("other", &[]).add(100);
        assert_eq!(reg.counter_family_total("ops"), 7);
        assert_eq!(reg.snapshot().counter_total("ops"), 7);
    }

    #[test]
    fn snapshot_is_deterministically_ordered() {
        let reg = MetricsRegistry::new();
        reg.counter("z", &[]).inc();
        reg.counter("a", &[("x", "2")]).inc();
        reg.counter("a", &[("x", "1")]).inc();
        let snap = reg.snapshot();
        let names: Vec<String> = snap
            .counters
            .iter()
            .map(|(id, _)| format!("{}{:?}", id.name, id.labels))
            .collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
        assert_eq!(snap.family_names(), vec!["a", "z"]);
    }

    #[test]
    fn sampling_promotes_every_nth_query_deterministically() {
        let reg = MetricsRegistry::new();
        reg.set_sample_policy(SamplePolicy::every(3));
        let picks: Vec<bool> = (0..9)
            .map(|_| {
                reg.sample_trace_level("relational", "global_pipeline", TraceLevel::Off)
                    .1
            })
            .collect();
        assert_eq!(
            picks,
            vec![false, false, true, false, false, true, false, false, true]
        );
        // an already-traced request passes through and consumes no tick
        let (level, sampled) =
            reg.sample_trace_level("relational", "global_pipeline", TraceLevel::Full);
        assert_eq!(level, TraceLevel::Full);
        assert!(!sampled);
        let (_, next) = reg.sample_trace_level("relational", "global_pipeline", TraceLevel::Off);
        assert!(!next, "tick 10 of every(3) must not fire");
    }

    #[test]
    fn record_flight_keeps_self_metrics_current() {
        let reg = MetricsRegistry::with_flight_capacity(2);
        let mut stats = kwdb_common::QueryStats::new();
        stats.phases.evaluate = std::time::Duration::from_micros(50);
        for i in 0..5 {
            let rec = QueryRecord::new(
                "relational",
                "global_pipeline",
                "data query",
                3,
                1,
                &stats,
                None,
                i == 0,
                None,
            );
            reg.record_flight(rec);
        }
        assert_eq!(reg.flight().len(), 2);
        assert_eq!(
            reg.counter_value(families::FLIGHT_DROPPED, &[("engine", "relational")]),
            3
        );
        assert_eq!(reg.gauge(families::FLIGHT_ENTRIES, &[]).get(), 2);
        assert_eq!(
            reg.counter_value(families::TRACE_SAMPLED, &[("engine", "relational")]),
            1
        );
    }

    #[test]
    fn fixed_threshold_flags_slow_queries() {
        let reg = MetricsRegistry::new();
        reg.set_sample_policy(SamplePolicy {
            sample_every: 0,
            slow_threshold: SlowThreshold::Fixed(std::time::Duration::from_micros(10)),
            level: TraceLevel::Off,
        });
        let mut fast = kwdb_common::QueryStats::new();
        fast.phases.evaluate = std::time::Duration::from_nanos(500);
        let mut slow = kwdb_common::QueryStats::new();
        slow.phases.evaluate = std::time::Duration::from_micros(20);
        for stats in [&fast, &slow] {
            reg.record_flight(QueryRecord::new(
                "xml", "slca", "q", 1, 1, stats, None, false, None,
            ));
        }
        let dump = reg.flight().dump();
        assert_eq!(
            dump.records.iter().map(|r| r.slow).collect::<Vec<_>>(),
            vec![false, true]
        );
    }

    #[test]
    fn concurrent_instrument_creation_is_exactly_once() {
        let reg = std::sync::Arc::new(MetricsRegistry::new());
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let reg = std::sync::Arc::clone(&reg);
                scope.spawn(move || {
                    for i in 0..100 {
                        reg.counter("hot", &[("i", &(i % 10).to_string())]).inc();
                    }
                });
            }
        });
        assert_eq!(reg.counter_family_total("hot"), 800);
        assert_eq!(reg.snapshot().counters.len(), 10);
    }
}
