//! # kwdb-obs — query observability for kwdb
//!
//! The tutorial's core comparisons (BANKS vs DPBF vs BLINKS node accesses,
//! DISCOVER/SPARK candidate-network costs) are quantitative claims, and a
//! production deployment needs the same numbers continuously — per-query
//! `QueryStats` alone evaporate the moment the response is dropped. This
//! crate is the retention layer, hermetic like the rest of the workspace
//! (no external dependencies):
//!
//! * [`MetricsRegistry`] — a thread-safe table of named, labeled
//!   [`Counter`]s, [`Gauge`]s, and log-linear [`Histogram`]s with
//!   p50/p90/p99 extraction. Engines record under `engine × algorithm ×
//!   phase` labels; recording is atomics-only, so concurrent dispatcher
//!   workers never serialize on it.
//! * [`QueryTrace`] — a structured span tree of one query (phases →
//!   operator events with timestamps, counter deltas, budget verdicts,
//!   cache outcomes), built through a [`TraceBuilder`] gated by the
//!   [`TraceLevel`] knob on a request, rendered as an `EXPLAIN
//!   ANALYZE`-style text tree or JSON.
//! * [`FlightRecorder`] — a bounded, lock-striped ring of the last N
//!   queries, always on once a registry is attached: every sealed query
//!   appends a compact [`QueryRecord`] (engine, executor, redacted digest,
//!   per-phase durations, truncation/cache outcome, and the trace when one
//!   exists). A [`SamplePolicy`] on the registry upgrades selected queries
//!   to traced without the caller asking (1-in-N plus slow-query
//!   promotion), so tail-latency forensics works after the fact — dump
//!   with [`FlightDump::to_json`] and analyze offline with `kwdb-doctor`.
//! * Exporters — [`export::to_prometheus`] (text exposition format with
//!   `# HELP`/`# TYPE` headers), [`export::to_json`]/[`export::from_json`]
//!   (an exact round-trip the bench harness uses to emit `BENCH_*.json`
//!   perf baselines), and [`chrome::to_chrome_trace`] (Chrome/Perfetto
//!   `trace_event` JSON for one query's span tree).
//!
//! ```
//! use kwdb_obs::{MetricsRegistry, record_query};
//! use kwdb_common::QueryStats;
//!
//! let reg = MetricsRegistry::new();
//! record_query(&reg, "relational", "global_pipeline", &QueryStats::new(), None);
//! let prom = kwdb_obs::export::to_prometheus(&reg.snapshot());
//! assert!(prom.contains("kwdb_queries_total"));
//! ```

pub mod chrome;
pub mod export;
pub mod flight;
pub mod hist;
pub mod json;
pub mod record;
pub mod registry;
pub mod trace;

pub use flight::{
    query_digest, CacheOutcome, FlightDump, FlightRecorder, QueryRecord, SamplePolicy,
    SlowThreshold,
};
pub use hist::{Histogram, HistogramSnapshot};
pub use record::{families, record_facets, record_generation, record_index_stats, record_query};
pub use registry::{Counter, Gauge, Labels, MetricId, MetricsRegistry, Snapshot};
pub use trace::{PhaseSpan, QueryTrace, TraceBuilder, TraceEvent, TraceLevel};
