//! Snapshot exporters: Prometheus text exposition and a JSON round-trip.
//!
//! * [`to_prometheus`] renders a [`Snapshot`] in the Prometheus text
//!   exposition format (`# TYPE` headers, escaped label values, cumulative
//!   `_bucket{le=...}` series plus `_sum`/`_count` for histograms) — point a
//!   scraper at whatever serves the string.
//! * [`to_json`] / [`from_json`] round-trip a snapshot through a stable JSON
//!   schema; the bench harness writes these as `BENCH_*.json` perf baselines
//!   and CI parses them back to validate the emitted metric families.

use crate::hist::HistogramSnapshot;
use crate::json::{Json, JsonError};
use crate::registry::{MetricId, Snapshot};
use std::fmt::Write as _;

/// Render `snapshot` in Prometheus text exposition format.
pub fn to_prometheus(snapshot: &Snapshot) -> String {
    let mut out = String::new();
    let emit_header = |out: &mut String, prev: &mut String, name: &str, kind: &str| {
        if prev != name {
            if let Some(help) = crate::record::families::help(name) {
                let _ = writeln!(out, "# HELP {name} {}", escape_help(help));
            }
            let _ = writeln!(out, "# TYPE {name} {kind}");
            *prev = name.to_string();
        }
    };

    let mut prev = String::new();
    for (id, value) in &snapshot.counters {
        emit_header(&mut out, &mut prev, &id.name, "counter");
        let _ = writeln!(out, "{}{} {value}", id.name, label_block(&id.labels, &[]));
    }
    prev.clear();
    for (id, value) in &snapshot.gauges {
        emit_header(&mut out, &mut prev, &id.name, "gauge");
        let _ = writeln!(out, "{}{} {value}", id.name, label_block(&id.labels, &[]));
    }
    prev.clear();
    for (id, hist) in &snapshot.histograms {
        emit_header(&mut out, &mut prev, &id.name, "histogram");
        for (le, cum) in hist.cumulative() {
            let _ = writeln!(
                out,
                "{}_bucket{} {cum}",
                id.name,
                label_block(&id.labels, &[("le", &le.to_string())])
            );
        }
        let _ = writeln!(
            out,
            "{}_bucket{} {}",
            id.name,
            label_block(&id.labels, &[("le", "+Inf")]),
            hist.count
        );
        let _ = writeln!(
            out,
            "{}_sum{} {}",
            id.name,
            label_block(&id.labels, &[]),
            hist.sum
        );
        let _ = writeln!(
            out,
            "{}_count{} {}",
            id.name,
            label_block(&id.labels, &[]),
            hist.count
        );
    }
    out
}

/// `{a="1",b="2"}` with Prometheus escaping; empty string for no labels.
fn label_block(labels: &[(String, String)], extra: &[(&str, &str)]) -> String {
    if labels.is_empty() && extra.is_empty() {
        return String::new();
    }
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    parts.extend(
        extra
            .iter()
            .map(|&(k, v)| format!("{k}=\"{}\"", escape_label(v))),
    );
    format!("{{{}}}", parts.join(","))
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// HELP text escaping per the exposition format: backslash and newline
/// only (no quote escaping — HELP text is not quoted).
fn escape_help(v: &str) -> String {
    v.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Serialize a snapshot to the stable JSON schema (pretty enough to diff,
/// compact enough to commit as a `BENCH_*.json` baseline).
pub fn to_json(snapshot: &Snapshot) -> String {
    let id_obj = |id: &MetricId| -> Vec<(String, Json)> {
        vec![
            ("name".into(), Json::Str(id.name.clone())),
            (
                "labels".into(),
                Json::Obj(
                    id.labels
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Str(v.clone())))
                        .collect(),
                ),
            ),
        ]
    };
    let counters = snapshot
        .counters
        .iter()
        .map(|(id, v)| {
            let mut o = id_obj(id);
            o.push(("value".into(), Json::Int(*v as i128)));
            Json::Obj(o)
        })
        .collect();
    let gauges = snapshot
        .gauges
        .iter()
        .map(|(id, v)| {
            let mut o = id_obj(id);
            o.push(("value".into(), Json::Int(*v as i128)));
            Json::Obj(o)
        })
        .collect();
    let histograms = snapshot
        .histograms
        .iter()
        .map(|(id, h)| {
            let mut o = id_obj(id);
            o.push(("count".into(), Json::Int(h.count as i128)));
            o.push(("sum".into(), Json::Int(h.sum as i128)));
            o.push(("max".into(), Json::Int(h.max as i128)));
            o.push(("p50".into(), Json::Int(h.p50() as i128)));
            o.push(("p90".into(), Json::Int(h.p90() as i128)));
            o.push(("p99".into(), Json::Int(h.p99() as i128)));
            o.push((
                "buckets".into(),
                Json::Arr(
                    h.buckets
                        .iter()
                        .map(|&(i, n)| Json::Arr(vec![Json::Int(i as i128), Json::Int(n as i128)]))
                        .collect(),
                ),
            ));
            Json::Obj(o)
        })
        .collect();
    Json::Obj(vec![
        ("format".into(), Json::Str("kwdb-metrics-v1".into())),
        ("counters".into(), Json::Arr(counters)),
        ("gauges".into(), Json::Arr(gauges)),
        ("histograms".into(), Json::Arr(histograms)),
    ])
    .to_string_compact()
}

/// Parse a snapshot previously written by [`to_json`]. The derived
/// percentile fields (`p50`/`p90`/`p99`) are recomputed from the buckets,
/// not trusted, so `from_json(to_json(s)) == s` holds exactly.
pub fn from_json(input: &str) -> Result<Snapshot, JsonError> {
    let doc = Json::parse(input)?;
    let bad = |message: &str| JsonError {
        offset: 0,
        message: message.to_string(),
    };
    if doc.get("format").and_then(Json::as_str) != Some("kwdb-metrics-v1") {
        return Err(bad("missing or unknown \"format\" marker"));
    }
    let parse_id = |o: &Json| -> Result<MetricId, JsonError> {
        let name = o
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| bad("metric missing \"name\""))?
            .to_string();
        let labels = match o.get("labels") {
            Some(Json::Obj(pairs)) => pairs
                .iter()
                .map(|(k, v)| {
                    v.as_str()
                        .map(|s| (k.clone(), s.to_string()))
                        .ok_or_else(|| bad("label value must be a string"))
                })
                .collect::<Result<Vec<_>, _>>()?,
            _ => return Err(bad("metric missing \"labels\" object")),
        };
        Ok(MetricId { name, labels })
    };
    let arr = |key: &str| -> Result<&[Json], JsonError> {
        doc.get(key)
            .and_then(Json::as_arr)
            .ok_or_else(|| bad(&format!("missing \"{key}\" array")))
    };

    let mut counters = Vec::new();
    for o in arr("counters")? {
        let v = o
            .get("value")
            .and_then(Json::as_u64)
            .ok_or_else(|| bad("counter missing u64 \"value\""))?;
        counters.push((parse_id(o)?, v));
    }
    let mut gauges = Vec::new();
    for o in arr("gauges")? {
        let v = o
            .get("value")
            .and_then(Json::as_i64)
            .ok_or_else(|| bad("gauge missing i64 \"value\""))?;
        gauges.push((parse_id(o)?, v));
    }
    let mut histograms = Vec::new();
    for o in arr("histograms")? {
        let field = |k: &str| {
            o.get(k)
                .and_then(Json::as_u64)
                .ok_or_else(|| bad(&format!("histogram missing u64 \"{k}\"")))
        };
        let buckets = o
            .get("buckets")
            .and_then(Json::as_arr)
            .ok_or_else(|| bad("histogram missing \"buckets\""))?
            .iter()
            .map(|pair| {
                let p = pair.as_arr().filter(|p| p.len() == 2);
                let (i, n) = match p {
                    Some(p) => (p[0].as_u64(), p[1].as_u64()),
                    None => (None, None),
                };
                match (i, n) {
                    (Some(i), Some(n)) => Ok((i as usize, n)),
                    _ => Err(bad("histogram bucket must be [index, count]")),
                }
            })
            .collect::<Result<Vec<_>, _>>()?;
        histograms.push((
            parse_id(o)?,
            HistogramSnapshot {
                buckets,
                count: field("count")?,
                sum: field("sum")?,
                max: field("max")?,
            },
        ));
    }
    Ok(Snapshot {
        counters,
        gauges,
        histograms,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::MetricsRegistry;

    fn sample_registry() -> MetricsRegistry {
        let reg = MetricsRegistry::new();
        reg.counter(
            "kwdb_queries_total",
            &[("engine", "relational"), ("algorithm", "global_pipeline")],
        )
        .add(17);
        reg.counter(
            "kwdb_queries_total",
            &[("engine", "graph"), ("algorithm", "banks")],
        )
        .add(3);
        reg.gauge("kwdb_dispatch_inflight", &[]).set(2);
        let h = reg.histogram("kwdb_query_latency_ns", &[("engine", "relational")]);
        for v in [120_000u64, 340_000, 950_000, 40_000_000] {
            h.record(v);
        }
        reg
    }

    #[test]
    fn json_snapshot_round_trips_exactly() {
        let snap = sample_registry().snapshot();
        let json = to_json(&snap);
        let back = from_json(&json).unwrap();
        assert_eq!(back, snap);
        // and a second generation is byte-identical (stable ordering)
        assert_eq!(to_json(&back), json);
    }

    #[test]
    fn prometheus_exposition_shape() {
        let text = to_prometheus(&sample_registry().snapshot());
        // HELP precedes TYPE for every family with registered help text
        assert!(text.contains(
            "# HELP kwdb_queries_total Queries executed, by engine and algorithm.\n# TYPE kwdb_queries_total counter"
        ));
        assert!(text.contains("# HELP kwdb_query_latency_ns "));
        assert!(text.contains("# TYPE kwdb_queries_total counter"));
        assert!(text.contains(
            "kwdb_queries_total{algorithm=\"global_pipeline\",engine=\"relational\"} 17"
        ));
        assert!(text.contains("# TYPE kwdb_dispatch_inflight gauge"));
        assert!(text.contains("kwdb_dispatch_inflight 2"));
        assert!(text.contains("# TYPE kwdb_query_latency_ns histogram"));
        assert!(text.contains("kwdb_query_latency_ns_bucket{engine=\"relational\",le=\"+Inf\"} 4"));
        assert!(text.contains("kwdb_query_latency_ns_count{engine=\"relational\"} 4"));
        // exactly one TYPE/HELP header per family
        assert_eq!(text.matches("# TYPE kwdb_queries_total").count(), 1);
        assert_eq!(text.matches("# HELP kwdb_queries_total").count(), 1);
    }

    #[test]
    fn prometheus_help_only_for_known_families() {
        let reg = MetricsRegistry::new();
        reg.counter("bench_local_total", &[]).inc();
        let text = to_prometheus(&reg.snapshot());
        assert!(text.contains("# TYPE bench_local_total counter"));
        assert!(!text.contains("# HELP bench_local_total"));
        assert_eq!(escape_help("a\\b\nc"), "a\\\\b\\nc");
    }

    #[test]
    fn prometheus_escapes_label_values() {
        let reg = MetricsRegistry::new();
        reg.counter("m", &[("q", "say \"hi\"\nback\\slash")]).inc();
        let text = to_prometheus(&reg.snapshot());
        assert!(text.contains(r#"m{q="say \"hi\"\nback\\slash"} 1"#));
    }

    #[test]
    fn from_json_rejects_malformed_documents() {
        assert!(from_json("{}").is_err());
        assert!(from_json("not json").is_err());
        assert!(from_json(r#"{"format":"kwdb-metrics-v1"}"#).is_err());
        assert!(from_json(
            r#"{"format":"kwdb-metrics-v1","counters":[{"name":"x","labels":{},"value":-1}],"gauges":[],"histograms":[]}"#
        )
        .is_err());
    }
}
