//! Chrome/Perfetto `trace_event` export for [`QueryTrace`] span trees.
//!
//! [`to_chrome_trace`] renders one trace as the JSON Object Format the
//! Chromium trace viewer and Perfetto both load directly: save the string
//! to a file, open `chrome://tracing` (or <https://ui.perfetto.dev>), and
//! drop the file in to see the query's phases on a timeline.
//!
//! Span layout: the query root becomes one complete (`"ph": "X"`) event
//! spanning the whole query, each phase a complete event nested inside it
//! (the viewer nests by time containment on the same pid/tid), and each
//! operator event an instant (`"ph": "i"`) mark. Timestamps and durations
//! are microseconds-as-float per the format; the exact nanosecond values
//! ride along in `args`, immune to the µs rounding.

use crate::json::Json;
use crate::trace::QueryTrace;
use std::time::Duration;

/// Microseconds-as-f64, the `ts`/`dur` unit of the trace_event format.
fn us(d: Duration) -> Json {
    Json::Num(d.as_nanos() as f64 / 1e3)
}

fn ns(d: Duration) -> Json {
    Json::Int(d.as_nanos() as i128)
}

fn event(name: &str, ph: &str, cat: &str, extra: Vec<(String, Json)>) -> Json {
    let mut o = vec![
        ("name".into(), Json::Str(name.to_string())),
        ("ph".into(), Json::Str(ph.to_string())),
        ("cat".into(), Json::Str(cat.to_string())),
        ("pid".into(), Json::Int(1)),
        ("tid".into(), Json::Int(1)),
    ];
    o.extend(extra);
    Json::Obj(o)
}

/// Render `trace` as a Chrome `trace_event` JSON document.
pub fn to_chrome_trace(trace: &QueryTrace) -> String {
    let mut events = Vec::with_capacity(1 + 2 * trace.phases.len());
    events.push(event(
        &trace.label,
        "X",
        "query",
        vec![
            ("ts".into(), us(Duration::ZERO)),
            ("dur".into(), us(trace.total)),
            (
                "args".into(),
                Json::Obj(vec![("total_ns".into(), ns(trace.total))]),
            ),
        ],
    ));
    for p in &trace.phases {
        events.push(event(
            &p.name,
            "X",
            "phase",
            vec![
                ("ts".into(), us(p.start)),
                ("dur".into(), us(p.duration)),
                (
                    "args".into(),
                    Json::Obj(vec![
                        ("start_ns".into(), ns(p.start)),
                        ("duration_ns".into(), ns(p.duration)),
                    ]),
                ),
            ],
        ));
        for e in &p.events {
            let mut args = vec![("at_ns".into(), ns(e.at))];
            args.extend(
                e.fields
                    .iter()
                    .map(|(k, v)| (k.clone(), Json::Str(v.clone()))),
            );
            events.push(event(
                &e.message,
                "i",
                "event",
                vec![
                    ("ts".into(), us(e.at)),
                    ("s".into(), Json::Str("t".into())),
                    ("args".into(), Json::Obj(args)),
                ],
            ));
        }
    }
    Json::Obj(vec![
        ("traceEvents".into(), Json::Arr(events)),
        ("displayTimeUnit".into(), Json::Str("ns".into())),
    ])
    .to_string_compact()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{TraceBuilder, TraceLevel};

    #[test]
    fn export_parses_and_nests_phases_inside_the_root() {
        let mut tb = TraceBuilder::new(TraceLevel::Full, "relational/global_pipeline \"q\"");
        tb.phase("parse");
        tb.phase("evaluate");
        tb.event("budget verdict", || vec![("truncated".into(), "no".into())]);
        let trace = tb.finish().unwrap();

        let doc = Json::parse(&to_chrome_trace(&trace)).unwrap();
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        // root + 2 phases + 1 instant
        assert_eq!(events.len(), 4);
        let ph = |e: &Json| e.get("ph").unwrap().as_str().unwrap().to_string();
        assert_eq!(ph(&events[0]), "X");
        assert!(events.iter().all(|e| matches!(ph(e).as_str(), "X" | "i")));

        // every X phase nests inside the root X event by time containment
        let span = |e: &Json| {
            let f = |k: &str| match e.get(k) {
                Some(Json::Num(n)) => *n,
                Some(Json::Int(i)) => *i as f64,
                _ => panic!("missing {k}"),
            };
            (f("ts"), f("ts") + f("dur"))
        };
        let (root_ts, root_end) = span(&events[0]);
        for e in &events[1..] {
            if ph(e) == "X" {
                let (ts, end) = span(e);
                assert!(
                    ts >= root_ts && end <= root_end + 1e-3,
                    "phase escapes root"
                );
            }
        }
        // exact ns values ride in args
        assert_eq!(
            events[0].get("args").unwrap().get("total_ns").unwrap(),
            &Json::Int(trace.total.as_nanos() as i128)
        );
    }
}
