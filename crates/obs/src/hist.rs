//! Log-linear histograms with atomic recording and quantile extraction.
//!
//! The bucket layout is HDR-style log-linear: values below 16 get exact
//! buckets; every power-of-two octave above that is split into 16 linear
//! sub-buckets, so the relative quantization error is bounded by 1/16
//! (6.25%) across the whole `u64` range. Recording is a single atomic
//! increment on the bucket plus count/sum/max updates — safe to call from
//! any number of threads with no locking, which is what lets every engine
//! worker record into one shared registry on the hot path.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Linear sub-buckets per octave (16 ⇒ ≤ 6.25% relative error).
const SUB_BITS: u32 = 4;
const SUB: u64 = 1 << SUB_BITS;
/// Total bucket count covering all of `u64`:
/// 16 exact buckets + 60 octaves × 16 sub-buckets.
pub const N_BUCKETS: usize = (SUB + (64 - SUB_BITS as u64) * SUB) as usize;

/// Bucket index for a value (log-linear).
fn bucket_index(v: u64) -> usize {
    if v < SUB {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros(); // ≥ SUB_BITS
    let group = (msb - SUB_BITS + 1) as u64;
    let offset = (v >> (msb - SUB_BITS)) & (SUB - 1);
    (group * SUB + offset) as usize
}

/// Inclusive upper bound of a bucket — the value reported for quantiles
/// falling in it (so quantiles never under-report).
fn bucket_upper(index: usize) -> u64 {
    let i = index as u64;
    if i < SUB {
        return i;
    }
    let group = i / SUB;
    let offset = i % SUB;
    let low = (SUB + offset) << (group - 1);
    let width = 1u64 << (group - 1);
    // parenthesized so the top octave (low + width == 2^64) cannot overflow
    low + (width - 1)
}

/// A thread-safe log-linear histogram of `u64` observations.
///
/// Suitable for latencies (record nanoseconds via
/// [`Histogram::record_duration`]) and work counters alike.
#[derive(Debug)]
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    pub fn new() -> Self {
        Histogram {
            buckets: (0..N_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Record one observation.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Record a duration as nanoseconds (saturating at `u64::MAX`).
    pub fn record_duration(&self, d: Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// A consistent-enough copy for export: bucket counts are read one by
    /// one, so a snapshot taken while writers are active may be off by the
    /// writes that raced it, never torn within one bucket.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<(usize, u64)> = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Ordering::Relaxed);
                (n > 0).then_some((i, n))
            })
            .collect();
        let count = buckets.iter().map(|&(_, n)| n).sum();
        HistogramSnapshot {
            buckets,
            count,
            sum: self.sum(),
            max: self.max.load(Ordering::Relaxed),
        }
    }

    /// Quantile `q` in `[0, 1]` of everything recorded so far.
    pub fn quantile(&self, q: f64) -> u64 {
        self.snapshot().quantile(q)
    }
}

/// An immutable copy of a histogram's state: sparse `(bucket index, count)`
/// pairs plus count/sum/max. Snapshots merge associatively, so per-worker
/// histograms can be combined in any grouping order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Non-empty buckets as `(bucket index, count)`, ascending by index.
    pub buckets: Vec<(usize, u64)>,
    pub count: u64,
    pub sum: u64,
    pub max: u64,
}

impl HistogramSnapshot {
    /// Fold `other` into `self`: bucket counts, count and sum add; max takes
    /// the maximum. `(a ∪ b) ∪ c == a ∪ (b ∪ c)` — tested.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        let mut merged: Vec<(usize, u64)> = Vec::with_capacity(self.buckets.len());
        let (mut i, mut j) = (0, 0);
        while i < self.buckets.len() || j < other.buckets.len() {
            match (self.buckets.get(i), other.buckets.get(j)) {
                (Some(&(ia, na)), Some(&(ib, nb))) => match ia.cmp(&ib) {
                    std::cmp::Ordering::Less => {
                        merged.push((ia, na));
                        i += 1;
                    }
                    std::cmp::Ordering::Greater => {
                        merged.push((ib, nb));
                        j += 1;
                    }
                    std::cmp::Ordering::Equal => {
                        merged.push((ia, na + nb));
                        i += 1;
                        j += 1;
                    }
                },
                (Some(&(ia, na)), None) => {
                    merged.push((ia, na));
                    i += 1;
                }
                (None, Some(&(ib, nb))) => {
                    merged.push((ib, nb));
                    j += 1;
                }
                (None, None) => unreachable!(),
            }
        }
        self.buckets = merged;
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// Quantile `q` in `[0, 1]`: the upper bound of the bucket holding the
    /// `⌈q·count⌉`-th smallest observation (clamped to the recorded max, so
    /// a p99 can never exceed the largest value actually seen).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for &(i, n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return bucket_upper(i).min(self.max);
            }
        }
        self.max
    }

    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Mean of the recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Cumulative `(inclusive upper bound, count ≤ bound)` pairs over the
    /// non-empty buckets — the shape Prometheus histogram exposition wants.
    pub fn cumulative(&self) -> Vec<(u64, u64)> {
        let mut acc = 0u64;
        self.buckets
            .iter()
            .map(|&(i, n)| {
                acc += n;
                (bucket_upper(i), acc)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kwdb_common::Rng;
    use std::sync::Arc;

    #[test]
    fn small_values_are_exact() {
        let h = Histogram::new();
        for v in 0..16u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 16);
        assert_eq!(s.sum, (0..16).sum::<u64>());
        for v in 0..16u64 {
            assert_eq!(bucket_upper(bucket_index(v)), v);
        }
    }

    #[test]
    fn bucket_bounds_are_consistent() {
        // every value maps into a bucket whose range contains it, and the
        // relative error of the upper bound is ≤ 1/16
        let mut rng = Rng::seed_from_u64(11);
        for _ in 0..10_000 {
            let v = rng.next_u64() >> (rng.gen_index(60) as u32);
            let i = bucket_index(v);
            let upper = bucket_upper(i);
            assert!(upper >= v, "upper {upper} < value {v}");
            let err = (upper - v) as f64 / (v.max(1)) as f64;
            assert!(err <= 1.0 / 16.0 + 1e-9, "error {err} for value {v}");
        }
    }

    #[test]
    fn merge_is_associative_and_commutative() {
        let mut rng = Rng::seed_from_u64(7);
        let mk = |rng: &mut Rng| {
            let h = Histogram::new();
            for _ in 0..rng.gen_range(1usize..500) {
                h.record(rng.next_u64() >> rng.gen_index(64) as u32);
            }
            h.snapshot()
        };
        let (a, b, c) = (mk(&mut rng), mk(&mut rng), mk(&mut rng));

        // (a ∪ b) ∪ c
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        // a ∪ (b ∪ c)
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_eq!(left, right, "merge must be associative");

        // b ∪ a == a ∪ b
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba, "merge must be commutative");
        assert_eq!(ab.count, a.count + b.count);
        assert_eq!(ab.sum, a.sum + b.sum);
    }

    #[test]
    fn quantiles_bound_error_on_uniform_distribution() {
        let mut rng = Rng::seed_from_u64(42);
        let h = Histogram::new();
        let n = 100_000u64;
        for _ in 0..n {
            h.record(rng.gen_range(1u64..=1_000_000));
        }
        let s = h.snapshot();
        assert_eq!(s.count, n);
        // uniform on [1, 1e6]: true quantile q is ≈ q·1e6; log-linear
        // buckets guarantee ≤ 1/16 relative quantization error, and the
        // sample itself adds a little noise — allow 10% total
        for (q, truth) in [(0.50, 500_000.0), (0.90, 900_000.0), (0.99, 990_000.0)] {
            let got = s.quantile(q) as f64;
            let rel = (got - truth).abs() / truth;
            assert!(rel < 0.10, "q={q}: got {got}, want ≈{truth} (rel {rel:.3})");
        }
        assert!(s.p50() <= s.p90() && s.p90() <= s.p99());
        assert!(s.p99() <= s.max);
    }

    #[test]
    fn quantiles_on_exponential_like_distribution() {
        // two-point mass: 90% at 10, 10% at 10_000 — p50 must sit on the
        // low mode, p99 on the high one
        let h = Histogram::new();
        for _ in 0..9000 {
            h.record(10);
        }
        for _ in 0..1000 {
            h.record(10_000);
        }
        let s = h.snapshot();
        assert_eq!(s.p50(), 10);
        assert_eq!(s.quantile(0.90), 10);
        let p99 = s.p99() as f64;
        assert!((p99 - 10_000.0).abs() / 10_000.0 <= 1.0 / 16.0 + 1e-9);
    }

    #[test]
    fn empty_histogram_is_all_zeros() {
        let s = Histogram::new().snapshot();
        assert_eq!((s.count, s.sum, s.max), (0, 0, 0));
        assert_eq!(s.quantile(0.99), 0);
        assert_eq!(s.mean(), 0.0);
        assert!(s.buckets.is_empty());
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        // 8 threads × 20_000 records into one histogram, mirroring the
        // dispatcher worker pool in tests/concurrency.rs: the totals must be
        // exact (atomics, not racy read-modify-write).
        let h = Arc::new(Histogram::new());
        let threads = 8;
        let per_thread = 20_000u64;
        let expected_sum: u64 = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let h = Arc::clone(&h);
                    scope.spawn(move || {
                        let mut rng = Rng::seed_from_u64(t as u64);
                        let mut local_sum = 0u64;
                        for _ in 0..per_thread {
                            let v = rng.gen_range(0u64..1_000_000);
                            h.record(v);
                            local_sum += v;
                        }
                        local_sum
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        });
        let s = h.snapshot();
        assert_eq!(s.count, threads as u64 * per_thread);
        assert_eq!(s.sum, expected_sum);
        assert_eq!(s.buckets.iter().map(|&(_, n)| n).sum::<u64>(), s.count);
    }
}
