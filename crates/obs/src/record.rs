//! The bridge from per-query [`QueryStats`] records to registry metrics.
//!
//! Every engine already returns a `QueryStats` per query; [`record_query`]
//! folds one into a [`MetricsRegistry`] under `engine × algorithm` labels so
//! fleet-wide totals, rates, and latency distributions accumulate across
//! queries and threads. The metric family names are stable — CI checks them
//! in the exported `BENCH_*.json` — and enumerated in [`families`].

use crate::registry::MetricsRegistry;
use kwdb_common::budget::TruncationReason;
use kwdb_common::index::IndexStats;
use kwdb_common::QueryStats;

/// Stable metric family names: the per-query families recorded by
/// [`record_query`], the relational plan-cache families, and the dispatcher
/// families. The bench JSON validator checks these exact strings.
pub mod families {
    /// Counter: queries executed, by engine × algorithm.
    pub const QUERIES: &str = "kwdb_queries_total";
    /// Histogram: end-to-end query latency in nanoseconds.
    pub const QUERY_LATENCY: &str = "kwdb_query_latency_ns";
    /// Histogram: per-phase latency in nanoseconds (label `phase`).
    pub const PHASE_LATENCY: &str = "kwdb_phase_latency_ns";
    /// Counter: operator work (label `op`).
    pub const OPERATORS: &str = "kwdb_operators_total";
    /// Counter: candidates generated/pruned (label `kind`).
    pub const CANDIDATES: &str = "kwdb_candidates_total";
    /// Counter: plan-cache lookups (label `outcome` = hit|miss).
    pub const PLAN_CACHE: &str = "kwdb_plan_cache_total";
    /// Counter: truncated queries (label `reason` = deadline|candidate_cap).
    pub const TRUNCATED: &str = "kwdb_queries_truncated_total";
    /// Gauge: current CN plan-cache entry count (relational engine).
    pub const PLAN_CACHE_SIZE: &str = "kwdb_plan_cache_size";
    /// Counter: CN plans generated (cache-miss work), relational engine.
    pub const PLAN_CACHE_GENERATIONS: &str = "kwdb_plan_cache_generations_total";
    /// Counter: CN plan-cache evictions, relational engine.
    pub const PLAN_CACHE_EVICTIONS: &str = "kwdb_plan_cache_evictions_total";
    /// Histogram: time a dispatched request waited before a worker claimed
    /// it (label `mode` = serial|concurrent).
    pub const DISPATCH_QUEUE_WAIT: &str = "kwdb_dispatch_queue_wait_ns";
    /// Gauge: requests currently executing inside a dispatcher.
    pub const DISPATCH_INFLIGHT: &str = "kwdb_dispatch_inflight";
    /// Counter: dispatched requests (label `outcome` = ok|error).
    pub const DISPATCH_REQUESTS: &str = "kwdb_dispatch_requests_total";
    /// Counter: dispatched requests per worker (label `worker`).
    pub const DISPATCH_WORKER_REQUESTS: &str = "kwdb_dispatch_worker_requests_total";
    /// Histogram: index build wall-clock in nanoseconds (label `index`).
    pub const INDEX_BUILD: &str = "kwdb_index_build_ns";
    /// Gauge: distinct terms in an index (label `index`).
    pub const INDEX_TERMS: &str = "kwdb_index_terms";
    /// Gauge: stored postings in an index (label `index`).
    pub const INDEX_POSTINGS: &str = "kwdb_index_postings";
    /// Gauge: approximate posting payload bytes of an index (label `index`).
    pub const INDEX_POSTING_BYTES: &str = "kwdb_index_posting_bytes";
    /// Gauge: encoded posting blocks in an index (label `index`; zero on
    /// the plain layout).
    pub const INDEX_BLOCKS: &str = "kwdb_index_blocks";
    /// Counter: candidate networks actually joined during top-k evaluation.
    pub const CN_EVALUATED: &str = "kwdb_cn_evaluated_total";
    /// Counter: candidate networks skipped (bound-pruned or budget-cut);
    /// together with [`CN_EVALUATED`] this accounts for every CN generated.
    pub const CN_PRUNED: &str = "kwdb_cn_pruned_total";
    /// Counter: rows matched by hash-join probes (probe hit volume).
    pub const JOIN_PROBE_ROWS: &str = "kwdb_join_probe_rows_total";
    /// Gauge: intra-query worker threads the relational engine runs with.
    pub const INTRA_WORKERS: &str = "kwdb_intra_query_workers";
    /// Counter: faceted queries executed (queries whose request carried at
    /// least one facet spec), by engine.
    pub const FACET_QUERIES: &str = "kwdb_facet_queries_total";
    /// Counter: facet values emitted across all faceted responses (the sum
    /// of `FacetCounts::values.len()` per query), by engine.
    pub const FACET_VALUES: &str = "kwdb_facet_values_total";
    /// Counter: faceted queries whose counts were inexact — the budget
    /// truncated the result multiset, or the scoring model counts only the
    /// returned hits (SPARK), by engine.
    pub const FACET_INEXACT: &str = "kwdb_facet_inexact_total";
    /// Counter: flight-recorder entries overwritten by ring wrap, labeled
    /// by the *overwritten* record's engine — the recorder observing
    /// itself, so dashboards can tell when the retained window is shorter
    /// than the traffic they are diagnosing.
    pub const FLIGHT_DROPPED: &str = "kwdb_flightrec_dropped_total";
    /// Gauge: records currently held in the flight recorder ring.
    pub const FLIGHT_ENTRIES: &str = "kwdb_flightrec_entries";
    /// Counter: queries whose trace was promoted by the registry's
    /// [`SamplePolicy`](crate::flight::SamplePolicy) rather than requested
    /// by the caller, by engine.
    pub const TRACE_SAMPLED: &str = "kwdb_trace_sampled_total";
    /// Gauge: a mutable engine's data generation — bumped by every
    /// successful mutation (label `engine`).
    pub const ENGINE_GENERATION: &str = "kwdb_engine_generation";
    /// Gauge: index segments by lifecycle state (labels `engine`,
    /// `state` = realtime|sealed).
    pub const SEGMENTS: &str = "kwdb_segments";
    /// Counter: segment merges — commit-cap folds plus explicit
    /// compactions (label `engine`).
    pub const SEGMENT_MERGES: &str = "kwdb_segment_merges_total";
    /// Counter: tuples ingested through the incremental path (label
    /// `engine`).
    pub const INGESTED_TUPLES: &str = "kwdb_ingested_tuples_total";
    /// Counter: result-cache hits — queries answered entirely from the
    /// generation-keyed result cache (label `engine`).
    pub const RESULT_CACHE_HITS: &str = "kwdb_result_cache_hits_total";
    /// Counter: result-cache misses — queries that consulted the result
    /// cache and had to compute (label `engine`).
    pub const RESULT_CACHE_MISSES: &str = "kwdb_result_cache_misses_total";
    /// Counter: result-cache entries evicted by the byte/entry budget
    /// (label `engine`).
    pub const RESULT_CACHE_EVICTIONS: &str = "kwdb_result_cache_evictions_total";
    /// Gauge: live result-cache entries (label `engine`).
    pub const RESULT_CACHE_ENTRIES: &str = "kwdb_result_cache_entries";
    /// Gauge: estimated bytes held by the result cache (label `engine`).
    pub const RESULT_CACHE_BYTES: &str = "kwdb_result_cache_bytes";
    /// Counter: relational tupleset-cache hits — per-term tuple-set
    /// materializations reused across queries (label `engine`).
    pub const TUPLESET_CACHE_HITS: &str = "kwdb_tupleset_cache_hits_total";
    /// Counter: relational tupleset-cache misses — terms whose tuple sets
    /// had to be scanned from postings (label `engine`).
    pub const TUPLESET_CACHE_MISSES: &str = "kwdb_tupleset_cache_misses_total";

    /// The `# HELP` text for a family, used by the Prometheus exporter.
    /// Every stable family above has an entry; `None` for foreign names
    /// (bench-local families pass through without a HELP line).
    pub fn help(family: &str) -> Option<&'static str> {
        Some(match family {
            QUERIES => "Queries executed, by engine and algorithm.",
            QUERY_LATENCY => "End-to-end query latency in nanoseconds.",
            PHASE_LATENCY => "Per-phase query latency in nanoseconds.",
            OPERATORS => "Operator-level work counts (label op).",
            CANDIDATES => "Candidates generated/pruned (label kind).",
            PLAN_CACHE => "CN plan-cache lookups (label outcome).",
            TRUNCATED => "Queries cut short by their budget (label reason).",
            PLAN_CACHE_SIZE => "Current CN plan-cache entry count.",
            PLAN_CACHE_GENERATIONS => "CN plans generated on cache misses.",
            PLAN_CACHE_EVICTIONS => "CN plan-cache evictions.",
            DISPATCH_QUEUE_WAIT => "Time a dispatched request waited before a worker claimed it.",
            DISPATCH_INFLIGHT => "Requests currently executing inside a dispatcher.",
            DISPATCH_REQUESTS => "Dispatched requests (label outcome).",
            DISPATCH_WORKER_REQUESTS => "Dispatched requests per worker.",
            INDEX_BUILD => "Index build wall-clock in nanoseconds (label index).",
            INDEX_TERMS => "Distinct terms in an index (label index).",
            INDEX_POSTINGS => "Stored postings in an index (label index).",
            INDEX_POSTING_BYTES => "Approximate posting payload bytes of an index (label index).",
            INDEX_BLOCKS => "Encoded posting blocks in an index (label index).",
            CN_EVALUATED => "Candidate networks joined during top-k evaluation.",
            CN_PRUNED => "Candidate networks skipped by bounds or budget.",
            JOIN_PROBE_ROWS => "Rows matched by hash-join probes.",
            INTRA_WORKERS => "Intra-query worker threads the relational engine runs with.",
            FACET_QUERIES => "Queries that requested at least one facet.",
            FACET_VALUES => "Facet values emitted across faceted responses.",
            FACET_INEXACT => "Faceted queries whose counts were inexact.",
            FLIGHT_DROPPED => "Flight-recorder entries overwritten by ring wrap, by the overwritten record's engine.",
            FLIGHT_ENTRIES => "Records currently held in the flight recorder ring.",
            TRACE_SAMPLED => "Queries whose trace was promoted by the sampling policy.",
            ENGINE_GENERATION => "A mutable engine's data generation (bumped per mutation).",
            SEGMENTS => "Index segments by lifecycle state (label state).",
            SEGMENT_MERGES => "Segment merges: commit-cap folds plus explicit compactions.",
            INGESTED_TUPLES => "Tuples ingested through the incremental path.",
            RESULT_CACHE_HITS => "Queries answered entirely from the result cache.",
            RESULT_CACHE_MISSES => "Queries that consulted the result cache and computed.",
            RESULT_CACHE_EVICTIONS => "Result-cache entries evicted by the byte/entry budget.",
            RESULT_CACHE_ENTRIES => "Live result-cache entries.",
            RESULT_CACHE_BYTES => "Estimated bytes held by the result cache.",
            TUPLESET_CACHE_HITS => "Per-term tuple sets reused from the tupleset cache.",
            TUPLESET_CACHE_MISSES => "Terms whose tuple sets were scanned from postings.",
            _ => return None,
        })
    }
}

/// Fold one query's stats into the registry under `engine × algorithm`.
pub fn record_query(
    reg: &MetricsRegistry,
    engine: &str,
    algorithm: &str,
    stats: &QueryStats,
    truncation: Option<TruncationReason>,
) {
    let ea = [("engine", engine), ("algorithm", algorithm)];
    reg.counter(families::QUERIES, &ea).inc();
    reg.histogram(families::QUERY_LATENCY, &ea)
        .record_duration(stats.phases.total());
    for (phase, d) in [
        ("parse", stats.phases.parse),
        ("build", stats.phases.build),
        ("plan", stats.phases.plan),
        ("evaluate", stats.phases.evaluate),
        ("facets", stats.phases.facets),
    ] {
        reg.histogram(
            families::PHASE_LATENCY,
            &[
                ("engine", engine),
                ("algorithm", algorithm),
                ("phase", phase),
            ],
        )
        .record_duration(d);
    }
    for (op, n) in [
        ("tuples_scanned", stats.operators.tuples_scanned),
        ("join_probes", stats.operators.join_probes),
        ("joins_executed", stats.operators.joins_executed),
        ("rows_output", stats.operators.rows_output),
        ("sorted_accesses", stats.operators.sorted_accesses),
        ("random_accesses", stats.operators.random_accesses),
        ("blocks_skipped", stats.operators.blocks_skipped),
    ] {
        reg.counter(
            families::OPERATORS,
            &[("engine", engine), ("algorithm", algorithm), ("op", op)],
        )
        .add(n);
    }
    for (kind, n) in [
        ("generated", stats.candidates_generated),
        ("pruned", stats.candidates_pruned),
    ] {
        reg.counter(
            families::CANDIDATES,
            &[("engine", engine), ("algorithm", algorithm), ("kind", kind)],
        )
        .add(n);
    }
    reg.counter(families::CN_EVALUATED, &ea)
        .add(stats.cns_evaluated);
    reg.counter(families::CN_PRUNED, &ea).add(stats.cns_pruned);
    reg.counter(families::JOIN_PROBE_ROWS, &ea)
        .add(stats.operators.join_probe_rows);
    for (outcome, n) in [("hit", stats.cache_hits), ("miss", stats.cache_misses)] {
        reg.counter(
            families::PLAN_CACHE,
            &[("engine", engine), ("outcome", outcome)],
        )
        .add(n);
    }
    // Result-cache consults, same zero-registration pattern: both families
    // exist in every snapshot that recorded a query, so `metrics_check` can
    // require them before the first hit ever lands.
    reg.counter(families::RESULT_CACHE_HITS, &[("engine", engine)])
        .add(stats.result_cache_hits);
    reg.counter(families::RESULT_CACHE_MISSES, &[("engine", engine)])
        .add(stats.result_cache_misses);
    if let Some(reason) = truncation {
        reg.counter(
            families::TRUNCATED,
            &[
                ("engine", engine),
                ("algorithm", algorithm),
                ("reason", reason.as_str()),
            ],
        )
        .inc();
    }
}

/// Record one faceted query's outcome: how many facet values the response
/// carried and whether the counts were exact over the full result multiset.
/// Engines call this only for requests that actually asked for facets, so
/// `FACET_QUERIES` counts faceted queries, not all queries.
pub fn record_facets(reg: &MetricsRegistry, engine: &str, values: u64, exact: bool) {
    let labels = [("engine", engine)];
    reg.counter(families::FACET_QUERIES, &labels).inc();
    reg.counter(families::FACET_VALUES, &labels).add(values);
    // Register the inexactness counter even at zero, so the family is
    // always present in snapshots and dashboards can alert on it.
    let inexact = reg.counter(families::FACET_INEXACT, &labels);
    if !exact {
        inexact.inc();
    }
}

/// Publish one mutable engine's generational figures: the generation gauge,
/// the per-state segment gauges, and the cumulative merge counter (callers
/// pass the *delta* of merges since they last recorded). Engines call this
/// once at registry attach time (zero delta) and after every mutation, so
/// all four families — including the ingest counter, touched here at zero —
/// are present in snapshots before the first mutation.
pub fn record_generation(
    reg: &MetricsRegistry,
    engine: &str,
    generation: u64,
    realtime: usize,
    sealed: usize,
    merge_delta: u64,
) {
    let labels = [("engine", engine)];
    reg.gauge(families::ENGINE_GENERATION, &labels)
        .set(generation as i64);
    reg.gauge(
        families::SEGMENTS,
        &[("engine", engine), ("state", "realtime")],
    )
    .set(realtime as i64);
    reg.gauge(
        families::SEGMENTS,
        &[("engine", engine), ("state", "sealed")],
    )
    .set(sealed as i64);
    reg.counter(families::SEGMENT_MERGES, &labels)
        .add(merge_delta);
    let _ = reg.counter(families::INGESTED_TUPLES, &labels);
}

/// Record one substrate index's size figures (and, when known, its build
/// wall-clock) under the `index` label. Engines call this once per index
/// build, so the gauges reflect the currently-live index while the build
/// histogram accumulates across rebuilds.
pub fn record_index_stats(reg: &MetricsRegistry, index: &str, stats: &IndexStats) {
    let labels = [("index", index)];
    reg.gauge(families::INDEX_TERMS, &labels)
        .set(stats.terms as i64);
    reg.gauge(families::INDEX_POSTINGS, &labels)
        .set(stats.postings as i64);
    reg.gauge(families::INDEX_POSTING_BYTES, &labels)
        .set(stats.posting_bytes as i64);
    reg.gauge(families::INDEX_BLOCKS, &labels)
        .set(stats.blocks as i64);
    if let Some(build) = stats.build {
        reg.histogram(families::INDEX_BUILD, &labels)
            .record_duration(build);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn stats() -> QueryStats {
        let mut s = QueryStats::new();
        s.phases.parse = Duration::from_micros(10);
        s.phases.evaluate = Duration::from_micros(400);
        s.operators.tuples_scanned = 100;
        s.operators.join_probes = 40;
        s.candidates_generated = 12;
        s.candidates_pruned = 5;
        s.cns_evaluated = 9;
        s.cns_pruned = 3;
        s.operators.join_probe_rows = 25;
        s.cache_hits = 1;
        s
    }

    #[test]
    fn record_query_populates_every_family() {
        let reg = MetricsRegistry::new();
        record_query(&reg, "relational", "global_pipeline", &stats(), None);
        record_query(
            &reg,
            "relational",
            "global_pipeline",
            &stats(),
            Some(TruncationReason::DeadlineExceeded),
        );
        let ea = [("engine", "relational"), ("algorithm", "global_pipeline")];
        assert_eq!(reg.counter_value(families::QUERIES, &ea), 2);
        assert_eq!(
            reg.counter_value(
                families::OPERATORS,
                &[
                    ("engine", "relational"),
                    ("algorithm", "global_pipeline"),
                    ("op", "tuples_scanned")
                ]
            ),
            200
        );
        assert_eq!(
            reg.counter_value(
                families::TRUNCATED,
                &[
                    ("engine", "relational"),
                    ("algorithm", "global_pipeline"),
                    ("reason", "deadline")
                ]
            ),
            1
        );
        assert_eq!(
            reg.counter_value(
                families::PLAN_CACHE,
                &[("engine", "relational"), ("outcome", "hit")]
            ),
            2
        );
        assert_eq!(reg.counter_value(families::CN_EVALUATED, &ea), 18);
        assert_eq!(reg.counter_value(families::CN_PRUNED, &ea), 6);
        assert_eq!(reg.counter_value(families::JOIN_PROBE_ROWS, &ea), 50);
        let snap = reg.snapshot();
        let hist = snap
            .histograms
            .iter()
            .find(|(id, _)| id.name == families::QUERY_LATENCY)
            .expect("latency histogram exists");
        assert_eq!(hist.1.count, 2);
        assert!(snap.family_names().contains(&families::PHASE_LATENCY));
        assert!(snap.family_names().contains(&families::CANDIDATES));
        assert!(snap.family_names().contains(&families::CN_EVALUATED));
        assert!(snap.family_names().contains(&families::CN_PRUNED));
        assert!(snap.family_names().contains(&families::JOIN_PROBE_ROWS));
    }

    #[test]
    fn record_facets_counts_queries_values_and_inexactness() {
        let reg = MetricsRegistry::new();
        record_facets(&reg, "relational", 7, true);
        record_facets(&reg, "relational", 3, false);
        let labels = [("engine", "relational")];
        assert_eq!(reg.counter_value(families::FACET_QUERIES, &labels), 2);
        assert_eq!(reg.counter_value(families::FACET_VALUES, &labels), 10);
        assert_eq!(reg.counter_value(families::FACET_INEXACT, &labels), 1);
    }

    #[test]
    fn record_index_stats_sets_gauges_and_build_histogram() {
        let reg = MetricsRegistry::new();
        let stats = IndexStats::new(12, 340, 340 * 16).with_build(Some(Duration::from_micros(250)));
        record_index_stats(&reg, "relational_text", &stats);
        // a rebuild overwrites the gauges but accumulates in the histogram
        record_index_stats(&reg, "relational_text", &stats);
        let labels = [("index", "relational_text")];
        assert_eq!(reg.gauge(families::INDEX_TERMS, &labels).get(), 12);
        assert_eq!(reg.gauge(families::INDEX_POSTINGS, &labels).get(), 340);
        assert_eq!(
            reg.gauge(families::INDEX_POSTING_BYTES, &labels).get(),
            340 * 16
        );
        let snap = reg.snapshot();
        let hist = snap
            .histograms
            .iter()
            .find(|(id, _)| id.name == families::INDEX_BUILD)
            .expect("build histogram exists");
        assert_eq!(hist.1.count, 2);

        // an index with no recorded build time still reports sizes
        let unbuilt = IndexStats::new(1, 1, 8);
        record_index_stats(&reg, "graph_keyword", &unbuilt);
        assert_eq!(
            reg.gauge(families::INDEX_TERMS, &[("index", "graph_keyword")])
                .get(),
            1
        );
    }
}
