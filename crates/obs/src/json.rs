//! A minimal JSON value, writer, and parser.
//!
//! The workspace builds hermetically (no serde), but the exporters need a
//! real JSON round-trip: the bench harness writes `BENCH_*.json` metric
//! snapshots and CI parses them back to validate the emitted families. This
//! module implements just enough of RFC 8259 for that: objects, arrays,
//! strings with escape sequences, integer and float numbers, booleans and
//! null. Integer numerals are held as [`Json::Int`] (`i128`) and round-trip
//! exactly at any magnitude a `u64` nanosecond count can reach — the trace
//! and flight-recorder schemas depend on this. Fractional and exponent
//! numerals are held as [`Json::Num`] (`f64`).

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// An integer numeral, exact. The parser produces this for any numeral
    /// without a fraction or exponent; use it for nanosecond timestamps and
    /// counters that must survive a round-trip bit-for-bit (`f64` rounds
    /// above 2^53).
    Int(i128),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Key-value pairs in insertion order (duplicates kept as written).
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(i) if *i >= 0 && *i <= u64::MAX as i128 => Some(*i as u64),
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= (1u64 << 53) as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(i) if *i >= i64::MIN as i128 && *i <= i64::MAX as i128 => Some(*i as i64),
            Json::Num(n) if n.fract() == 0.0 && n.abs() <= (1u64 << 53) as f64 => Some(*n as i64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Look up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Serialize compactly (no whitespace).
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parse a complete JSON document (trailing whitespace allowed, trailing
    /// garbage is an error).
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(v)
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    pub offset: usize,
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected {lit}")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let s = std::str::from_utf8(hex)
                                .map_err(|_| self.err("non-ASCII \\u escape"))?;
                            let code = u32::from_str_radix(s, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            // BMP only (no surrogate-pair recombination) —
                            // the writer never emits surrogates.
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // consume one UTF-8 character
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII");
        // Fraction/exponent-free numerals parse to the exact integer
        // variant; anything else (or an i128 overflow) falls back to f64.
        if !text.contains(['.', 'e', 'E']) {
            if let Ok(i) = text.parse::<i128>() {
                return Ok(Json::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for src in ["null", "true", "false", "0", "-17", "3.5", "\"hi\""] {
            let v = Json::parse(src).unwrap();
            assert_eq!(Json::parse(&v.to_string_compact()).unwrap(), v, "{src}");
        }
    }

    #[test]
    fn nested_structure_round_trips() {
        let src = r#"{"a": [1, 2, {"b": "x\ny", "c": null}], "d": true}"#;
        let v = Json::parse(src).unwrap();
        let re = Json::parse(&v.to_string_compact()).unwrap();
        assert_eq!(v, re);
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[2]
                .get("b")
                .unwrap()
                .as_str(),
            Some("x\ny")
        );
    }

    #[test]
    fn u64_integers_round_trip_exactly() {
        for n in [0u64, 1, 42, 1 << 40, (1 << 53) - 1] {
            let v = Json::Num(n as f64);
            let re = Json::parse(&v.to_string_compact()).unwrap();
            assert_eq!(re.as_u64(), Some(n));
        }
        // Above 2^53 the f64 path would round; Int is exact to u64::MAX.
        for n in [(1u64 << 53) + 1, u64::MAX - 1, u64::MAX] {
            let v = Json::Int(n as i128);
            let re = Json::parse(&v.to_string_compact()).unwrap();
            assert_eq!(re, v);
            assert_eq!(re.as_u64(), Some(n));
        }
        assert_eq!(
            Json::parse("-9007199254740995").unwrap().as_i64(),
            Some(-9_007_199_254_740_995)
        );
    }

    #[test]
    fn escapes_and_unicode() {
        let v = Json::Str("quote \" slash \\ tab \t π".to_string());
        let re = Json::parse(&v.to_string_compact()).unwrap();
        assert_eq!(re, v);
        assert_eq!(Json::parse(r#""Aé""#).unwrap().as_str(), Some("Aé"));
    }

    #[test]
    fn errors_carry_position() {
        for bad in ["{", "[1,]", "{\"a\" 1}", "tru", "\"unterminated", "1 2"] {
            assert!(Json::parse(bad).is_err(), "{bad} should fail");
        }
        let err = Json::parse("[1, %]").unwrap_err();
        assert_eq!(err.offset, 4);
    }
}
