//! The query flight recorder: a bounded in-memory log of the last N
//! queries, always on once a registry is attached.
//!
//! Aggregates (counters, histograms) answer "how is the fleet doing";
//! they cannot answer "why was *this* query slow" after the response is
//! gone. The [`FlightRecorder`] keeps that story: every sealed query
//! appends a compact [`QueryRecord`] — engine, executor label, redacted
//! query digest, `k`, worker count, per-phase durations, truncation
//! reason, plan-cache outcome, and (when one was built) the full
//! [`QueryTrace`] span tree — into a fixed-capacity ring. Old entries are
//! overwritten, never reallocated: memory stays bounded no matter how many
//! queries flow through.
//!
//! Concurrency: a global atomic sequence assigns each record a slot
//! (`seq % capacity`); slots are guarded by a small set of striped
//! mutexes, so concurrent appends to different slots never contend and
//! appends to the *same* slot (a full wrap apart) serialize briefly. A
//! slot only accepts a record newer than its occupant, so a lagging writer
//! can never clobber the latest query — it becomes the dropped one.
//!
//! The [`SamplePolicy`] decides which queries get their traces upgraded
//! without the caller asking (1-in-N sampling, plus class-level promotion
//! while an executor's live p99 sits above a fixed threshold) and which
//! records are flagged slow at seal time (fixed threshold, or
//! auto-tracking the live p99 from the latency histogram). The policy
//! lives on the registry; engines consult it once per query.
//!
//! [`FlightDump`] serializes the ring as `kwdb-flightrec-v1` JSON (exact
//! integers for all nanosecond fields) and parses it back — the format
//! `kwdb-doctor` reads offline.

use crate::json::{Json, JsonError};
use crate::trace::{QueryTrace, TraceLevel};
use kwdb_common::budget::TruncationReason;
use kwdb_common::{PhaseTimings, QueryStats};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Default ring capacity: enough to hold the recent past of a busy engine
/// without holding more than a few hundred KB of records.
pub const DEFAULT_CAPACITY: usize = 512;

/// Number of mutex stripes guarding the ring's slots.
const STRIPES: usize = 8;

/// A cache outcome of one query, folded from its `QueryStats`. Used for
/// both of a record's cache verdicts: the CN plan cache
/// ([`QueryRecord::cache`]) and the generation-keyed result cache
/// ([`QueryRecord::result_cache`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    Hit,
    Miss,
    /// The query never consulted this cache. For the plan cache that means
    /// an engine without one (graph/XML) or an empty query; for the result
    /// cache — every engine has one — it means the consult conditions
    /// didn't hold: cache disabled, tracing on, empty query, or a
    /// constrained budget.
    None,
}

impl CacheOutcome {
    pub fn as_str(self) -> &'static str {
        match self {
            CacheOutcome::Hit => "hit",
            CacheOutcome::Miss => "miss",
            CacheOutcome::None => "none",
        }
    }

    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "hit" => Some(CacheOutcome::Hit),
            "miss" => Some(CacheOutcome::Miss),
            "none" => Some(CacheOutcome::None),
            _ => None,
        }
    }
}

/// A redacted identifier for a query string: the term count plus a 64-bit
/// FNV-1a hash, rendered `"<terms>w:<hex>"`. The raw text never enters the
/// recorder, so a dump can leave the machine without leaking query content
/// while still letting repeats of the same query be grouped.
pub fn query_digest(query: &str) -> String {
    let terms = query.split_whitespace().count();
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in query.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{terms}w:{h:016x}")
}

/// One query's flight-recorder entry. Compact by construction: label
/// strings, a digest, the phase timings, and flags — plus the full trace
/// only when one was actually built for this query.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryRecord {
    /// Position in the global append order; assigned by the recorder.
    pub seq: u64,
    pub engine: String,
    pub algorithm: String,
    /// Redacted query identity (see [`query_digest`]).
    pub digest: String,
    pub k: u64,
    /// Intra-query workers the executor ran with.
    pub workers: u64,
    /// Per-phase durations from the query's `QueryStats`.
    pub phases: PhaseTimings,
    pub truncation: Option<TruncationReason>,
    /// CN plan-cache outcome.
    pub cache: CacheOutcome,
    /// Result-cache outcome (the whole sealed response, generation-keyed).
    pub result_cache: CacheOutcome,
    /// Whether the trace was policy-promoted rather than caller-requested.
    pub sampled: bool,
    /// Whether the query met the slow threshold at seal time.
    pub slow: bool,
    /// The engine's data generation this query executed against (0 for
    /// engines without mutation support).
    pub generation: u64,
    /// Realtime segments in the engine's index at execution time.
    pub segments_realtime: u64,
    /// Sealed (immutable, compressed) segments at execution time.
    pub segments_sealed: u64,
    pub trace: Option<QueryTrace>,
}

impl QueryRecord {
    /// Build a record from a sealed query (seq and `slow` are assigned at
    /// append time by the registry/recorder).
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        engine: &str,
        algorithm: &str,
        query: &str,
        k: usize,
        workers: usize,
        stats: &QueryStats,
        truncation: Option<TruncationReason>,
        sampled: bool,
        trace: Option<QueryTrace>,
    ) -> Self {
        let fold = |hits: u64, misses: u64| {
            if hits > 0 {
                CacheOutcome::Hit
            } else if misses > 0 {
                CacheOutcome::Miss
            } else {
                CacheOutcome::None
            }
        };
        let cache = fold(stats.cache_hits, stats.cache_misses);
        let result_cache = fold(stats.result_cache_hits, stats.result_cache_misses);
        QueryRecord {
            seq: 0,
            engine: engine.to_string(),
            algorithm: algorithm.to_string(),
            digest: query_digest(query),
            k: k as u64,
            workers: workers as u64,
            phases: stats.phases,
            truncation,
            cache,
            result_cache,
            sampled,
            slow: false,
            generation: 0,
            segments_realtime: 0,
            segments_sealed: 0,
            trace,
        }
    }

    /// Stamp the engine's data generation and segment census at execution
    /// time — `kwdb-doctor` reports these per engine from a dump.
    pub fn with_generation(mut self, generation: u64, realtime: usize, sealed: usize) -> Self {
        self.generation = generation;
        self.segments_realtime = realtime as u64;
        self.segments_sealed = sealed as u64;
        self
    }

    /// End-to-end latency: the sum over phases, exactly what the latency
    /// histogram records — so dump sums and histogram sums agree.
    pub fn total(&self) -> Duration {
        self.phases.total()
    }
}

/// When a query counts as slow for the flight recorder's slow flag (and,
/// for [`SlowThreshold::Fixed`], when an executor's queries get promoted to
/// traced while its live p99 sits at or above the threshold).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlowThreshold {
    /// Never flag queries slow.
    Off,
    /// Flag queries whose end-to-end latency reaches the given duration.
    Fixed(Duration),
    /// Auto-track the live p99 of the query's `engine × algorithm` latency
    /// histogram: a query is slow when it exceeds the p99 of the traffic
    /// recorded before it (ignored until the histogram holds
    /// [`SamplePolicy::AUTO_MIN_SAMPLES`] observations, so a cold engine
    /// doesn't flag its warm-up).
    AutoP99,
}

/// How the registry upgrades traces and flags slow queries without callers
/// opting in per request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SamplePolicy {
    /// Promote every Nth query (across the whole registry, in arrival
    /// order) to `level`; `0` disables count-based sampling.
    pub sample_every: u64,
    /// The slow-query criterion (see [`SlowThreshold`]).
    pub slow_threshold: SlowThreshold,
    /// The trace level promoted queries get. Requests already at or above
    /// it are left alone (and don't consume a sampling tick).
    pub level: TraceLevel,
}

impl SamplePolicy {
    /// Observations an `engine × algorithm` latency histogram must hold
    /// before [`SlowThreshold::AutoP99`] starts flagging queries.
    pub const AUTO_MIN_SAMPLES: u64 = 32;

    /// No promotion and no slow flagging — flight records still accumulate,
    /// but only carry traces callers asked for.
    pub fn off() -> Self {
        SamplePolicy {
            sample_every: 0,
            slow_threshold: SlowThreshold::Off,
            level: TraceLevel::Off,
        }
    }

    /// Promote every `n`th query to a full trace (`n = 0` disables).
    pub fn every(n: u64) -> Self {
        SamplePolicy {
            sample_every: n,
            level: TraceLevel::Full,
            ..Default::default()
        }
    }
}

impl Default for SamplePolicy {
    /// The always-on default: 1-in-128 full traces, slow queries flagged
    /// against the live p99.
    fn default() -> Self {
        SamplePolicy {
            sample_every: 128,
            slow_threshold: SlowThreshold::AutoP99,
            level: TraceLevel::Full,
        }
    }
}

/// A slot holds the record plus nothing else; `None` until first wrap.
type Slot = Option<QueryRecord>;

/// The bounded, lock-striped ring buffer of recent [`QueryRecord`]s.
#[derive(Debug)]
pub struct FlightRecorder {
    capacity: usize,
    /// Slot `s` lives in stripe `s % STRIPES` at index `s / STRIPES`.
    stripes: Vec<Mutex<Vec<Slot>>>,
    /// Next sequence number == total records ever appended.
    seq: AtomicU64,
    /// Records lost to overwriting (including stale appends that lost the
    /// slot race to a newer record).
    dropped: AtomicU64,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder::with_capacity(DEFAULT_CAPACITY)
    }
}

impl FlightRecorder {
    /// A recorder holding the last `capacity` records (min 1).
    pub fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        let stripes = (0..STRIPES.min(capacity))
            .map(|s| {
                // ceil of the number of slots mapping to stripe `s`
                let n = (capacity - s).div_ceil(STRIPES.min(capacity));
                Mutex::new(vec![None; n])
            })
            .collect();
        FlightRecorder {
            capacity,
            stripes,
            seq: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total records ever appended (not capped by capacity).
    pub fn appended(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }

    /// Records lost to overwriting so far.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Records currently held: `min(appended, capacity)`.
    pub fn len(&self) -> usize {
        (self.appended() as usize).min(self.capacity)
    }

    pub fn is_empty(&self) -> bool {
        self.appended() == 0
    }

    /// Append one record, assigning its sequence number. Returns the record
    /// it displaced (`None` until the ring wraps) so the caller can count
    /// drops by engine. If a slower thread arrives after its slot was
    /// already taken by a *newer* wrap, the stale record itself is the one
    /// returned as dropped — the latest query is never lost.
    pub fn append(&self, mut rec: QueryRecord) -> Option<QueryRecord> {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        rec.seq = seq;
        let slot = (seq as usize) % self.capacity;
        let n_stripes = self.stripes.len();
        let mut guard = self.stripes[slot % n_stripes]
            .lock()
            .expect("flight recorder stripe poisoned");
        let cell = &mut guard[slot / n_stripes];
        let displaced = match cell {
            Some(existing) if existing.seq > seq => Some(rec), // lost the race: drop self
            _ => cell.replace(rec),
        };
        if displaced.is_some() {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        displaced
    }

    /// Snapshot the ring's contents in append order (oldest retained record
    /// first) together with the drop count.
    pub fn dump(&self) -> FlightDump {
        let mut records: Vec<QueryRecord> = Vec::with_capacity(self.len());
        for stripe in &self.stripes {
            let guard = stripe.lock().expect("flight recorder stripe poisoned");
            records.extend(guard.iter().filter_map(|slot| slot.clone()));
        }
        records.sort_by_key(|r| r.seq);
        FlightDump {
            capacity: self.capacity,
            dropped: self.dropped(),
            records,
        }
    }
}

/// A point-in-time copy of the recorder: the unit of serialization and the
/// input `kwdb-doctor` analyzes.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightDump {
    pub capacity: usize,
    pub dropped: u64,
    /// Retained records, oldest first.
    pub records: Vec<QueryRecord>,
}

impl FlightDump {
    /// Serialize as `kwdb-flightrec-v1` JSON. Nanosecond fields are exact
    /// integers.
    pub fn to_json(&self) -> String {
        let ns = |d: Duration| Json::Int(d.as_nanos() as i128);
        let records = self
            .records
            .iter()
            .map(|r| {
                let mut o = vec![
                    ("seq".into(), Json::Int(r.seq as i128)),
                    ("engine".into(), Json::Str(r.engine.clone())),
                    ("algorithm".into(), Json::Str(r.algorithm.clone())),
                    ("digest".into(), Json::Str(r.digest.clone())),
                    ("k".into(), Json::Int(r.k as i128)),
                    ("workers".into(), Json::Int(r.workers as i128)),
                    ("total_ns".into(), ns(r.total())),
                    (
                        "phases".into(),
                        Json::Obj(vec![
                            ("parse".into(), ns(r.phases.parse)),
                            ("build".into(), ns(r.phases.build)),
                            ("plan".into(), ns(r.phases.plan)),
                            ("evaluate".into(), ns(r.phases.evaluate)),
                            ("facets".into(), ns(r.phases.facets)),
                        ]),
                    ),
                    (
                        "truncation".into(),
                        match r.truncation {
                            Some(t) => Json::Str(t.as_str().to_string()),
                            None => Json::Null,
                        },
                    ),
                    ("cache".into(), Json::Str(r.cache.as_str().to_string())),
                    (
                        "result_cache".into(),
                        Json::Str(r.result_cache.as_str().to_string()),
                    ),
                    ("sampled".into(), Json::Bool(r.sampled)),
                    ("slow".into(), Json::Bool(r.slow)),
                    ("generation".into(), Json::Int(r.generation as i128)),
                    (
                        "segments".into(),
                        Json::Obj(vec![
                            ("realtime".into(), Json::Int(r.segments_realtime as i128)),
                            ("sealed".into(), Json::Int(r.segments_sealed as i128)),
                        ]),
                    ),
                ];
                o.push((
                    "trace".into(),
                    match &r.trace {
                        Some(t) => t.to_json_value(),
                        None => Json::Null,
                    },
                ));
                Json::Obj(o)
            })
            .collect();
        Json::Obj(vec![
            ("format".into(), Json::Str("kwdb-flightrec-v1".into())),
            ("capacity".into(), Json::Int(self.capacity as i128)),
            ("dropped".into(), Json::Int(self.dropped as i128)),
            ("records".into(), Json::Arr(records)),
        ])
        .to_string_compact()
    }

    /// Parse a dump written by [`to_json`](Self::to_json). Exact inverse:
    /// `from_json(to_json(d)) == d`.
    pub fn from_json(input: &str) -> Result<FlightDump, JsonError> {
        let doc = Json::parse(input)?;
        let bad = |message: &str| JsonError {
            offset: 0,
            message: message.to_string(),
        };
        if doc.get("format").and_then(Json::as_str) != Some("kwdb-flightrec-v1") {
            return Err(bad("missing or unknown \"format\" marker"));
        }
        let num = |v: Option<&Json>, what: &str| {
            v.and_then(Json::as_u64)
                .ok_or_else(|| bad(&format!("missing u64 \"{what}\"")))
        };
        let text = |v: Option<&Json>, what: &str| {
            v.and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| bad(&format!("missing string \"{what}\"")))
        };
        let mut records = Vec::new();
        for r in doc
            .get("records")
            .and_then(Json::as_arr)
            .ok_or_else(|| bad("missing \"records\" array"))?
        {
            let p = r
                .get("phases")
                .ok_or_else(|| bad("record missing \"phases\""))?;
            let pns = |what: &str| num(p.get(what), what).map(Duration::from_nanos);
            let phases = PhaseTimings {
                parse: pns("parse")?,
                build: pns("build")?,
                plan: pns("plan")?,
                evaluate: pns("evaluate")?,
                facets: pns("facets")?,
            };
            let truncation = match r.get("truncation") {
                Some(Json::Null) | None => None,
                Some(v) => Some(
                    v.as_str()
                        .and_then(TruncationReason::parse)
                        .ok_or_else(|| bad("unknown \"truncation\" reason"))?,
                ),
            };
            let trace = match r.get("trace") {
                Some(Json::Null) | None => None,
                Some(v) => Some(QueryTrace::from_json_value(v)?),
            };
            let rec = QueryRecord {
                seq: num(r.get("seq"), "seq")?,
                engine: text(r.get("engine"), "engine")?,
                algorithm: text(r.get("algorithm"), "algorithm")?,
                digest: text(r.get("digest"), "digest")?,
                k: num(r.get("k"), "k")?,
                workers: num(r.get("workers"), "workers")?,
                phases,
                truncation,
                cache: CacheOutcome::parse(&text(r.get("cache"), "cache")?)
                    .ok_or_else(|| bad("unknown \"cache\" outcome"))?,
                // Defaults to None so pre-result-cache dumps still parse.
                result_cache: match r.get("result_cache") {
                    Some(v) => CacheOutcome::parse(
                        v.as_str()
                            .ok_or_else(|| bad("non-string \"result_cache\""))?,
                    )
                    .ok_or_else(|| bad("unknown \"result_cache\" outcome"))?,
                    None => CacheOutcome::None,
                },
                sampled: matches!(r.get("sampled"), Some(Json::Bool(true))),
                slow: matches!(r.get("slow"), Some(Json::Bool(true))),
                // Generation fields default to 0 so pre-generational dumps
                // still parse.
                generation: r.get("generation").and_then(Json::as_u64).unwrap_or(0),
                segments_realtime: r
                    .get("segments")
                    .and_then(|s| s.get("realtime"))
                    .and_then(Json::as_u64)
                    .unwrap_or(0),
                segments_sealed: r
                    .get("segments")
                    .and_then(|s| s.get("sealed"))
                    .and_then(Json::as_u64)
                    .unwrap_or(0),
                trace,
            };
            // total_ns is derived; verify it matches the phases it claims
            // to summarize, so a hand-edited dump can't silently disagree.
            if num(r.get("total_ns"), "total_ns")? != rec.total().as_nanos() as u64 {
                return Err(bad("record \"total_ns\" does not equal the phase sum"));
            }
            records.push(rec);
        }
        Ok(FlightDump {
            capacity: num(doc.get("capacity"), "capacity")? as usize,
            dropped: num(doc.get("dropped"), "dropped")?,
            records,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(engine: &str, evaluate_ns: u64) -> QueryRecord {
        let mut stats = QueryStats::new();
        stats.phases.evaluate = Duration::from_nanos(evaluate_ns);
        stats.cache_hits = 1;
        QueryRecord::new(
            engine,
            "global_pipeline",
            "data query",
            3,
            1,
            &stats,
            None,
            false,
            None,
        )
    }

    #[test]
    fn digest_is_redacted_and_stable() {
        let d = query_digest("secret customer name");
        assert_eq!(d, query_digest("secret customer name"));
        assert_ne!(d, query_digest("secret customer names"));
        assert!(d.starts_with("3w:"));
        for word in ["secret", "customer", "name"] {
            assert!(!d.contains(word), "digest must not leak query text: {d}");
        }
    }

    #[test]
    fn ring_wraps_and_keeps_the_newest() {
        let rec = FlightRecorder::with_capacity(4);
        for i in 0..10u64 {
            let displaced = rec.append(record("relational", i));
            if i < 4 {
                assert!(displaced.is_none());
            } else {
                assert_eq!(displaced.unwrap().seq, i - 4);
            }
        }
        assert_eq!(rec.appended(), 10);
        assert_eq!(rec.dropped(), 6);
        assert_eq!(rec.len(), 4);
        let dump = rec.dump();
        let seqs: Vec<u64> = dump.records.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9]);
        assert_eq!(dump.dropped, 6);
    }

    #[test]
    fn dump_round_trips_through_json_exactly() {
        let rec = FlightRecorder::with_capacity(8);
        let mut stats = QueryStats::new();
        // above 2^53 ns: the exact-integer encoding must hold
        stats.phases.evaluate = Duration::from_nanos((1 << 60) + 17);
        stats.cache_misses = 1;
        let mut r = QueryRecord::new(
            "relational",
            "parallel_cn",
            "xml data",
            5,
            4,
            &stats,
            Some(TruncationReason::CandidateCapReached),
            true,
            Some(QueryTrace {
                label: "relational/parallel_cn \"xml data\"".into(),
                total: Duration::from_nanos((1 << 60) + 17),
                phases: vec![],
            }),
        )
        .with_generation(7, 1, 3);
        r.slow = true;
        rec.append(r);
        rec.append(record("xml", 420));
        let dump = rec.dump();
        let back = FlightDump::from_json(&dump.to_json()).unwrap();
        assert_eq!(back, dump);
        assert!(FlightDump::from_json("{}").is_err());
        assert!(FlightDump::from_json(r#"{"format":"kwdb-flightrec-v1"}"#).is_err());
    }

    #[test]
    fn cache_outcome_folds_from_stats() {
        assert_eq!(record("relational", 1).cache, CacheOutcome::Hit);
        let mut stats = QueryStats::new();
        stats.cache_misses = 1;
        let r = QueryRecord::new("relational", "spark", "q", 1, 1, &stats, None, false, None);
        assert_eq!(r.cache, CacheOutcome::Miss);
        let r2 = QueryRecord::new(
            "xml",
            "slca",
            "q",
            1,
            1,
            &QueryStats::new(),
            None,
            false,
            None,
        );
        assert_eq!(r2.cache, CacheOutcome::None);
        assert_eq!(r2.result_cache, CacheOutcome::None);

        // The two outcomes are independent: a result-cache hit leaves the
        // plan cache unconsulted, and vice versa.
        let mut stats = QueryStats::new();
        stats.result_cache_hits = 1;
        let hit = QueryRecord::new("relational", "spark", "q", 1, 1, &stats, None, false, None);
        assert_eq!(hit.cache, CacheOutcome::None);
        assert_eq!(hit.result_cache, CacheOutcome::Hit);
        let mut stats = QueryStats::new();
        stats.cache_misses = 1;
        stats.result_cache_misses = 1;
        let miss = QueryRecord::new("relational", "spark", "q", 1, 1, &stats, None, false, None);
        assert_eq!(miss.cache, CacheOutcome::Miss);
        assert_eq!(miss.result_cache, CacheOutcome::Miss);
    }

    #[test]
    fn old_dumps_without_result_cache_still_parse() {
        // A dump serialized before the result cache existed: the field is
        // absent and must default to None, not fail the parse.
        let rec = FlightRecorder::with_capacity(2);
        rec.append(record("relational", 10));
        let json = rec.dump().to_json();
        let legacy = json.replace(",\"result_cache\":\"none\"", "");
        assert!(
            !legacy.contains("result_cache"),
            "the test must actually strip the field"
        );
        let back = FlightDump::from_json(&legacy).unwrap();
        assert_eq!(back.records[0].result_cache, CacheOutcome::None);
        assert_eq!(back.records[0].cache, CacheOutcome::Hit);

        // An unknown value is still a parse error, not a silent default.
        let bad = json.replace("\"result_cache\":\"none\"", "\"result_cache\":\"bogus\"");
        assert!(FlightDump::from_json(&bad).is_err());
    }

    #[test]
    fn concurrent_appends_never_exceed_capacity() {
        let rec = std::sync::Arc::new(FlightRecorder::with_capacity(16));
        std::thread::scope(|scope| {
            for t in 0..8 {
                let rec = std::sync::Arc::clone(&rec);
                scope.spawn(move || {
                    for i in 0..200 {
                        rec.append(record("relational", (t * 1000 + i) as u64));
                    }
                });
            }
        });
        assert_eq!(rec.appended(), 1600);
        assert_eq!(rec.len(), 16);
        assert_eq!(rec.dropped(), 1600 - 16);
        let dump = rec.dump();
        assert_eq!(dump.records.len(), 16);
        // every retained record is from the final wrap window
        assert!(dump.records.iter().all(|r| r.seq >= 1600 - 16));
        // the globally latest record is always retained
        assert!(dump.records.iter().any(|r| r.seq == 1599));
    }
}
