//! Structured query traces: an `EXPLAIN ANALYZE`-style record of one query's
//! execution.
//!
//! A [`QueryTrace`] is a span tree — the query root, one span per pipeline
//! phase (parse → build → plan → evaluate), and inside each span the
//! operator events that matter for diagnosis: plan-cache outcomes, budget
//! verdicts, counter deltas. Engines build it through a [`TraceBuilder`]
//! attached to the request's [`TraceLevel`] knob:
//!
//! * [`TraceLevel::Off`] (the default) — the builder is a no-op holding no
//!   allocation; every call is a branch on a `None` and event closures are
//!   never invoked, so tracing costs nothing unless asked for.
//! * [`TraceLevel::Phases`] — phase spans with wall-clock timings.
//! * [`TraceLevel::Full`] — phases plus operator events and counter deltas.
//!
//! Render with [`QueryTrace::render_text`] for humans or
//! [`QueryTrace::to_json`] for tooling.

use crate::json::{Json, JsonError};
use std::time::{Duration, Instant};

/// How much tracing a request wants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum TraceLevel {
    /// No trace (zero overhead).
    #[default]
    Off,
    /// Phase spans with timings.
    Phases,
    /// Phase spans plus operator events.
    Full,
}

/// One event inside a phase span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Offset from query start.
    pub at: Duration,
    pub message: String,
    /// Structured key=value payload.
    pub fields: Vec<(String, String)>,
}

/// One pipeline phase of the traced query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseSpan {
    pub name: String,
    /// Offset from query start.
    pub start: Duration,
    pub duration: Duration,
    pub events: Vec<TraceEvent>,
}

/// The completed trace of one query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryTrace {
    /// `engine: "query"` — the root label.
    pub label: String,
    pub total: Duration,
    pub phases: Vec<PhaseSpan>,
}

impl QueryTrace {
    /// Render as an `EXPLAIN ANALYZE`-style tree:
    ///
    /// ```text
    /// Query relational "data query"  (total 1.532 ms)
    /// ├─ parse     12.1 µs
    /// ├─ plan     310.0 µs
    /// │    • plan cache [outcome=miss, cns=42]
    /// └─ evaluate   1.2 ms
    ///      • budget verdict [truncated=no]
    /// ```
    pub fn render_text(&self) -> String {
        let mut out = format!(
            "Query {}  (total {})\n",
            self.label,
            fmt_duration(self.total)
        );
        for (i, phase) in self.phases.iter().enumerate() {
            let last = i + 1 == self.phases.len();
            let branch = if last { "└─" } else { "├─" };
            let cont = if last { "  " } else { "│ " };
            out.push_str(&format!(
                "{branch} {:<10} {:>10}\n",
                phase.name,
                fmt_duration(phase.duration)
            ));
            for ev in &phase.events {
                let fields = if ev.fields.is_empty() {
                    String::new()
                } else {
                    format!(
                        " [{}]",
                        ev.fields
                            .iter()
                            .map(|(k, v)| format!("{k}={v}"))
                            .collect::<Vec<_>>()
                            .join(", ")
                    )
                };
                out.push_str(&format!("{cont}   • {}{fields}\n", ev.message));
            }
        }
        out
    }

    /// The trace as a JSON document (stable schema: label, total_ns,
    /// phases[{name, start_ns, duration_ns, events[{at_ns, message,
    /// fields{}}]}]). All `*_ns` fields are exact integers — `f64` would
    /// silently round durations above 2^53 ns.
    pub fn to_json(&self) -> String {
        self.to_json_value().to_string_compact()
    }

    /// [`to_json`](Self::to_json) as a [`Json`] value, for embedding the
    /// trace inside a larger document (the flight-recorder dump).
    pub fn to_json_value(&self) -> Json {
        let ns = |d: Duration| Json::Int(d.as_nanos() as i128);
        let phases = self
            .phases
            .iter()
            .map(|p| {
                let events = p
                    .events
                    .iter()
                    .map(|e| {
                        Json::Obj(vec![
                            ("at_ns".into(), ns(e.at)),
                            ("message".into(), Json::Str(e.message.clone())),
                            (
                                "fields".into(),
                                Json::Obj(
                                    e.fields
                                        .iter()
                                        .map(|(k, v)| (k.clone(), Json::Str(v.clone())))
                                        .collect(),
                                ),
                            ),
                        ])
                    })
                    .collect();
                Json::Obj(vec![
                    ("name".into(), Json::Str(p.name.clone())),
                    ("start_ns".into(), ns(p.start)),
                    ("duration_ns".into(), ns(p.duration)),
                    ("events".into(), Json::Arr(events)),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("label".into(), Json::Str(self.label.clone())),
            ("total_ns".into(), ns(self.total)),
            ("phases".into(), Json::Arr(phases)),
        ])
    }

    /// Parse a trace serialized by [`to_json`](Self::to_json).
    pub fn from_json(input: &str) -> Result<QueryTrace, JsonError> {
        Self::from_json_value(&Json::parse(input)?)
    }

    /// Parse a trace from an already-parsed [`Json`] value.
    pub fn from_json_value(doc: &Json) -> Result<QueryTrace, JsonError> {
        let bad = |message: &str| JsonError {
            offset: 0,
            message: message.to_string(),
        };
        let ns = |v: Option<&Json>, what: &str| {
            v.and_then(Json::as_u64)
                .map(Duration::from_nanos)
                .ok_or_else(|| bad(&format!("trace missing u64 \"{what}\"")))
        };
        let label = doc
            .get("label")
            .and_then(Json::as_str)
            .ok_or_else(|| bad("trace missing \"label\""))?
            .to_string();
        let total = ns(doc.get("total_ns"), "total_ns")?;
        let mut phases = Vec::new();
        for p in doc
            .get("phases")
            .and_then(Json::as_arr)
            .ok_or_else(|| bad("trace missing \"phases\" array"))?
        {
            let mut events = Vec::new();
            for e in p
                .get("events")
                .and_then(Json::as_arr)
                .ok_or_else(|| bad("phase missing \"events\" array"))?
            {
                let fields = match e.get("fields") {
                    Some(Json::Obj(pairs)) => pairs
                        .iter()
                        .map(|(k, v)| {
                            v.as_str()
                                .map(|s| (k.clone(), s.to_string()))
                                .ok_or_else(|| bad("event field value must be a string"))
                        })
                        .collect::<Result<Vec<_>, _>>()?,
                    _ => return Err(bad("event missing \"fields\" object")),
                };
                events.push(TraceEvent {
                    at: ns(e.get("at_ns"), "at_ns")?,
                    message: e
                        .get("message")
                        .and_then(Json::as_str)
                        .ok_or_else(|| bad("event missing \"message\""))?
                        .to_string(),
                    fields,
                });
            }
            phases.push(PhaseSpan {
                name: p
                    .get("name")
                    .and_then(Json::as_str)
                    .ok_or_else(|| bad("phase missing \"name\""))?
                    .to_string(),
                start: ns(p.get("start_ns"), "start_ns")?,
                duration: ns(p.get("duration_ns"), "duration_ns")?,
                events,
            });
        }
        Ok(QueryTrace {
            label,
            total,
            phases,
        })
    }

    /// Prepend a synthetic span of `duration` named `name` at offset zero,
    /// shifting every existing phase (and its events) later by `duration`
    /// and growing the total to match. The dispatcher uses this to splice
    /// queue wait in front of the engine-side trace, so the rendered
    /// timeline shows where a request sat before a worker picked it up.
    pub fn prepend_span(&mut self, name: &str, duration: Duration) {
        for p in &mut self.phases {
            p.start += duration;
            for e in &mut p.events {
                e.at += duration;
            }
        }
        self.phases.insert(
            0,
            PhaseSpan {
                name: name.to_string(),
                start: Duration::ZERO,
                duration,
                events: Vec::new(),
            },
        );
        self.total += duration;
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

struct BuilderInner {
    level: TraceLevel,
    label: String,
    start: Instant,
    phases: Vec<PhaseSpan>,
    /// Name and start offset of the currently open phase.
    open: Option<(String, Duration)>,
    open_events: Vec<TraceEvent>,
}

/// Incrementally builds a [`QueryTrace`] along an engine's linear pipeline.
///
/// Constructed with [`TraceLevel::Off`] it holds nothing and does nothing —
/// the `Option` is `None`, every method is one branch.
pub struct TraceBuilder(Option<BuilderInner>);

impl TraceBuilder {
    pub fn new(level: TraceLevel, label: impl Into<String>) -> Self {
        match level {
            TraceLevel::Off => TraceBuilder(None),
            _ => TraceBuilder(Some(BuilderInner {
                level,
                label: label.into(),
                start: Instant::now(),
                phases: Vec::new(),
                open: None,
                open_events: Vec::new(),
            })),
        }
    }

    /// A disabled builder (same as `new(TraceLevel::Off, ..)`).
    pub fn off() -> Self {
        TraceBuilder(None)
    }

    /// Whether anything is being recorded at all.
    pub fn enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Close the open phase (if any) and open a new one named `name`.
    pub fn phase(&mut self, name: &str) {
        let Some(inner) = &mut self.0 else { return };
        let now = inner.start.elapsed();
        Self::close_open(inner, now);
        inner.open = Some((name.to_string(), now));
    }

    /// Record an event in the open phase. `fields` is only invoked at
    /// [`TraceLevel::Full`], so building the payload costs nothing below it.
    pub fn event<F>(&mut self, message: &str, fields: F)
    where
        F: FnOnce() -> Vec<(String, String)>,
    {
        let Some(inner) = &mut self.0 else { return };
        if inner.level < TraceLevel::Full {
            return;
        }
        inner.open_events.push(TraceEvent {
            at: inner.start.elapsed(),
            message: message.to_string(),
            fields: fields(),
        });
    }

    /// Close the open phase and produce the trace (`None` when disabled).
    pub fn finish(mut self) -> Option<QueryTrace> {
        let mut inner = self.0.take()?;
        let now = inner.start.elapsed();
        Self::close_open(&mut inner, now);
        Some(QueryTrace {
            label: inner.label,
            total: now,
            phases: inner.phases,
        })
    }

    fn close_open(inner: &mut BuilderInner, now: Duration) {
        if let Some((name, started)) = inner.open.take() {
            inner.phases.push(PhaseSpan {
                name,
                start: started,
                duration: now.saturating_sub(started),
                events: std::mem::take(&mut inner.open_events),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_builder_produces_nothing() {
        let mut tb = TraceBuilder::new(TraceLevel::Off, "x");
        assert!(!tb.enabled());
        tb.phase("parse");
        let mut called = false;
        tb.event("should not run", || {
            called = true;
            vec![]
        });
        assert!(!called, "event closure must not run when disabled");
        assert!(tb.finish().is_none());
    }

    #[test]
    fn phases_level_skips_events() {
        let mut tb = TraceBuilder::new(TraceLevel::Phases, "g: q");
        tb.phase("parse");
        let mut called = false;
        tb.event("skipped", || {
            called = true;
            vec![]
        });
        tb.phase("evaluate");
        let trace = tb.finish().unwrap();
        assert!(!called);
        assert_eq!(trace.phases.len(), 2);
        assert!(trace.phases.iter().all(|p| p.events.is_empty()));
        assert_eq!(trace.phases[0].name, "parse");
        assert_eq!(trace.phases[1].name, "evaluate");
    }

    #[test]
    fn full_trace_renders_text_and_json() {
        let mut tb = TraceBuilder::new(TraceLevel::Full, "relational: \"data query\"");
        tb.phase("parse");
        tb.phase("plan");
        tb.event("plan cache", || {
            vec![
                ("outcome".into(), "miss".into()),
                ("cns".into(), "42".into()),
            ]
        });
        tb.phase("evaluate");
        tb.event("budget verdict", || vec![("truncated".into(), "no".into())]);
        let trace = tb.finish().unwrap();

        let text = trace.render_text();
        assert!(text.starts_with("Query relational"));
        assert!(text.contains("├─ parse"));
        assert!(text.contains("└─ evaluate"));
        assert!(text.contains("plan cache [outcome=miss, cns=42]"));

        let json = crate::json::Json::parse(&trace.to_json()).unwrap();
        assert_eq!(
            json.get("label").unwrap().as_str(),
            Some("relational: \"data query\"")
        );
        let phases = json.get("phases").unwrap().as_arr().unwrap();
        assert_eq!(phases.len(), 3);
        assert_eq!(phases[1].get("name").unwrap().as_str(), Some("plan"));
        let events = phases[1].get("events").unwrap().as_arr().unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(
            events[0]
                .get("fields")
                .unwrap()
                .get("cns")
                .unwrap()
                .as_str(),
            Some("42")
        );
    }

    #[test]
    fn json_round_trips_exactly_above_2_pow_53_ns() {
        // ~292 years in nanoseconds: far above 2^53, where the old f64
        // encoding rounded. The schema must survive a round-trip exactly.
        let big = Duration::from_nanos(u64::MAX / 2);
        let trace = QueryTrace {
            label: "relational/global_pipeline \"data\"".into(),
            total: big + Duration::from_nanos(7),
            phases: vec![PhaseSpan {
                name: "evaluate".into(),
                start: Duration::from_nanos((1 << 53) + 1),
                duration: big,
                events: vec![TraceEvent {
                    at: Duration::from_nanos((1 << 60) + 3),
                    message: "budget verdict".into(),
                    fields: vec![("truncated".into(), "no".into())],
                }],
            }],
        };
        let back = QueryTrace::from_json(&trace.to_json()).unwrap();
        assert_eq!(back, trace);
        // and the wire format carries the exact digits, not a rounded f64
        assert!(trace.to_json().contains(&big.as_nanos().to_string()));
    }

    #[test]
    fn small_trace_round_trips_through_json() {
        let mut tb = TraceBuilder::new(TraceLevel::Full, "xml/slca \"q\"");
        tb.phase("parse");
        tb.phase("evaluate");
        tb.event("slca", || vec![("roots".into(), "4".into())]);
        let trace = tb.finish().unwrap();
        assert_eq!(QueryTrace::from_json(&trace.to_json()).unwrap(), trace);
        assert!(QueryTrace::from_json("{\"label\":\"x\"}").is_err());
    }

    #[test]
    fn prepend_span_shifts_phases_and_grows_total() {
        let mut tb = TraceBuilder::new(TraceLevel::Full, "x");
        tb.phase("parse");
        tb.event("keywords", Vec::new);
        tb.phase("evaluate");
        let mut trace = tb.finish().unwrap();
        let orig = trace.clone();
        let wait = Duration::from_micros(250);
        trace.prepend_span("queue_wait", wait);
        assert_eq!(trace.phases.len(), orig.phases.len() + 1);
        assert_eq!(trace.phases[0].name, "queue_wait");
        assert_eq!(trace.phases[0].start, Duration::ZERO);
        assert_eq!(trace.phases[0].duration, wait);
        assert_eq!(trace.total, orig.total + wait);
        for (shifted, o) in trace.phases[1..].iter().zip(&orig.phases) {
            assert_eq!(shifted.start, o.start + wait);
            assert_eq!(shifted.duration, o.duration);
            for (se, oe) in shifted.events.iter().zip(&o.events) {
                assert_eq!(se.at, oe.at + wait);
            }
        }
    }

    #[test]
    fn spans_nest_inside_total() {
        let mut tb = TraceBuilder::new(TraceLevel::Phases, "x");
        tb.phase("a");
        std::thread::sleep(Duration::from_millis(2));
        tb.phase("b");
        let t = tb.finish().unwrap();
        assert!(t.phases[0].duration >= Duration::from_millis(1));
        let end0 = t.phases[0].start + t.phases[0].duration;
        assert!(end0 <= t.total + Duration::from_micros(1));
        assert!(t.phases[1].start >= t.phases[0].start);
    }
}
