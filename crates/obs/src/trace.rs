//! Structured query traces: an `EXPLAIN ANALYZE`-style record of one query's
//! execution.
//!
//! A [`QueryTrace`] is a span tree — the query root, one span per pipeline
//! phase (parse → build → plan → evaluate), and inside each span the
//! operator events that matter for diagnosis: plan-cache outcomes, budget
//! verdicts, counter deltas. Engines build it through a [`TraceBuilder`]
//! attached to the request's [`TraceLevel`] knob:
//!
//! * [`TraceLevel::Off`] (the default) — the builder is a no-op holding no
//!   allocation; every call is a branch on a `None` and event closures are
//!   never invoked, so tracing costs nothing unless asked for.
//! * [`TraceLevel::Phases`] — phase spans with wall-clock timings.
//! * [`TraceLevel::Full`] — phases plus operator events and counter deltas.
//!
//! Render with [`QueryTrace::render_text`] for humans or
//! [`QueryTrace::to_json`] for tooling.

use crate::json::Json;
use std::time::{Duration, Instant};

/// How much tracing a request wants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum TraceLevel {
    /// No trace (zero overhead).
    #[default]
    Off,
    /// Phase spans with timings.
    Phases,
    /// Phase spans plus operator events.
    Full,
}

/// One event inside a phase span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Offset from query start.
    pub at: Duration,
    pub message: String,
    /// Structured key=value payload.
    pub fields: Vec<(String, String)>,
}

/// One pipeline phase of the traced query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseSpan {
    pub name: String,
    /// Offset from query start.
    pub start: Duration,
    pub duration: Duration,
    pub events: Vec<TraceEvent>,
}

/// The completed trace of one query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryTrace {
    /// `engine: "query"` — the root label.
    pub label: String,
    pub total: Duration,
    pub phases: Vec<PhaseSpan>,
}

impl QueryTrace {
    /// Render as an `EXPLAIN ANALYZE`-style tree:
    ///
    /// ```text
    /// Query relational "data query"  (total 1.532 ms)
    /// ├─ parse     12.1 µs
    /// ├─ plan     310.0 µs
    /// │    • plan cache [outcome=miss, cns=42]
    /// └─ evaluate   1.2 ms
    ///      • budget verdict [truncated=no]
    /// ```
    pub fn render_text(&self) -> String {
        let mut out = format!(
            "Query {}  (total {})\n",
            self.label,
            fmt_duration(self.total)
        );
        for (i, phase) in self.phases.iter().enumerate() {
            let last = i + 1 == self.phases.len();
            let branch = if last { "└─" } else { "├─" };
            let cont = if last { "  " } else { "│ " };
            out.push_str(&format!(
                "{branch} {:<10} {:>10}\n",
                phase.name,
                fmt_duration(phase.duration)
            ));
            for ev in &phase.events {
                let fields = if ev.fields.is_empty() {
                    String::new()
                } else {
                    format!(
                        " [{}]",
                        ev.fields
                            .iter()
                            .map(|(k, v)| format!("{k}={v}"))
                            .collect::<Vec<_>>()
                            .join(", ")
                    )
                };
                out.push_str(&format!("{cont}   • {}{fields}\n", ev.message));
            }
        }
        out
    }

    /// The trace as a JSON document (stable schema: label, total_ns,
    /// phases[{name, start_ns, duration_ns, events[{at_ns, message,
    /// fields{}}]}]).
    pub fn to_json(&self) -> String {
        let phases = self
            .phases
            .iter()
            .map(|p| {
                let events = p
                    .events
                    .iter()
                    .map(|e| {
                        Json::Obj(vec![
                            ("at_ns".into(), Json::Num(e.at.as_nanos() as f64)),
                            ("message".into(), Json::Str(e.message.clone())),
                            (
                                "fields".into(),
                                Json::Obj(
                                    e.fields
                                        .iter()
                                        .map(|(k, v)| (k.clone(), Json::Str(v.clone())))
                                        .collect(),
                                ),
                            ),
                        ])
                    })
                    .collect();
                Json::Obj(vec![
                    ("name".into(), Json::Str(p.name.clone())),
                    ("start_ns".into(), Json::Num(p.start.as_nanos() as f64)),
                    (
                        "duration_ns".into(),
                        Json::Num(p.duration.as_nanos() as f64),
                    ),
                    ("events".into(), Json::Arr(events)),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("label".into(), Json::Str(self.label.clone())),
            ("total_ns".into(), Json::Num(self.total.as_nanos() as f64)),
            ("phases".into(), Json::Arr(phases)),
        ])
        .to_string_compact()
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

struct BuilderInner {
    level: TraceLevel,
    label: String,
    start: Instant,
    phases: Vec<PhaseSpan>,
    /// Name and start offset of the currently open phase.
    open: Option<(String, Duration)>,
    open_events: Vec<TraceEvent>,
}

/// Incrementally builds a [`QueryTrace`] along an engine's linear pipeline.
///
/// Constructed with [`TraceLevel::Off`] it holds nothing and does nothing —
/// the `Option` is `None`, every method is one branch.
pub struct TraceBuilder(Option<BuilderInner>);

impl TraceBuilder {
    pub fn new(level: TraceLevel, label: impl Into<String>) -> Self {
        match level {
            TraceLevel::Off => TraceBuilder(None),
            _ => TraceBuilder(Some(BuilderInner {
                level,
                label: label.into(),
                start: Instant::now(),
                phases: Vec::new(),
                open: None,
                open_events: Vec::new(),
            })),
        }
    }

    /// A disabled builder (same as `new(TraceLevel::Off, ..)`).
    pub fn off() -> Self {
        TraceBuilder(None)
    }

    /// Whether anything is being recorded at all.
    pub fn enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Close the open phase (if any) and open a new one named `name`.
    pub fn phase(&mut self, name: &str) {
        let Some(inner) = &mut self.0 else { return };
        let now = inner.start.elapsed();
        Self::close_open(inner, now);
        inner.open = Some((name.to_string(), now));
    }

    /// Record an event in the open phase. `fields` is only invoked at
    /// [`TraceLevel::Full`], so building the payload costs nothing below it.
    pub fn event<F>(&mut self, message: &str, fields: F)
    where
        F: FnOnce() -> Vec<(String, String)>,
    {
        let Some(inner) = &mut self.0 else { return };
        if inner.level < TraceLevel::Full {
            return;
        }
        inner.open_events.push(TraceEvent {
            at: inner.start.elapsed(),
            message: message.to_string(),
            fields: fields(),
        });
    }

    /// Close the open phase and produce the trace (`None` when disabled).
    pub fn finish(mut self) -> Option<QueryTrace> {
        let mut inner = self.0.take()?;
        let now = inner.start.elapsed();
        Self::close_open(&mut inner, now);
        Some(QueryTrace {
            label: inner.label,
            total: now,
            phases: inner.phases,
        })
    }

    fn close_open(inner: &mut BuilderInner, now: Duration) {
        if let Some((name, started)) = inner.open.take() {
            inner.phases.push(PhaseSpan {
                name,
                start: started,
                duration: now.saturating_sub(started),
                events: std::mem::take(&mut inner.open_events),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_builder_produces_nothing() {
        let mut tb = TraceBuilder::new(TraceLevel::Off, "x");
        assert!(!tb.enabled());
        tb.phase("parse");
        let mut called = false;
        tb.event("should not run", || {
            called = true;
            vec![]
        });
        assert!(!called, "event closure must not run when disabled");
        assert!(tb.finish().is_none());
    }

    #[test]
    fn phases_level_skips_events() {
        let mut tb = TraceBuilder::new(TraceLevel::Phases, "g: q");
        tb.phase("parse");
        let mut called = false;
        tb.event("skipped", || {
            called = true;
            vec![]
        });
        tb.phase("evaluate");
        let trace = tb.finish().unwrap();
        assert!(!called);
        assert_eq!(trace.phases.len(), 2);
        assert!(trace.phases.iter().all(|p| p.events.is_empty()));
        assert_eq!(trace.phases[0].name, "parse");
        assert_eq!(trace.phases[1].name, "evaluate");
    }

    #[test]
    fn full_trace_renders_text_and_json() {
        let mut tb = TraceBuilder::new(TraceLevel::Full, "relational: \"data query\"");
        tb.phase("parse");
        tb.phase("plan");
        tb.event("plan cache", || {
            vec![
                ("outcome".into(), "miss".into()),
                ("cns".into(), "42".into()),
            ]
        });
        tb.phase("evaluate");
        tb.event("budget verdict", || vec![("truncated".into(), "no".into())]);
        let trace = tb.finish().unwrap();

        let text = trace.render_text();
        assert!(text.starts_with("Query relational"));
        assert!(text.contains("├─ parse"));
        assert!(text.contains("└─ evaluate"));
        assert!(text.contains("plan cache [outcome=miss, cns=42]"));

        let json = crate::json::Json::parse(&trace.to_json()).unwrap();
        assert_eq!(
            json.get("label").unwrap().as_str(),
            Some("relational: \"data query\"")
        );
        let phases = json.get("phases").unwrap().as_arr().unwrap();
        assert_eq!(phases.len(), 3);
        assert_eq!(phases[1].get("name").unwrap().as_str(), Some("plan"));
        let events = phases[1].get("events").unwrap().as_arr().unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(
            events[0]
                .get("fields")
                .unwrap()
                .get("cns")
                .unwrap()
                .as_str(),
            Some("42")
        );
    }

    #[test]
    fn spans_nest_inside_total() {
        let mut tb = TraceBuilder::new(TraceLevel::Phases, "x");
        tb.phase("a");
        std::thread::sleep(Duration::from_millis(2));
        tb.phase("b");
        let t = tb.finish().unwrap();
        assert!(t.phases[0].duration >= Duration::from_millis(1));
        let end0 = t.phases[0].start + t.phases[0].duration;
        assert!(end0 <= t.total + Duration::from_micros(1));
        assert!(t.phases[1].start >= t.phases[0].start);
    }
}
