//! Answer trees: the common result type of all graph search engines.

use kwdb_graph::{DataGraph, NodeId};
use std::collections::{BTreeSet, HashMap, HashSet};

/// A connecting tree: a root, the tree edges, and for each query keyword the
/// node that matched it. Cost is the total edge weight (group-Steiner cost).
#[derive(Debug, Clone)]
pub struct AnswerTree {
    pub root: NodeId,
    /// Tree edges as normalized `(min, max)` pairs.
    pub edges: Vec<(NodeId, NodeId)>,
    /// `matches[i]` is the node matching the `i`-th query keyword.
    pub matches: Vec<NodeId>,
    pub cost: f64,
}

impl AnswerTree {
    /// A single-node answer (one node matches every keyword).
    pub fn singleton(node: NodeId, n_keywords: usize) -> Self {
        AnswerTree {
            root: node,
            edges: Vec::new(),
            matches: vec![node; n_keywords],
            cost: 0.0,
        }
    }

    /// All nodes of the tree (root, internal, matches), sorted.
    pub fn nodes(&self) -> Vec<NodeId> {
        let mut s: BTreeSet<NodeId> = BTreeSet::new();
        s.insert(self.root);
        for &(u, v) in &self.edges {
            s.insert(u);
            s.insert(v);
        }
        for &m in &self.matches {
            s.insert(m);
        }
        s.into_iter().collect()
    }

    /// Number of nodes.
    pub fn size(&self) -> usize {
        self.nodes().len()
    }

    /// Canonical signature for duplicate elimination across engines: the
    /// sorted edge set plus the node set (two trees with identical structure
    /// are one answer even if discovered from different roots).
    pub fn signature(&self) -> Vec<(NodeId, NodeId)> {
        let mut e = self.edges.clone();
        e.sort();
        e
    }

    /// Signature of the keyword-match combination — the *distinct core* of
    /// the answer (Qin et al., ICDE 09).
    pub fn core_signature(&self) -> Vec<NodeId> {
        let mut m = self.matches.clone();
        m.sort();
        m.dedup();
        m
    }

    /// Validate against the graph and query: every edge exists, the edge set
    /// is a tree containing root and all matches, match `i` contains keyword
    /// `i`, and `cost` equals the sum of edge weights.
    pub fn validate<S: AsRef<str>>(&self, g: &DataGraph, keywords: &[S]) -> Result<(), String> {
        if self.matches.len() != keywords.len() {
            return Err(format!(
                "expected {} matches, got {}",
                keywords.len(),
                self.matches.len()
            ));
        }
        for (i, (m, k)) in self.matches.iter().zip(keywords).enumerate() {
            if !g.node_has_term(*m, k.as_ref()) {
                return Err(format!(
                    "match {i} ({m:?}) does not contain '{}'",
                    k.as_ref()
                ));
            }
        }
        let mut cost = 0.0;
        let mut adj: HashMap<NodeId, Vec<NodeId>> = HashMap::new();
        let mut seen_edges = HashSet::new();
        for &(u, v) in &self.edges {
            let w = g
                .edge_weight(u, v)
                .ok_or_else(|| format!("edge ({u:?},{v:?}) not in graph"))?;
            if !seen_edges.insert(if u < v { (u, v) } else { (v, u) }) {
                return Err(format!("duplicate edge ({u:?},{v:?})"));
            }
            cost += w;
            adj.entry(u).or_default().push(v);
            adj.entry(v).or_default().push(u);
        }
        if (cost - self.cost).abs() > 1e-6 {
            return Err(format!(
                "cost mismatch: stored {} computed {}",
                self.cost, cost
            ));
        }
        // Connectivity: everything reachable from root over tree edges.
        let mut reach = HashSet::new();
        let mut stack = vec![self.root];
        while let Some(u) = stack.pop() {
            if reach.insert(u) {
                for &v in adj.get(&u).into_iter().flatten() {
                    stack.push(v);
                }
            }
        }
        for &m in &self.matches {
            if !reach.contains(&m) {
                return Err(format!("match {m:?} not connected to root"));
            }
        }
        // Tree check: |edges| == |touched nodes| - 1 (no cycles).
        let touched: HashSet<NodeId> = self
            .edges
            .iter()
            .flat_map(|&(u, v)| [u, v])
            .chain(std::iter::once(self.root))
            .collect();
        if !self.edges.is_empty() && self.edges.len() != touched.len() - 1 {
            return Err(format!(
                "not a tree: {} edges over {} nodes",
                self.edges.len(),
                touched.len()
            ));
        }
        Ok(())
    }

    /// Render using a node formatter.
    pub fn display(&self, g: &DataGraph) -> String {
        let nodes: Vec<String> = self
            .nodes()
            .iter()
            .map(|&n| format!("{}#{}", g.kind(n), n.0))
            .collect();
        format!(
            "cost={:.2} root={} [{}]",
            self.cost,
            self.root.0,
            nodes.join(", ")
        )
    }
}

/// Normalize an edge to `(min, max)` order.
pub fn norm_edge(u: NodeId, v: NodeId) -> (NodeId, NodeId) {
    if u < v {
        (u, v)
    } else {
        (v, u)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tri() -> (DataGraph, Vec<NodeId>) {
        let mut g = DataGraph::new();
        let a = g.add_node("n", "alpha");
        let b = g.add_node("n", "beta");
        let c = g.add_node("n", "gamma");
        g.add_edge(a, b, 1.0);
        g.add_edge(b, c, 2.0);
        g.add_edge(a, c, 5.0);
        (g, vec![a, b, c])
    }

    #[test]
    fn valid_tree_passes() {
        let (g, ids) = tri();
        let t = AnswerTree {
            root: ids[1],
            edges: vec![(ids[0], ids[1]), (ids[1], ids[2])],
            matches: vec![ids[0], ids[2]],
            cost: 3.0,
        };
        assert!(t.validate(&g, &["alpha", "gamma"]).is_ok());
        assert_eq!(t.size(), 3);
    }

    #[test]
    fn singleton_is_valid() {
        let (g, ids) = tri();
        let t = AnswerTree::singleton(ids[0], 1);
        assert!(t.validate(&g, &["alpha"]).is_ok());
        assert_eq!(t.size(), 1);
        assert_eq!(t.cost, 0.0);
    }

    #[test]
    fn wrong_match_keyword_fails() {
        let (g, ids) = tri();
        let t = AnswerTree::singleton(ids[0], 1);
        assert!(t.validate(&g, &["beta"]).is_err());
    }

    #[test]
    fn disconnected_match_fails() {
        let (g, ids) = tri();
        let t = AnswerTree {
            root: ids[0],
            edges: vec![],
            matches: vec![ids[0], ids[2]],
            cost: 0.0,
        };
        assert!(t.validate(&g, &["alpha", "gamma"]).is_err());
    }

    #[test]
    fn cycle_fails_tree_check() {
        let (g, ids) = tri();
        let t = AnswerTree {
            root: ids[0],
            edges: vec![(ids[0], ids[1]), (ids[1], ids[2]), (ids[0], ids[2])],
            matches: vec![ids[0], ids[2]],
            cost: 8.0,
        };
        assert!(t.validate(&g, &["alpha", "gamma"]).is_err());
    }

    #[test]
    fn cost_mismatch_fails() {
        let (g, ids) = tri();
        let t = AnswerTree {
            root: ids[0],
            edges: vec![(ids[0], ids[1])],
            matches: vec![ids[0], ids[1]],
            cost: 9.0,
        };
        assert!(t.validate(&g, &["alpha", "beta"]).is_err());
    }

    #[test]
    fn signatures_are_order_insensitive() {
        let (_, ids) = tri();
        let t1 = AnswerTree {
            root: ids[0],
            edges: vec![(ids[1], ids[2]), (ids[0], ids[1])],
            matches: vec![ids[0], ids[2]],
            cost: 3.0,
        };
        let t2 = AnswerTree {
            root: ids[2],
            edges: vec![(ids[0], ids[1]), (ids[1], ids[2])],
            matches: vec![ids[2], ids[0]],
            cost: 3.0,
        };
        assert_eq!(t1.signature(), t2.signature());
        assert_eq!(t1.core_signature(), t2.core_signature());
    }
}
