//! BLINKS: distinct-root top-k via a node→keyword index and Fagin's
//! threshold algorithm (He et al., SIGMOD 07) — tutorial slide 123.
//!
//! Under distinct-root semantics an answer is a root `r` with cost
//! `Σᵢ dist(r, Sᵢ)`. With the [`NodeKeywordIndex`] giving, per keyword, a
//! distance-sorted node list (sorted access) and `dist(r, k)` lookups
//! (random access), top-k roots fall out of the classic TA loop:
//! round-robin the sorted lists, complete each discovered root by random
//! access, and stop once the k-th best cost is below the threshold
//! `Σᵢ d̄ᵢ` of current sorted-access depths — every unseen root must cost at
//! least that. This is the single-level ("SLINKS") layout; the bi-level
//! BLINKS partitioning is available as
//! [`kwdb_graph::blocks::BlockPartition`] and changes index layout, not the
//! TA logic.

use crate::answer::{norm_edge, AnswerTree};
use crate::TraversalStats;
use kwdb_common::topk::TopK;
use kwdb_common::{Budget, TruncationReason};
use kwdb_graph::shortest::dijkstra;
use kwdb_graph::{DataGraph, NodeId, NodeKeywordIndex};
use std::collections::HashSet;

/// The BLINKS engine. The index is caller-owned ([`Self::build_index`] /
/// [`Self::build_full_index`]) so repeated queries over the same graph
/// amortize construction; the engine itself is stateless — `search` takes
/// `&self` and per-query access counters come back in a [`TraversalStats`],
/// so one engine can serve many queries, concurrently.
#[derive(Debug)]
pub struct Blinks<'g> {
    g: &'g DataGraph,
}

impl<'g> Blinks<'g> {
    pub fn new(g: &'g DataGraph) -> Self {
        Blinks { g }
    }

    /// Build the node→keyword index for `keywords` (callers may cache it).
    pub fn build_index<S: AsRef<str>>(&self, keywords: &[S]) -> NodeKeywordIndex {
        NodeKeywordIndex::build(self.g, keywords, None)
    }

    /// Build the index over the graph's *entire* vocabulary, so one index
    /// serves every query against this graph (what the unified engine
    /// caches).
    pub fn build_full_index(&self) -> NodeKeywordIndex {
        let vocab: Vec<&str> = self.g.vocabulary().collect();
        NodeKeywordIndex::build(self.g, &vocab, None)
    }

    /// Top-k distinct-root answers, best first.
    pub fn search<S: AsRef<str>>(
        &self,
        index: &NodeKeywordIndex,
        keywords: &[S],
        k: usize,
    ) -> Vec<AnswerTree> {
        self.search_budgeted(index, keywords, k, &Budget::unlimited())
            .0
    }

    /// [`Self::search`] under an execution [`Budget`]: every sorted access
    /// counts as one candidate; an exhausted budget returns the (cost-sorted)
    /// answers found so far plus the [`TruncationReason`] that ended the
    /// round-robin. The third element counts this query's sorted/random
    /// index accesses.
    pub fn search_budgeted<S: AsRef<str>>(
        &self,
        index: &NodeKeywordIndex,
        keywords: &[S],
        k: usize,
        budget: &Budget,
    ) -> (Vec<AnswerTree>, Option<TruncationReason>, TraversalStats) {
        let mut stats = TraversalStats::default();
        let l = keywords.len();
        let mut truncation = None;
        if l == 0 || k == 0 {
            return (Vec::new(), truncation, stats);
        }
        // One dictionary lookup per keyword; the TA loop below probes dense
        // ids only. A keyword absent from the index has no matches, so AND
        // semantics make the answer empty.
        let Some(syms) = keywords
            .iter()
            .map(|kw| index.sym(kw.as_ref()))
            .collect::<Option<Vec<_>>>()
        else {
            return (Vec::new(), truncation, stats);
        };
        let lists: Vec<&[(NodeId, f64)]> = syms.iter().map(|&s| index.sorted_list_sym(s)).collect();
        if lists.iter().any(|lst| lst.is_empty()) {
            return (Vec::new(), truncation, stats);
        }
        let mut cursors = vec![0usize; l];
        let mut seen: HashSet<NodeId> = HashSet::new();
        let mut topk: TopK<NodeId> = TopK::new(k);

        'ta: loop {
            let mut any = false;
            for (i, list) in lists.iter().enumerate() {
                if let Some(reason) = budget.truncation_at(stats.sorted_accesses as u64) {
                    truncation = Some(reason);
                    break 'ta;
                }
                let Some(&(node, _)) = list.get(cursors[i]) else {
                    continue;
                };
                cursors[i] += 1;
                stats.sorted_accesses += 1;
                any = true;
                if seen.insert(node) {
                    // random access: complete the root's score
                    let mut total = 0.0;
                    let mut complete = true;
                    for &sym in &syms {
                        stats.random_accesses += 1;
                        match index.dist_sym(node, sym) {
                            Some(d) => total += d,
                            None => {
                                complete = false;
                                break;
                            }
                        }
                    }
                    if complete {
                        topk.push(-total, node);
                    }
                }
                // threshold check after each sorted access
                if topk.is_full() {
                    let threshold: f64 = lists
                        .iter()
                        .zip(&cursors)
                        .map(|(lst, &c)| {
                            // last value read on this list (lists are ascending)
                            lst.get(c.saturating_sub(1)).map(|&(_, d)| d).unwrap_or(0.0)
                        })
                        .sum();
                    let kth_cost = -topk.threshold().expect("full");
                    if kth_cost <= threshold {
                        break 'ta;
                    }
                }
            }
            if !any {
                break;
            }
        }

        let trees = topk
            .into_sorted_vec()
            .into_iter()
            .map(|(neg, root)| self.build_tree(index, &syms, root, -neg))
            .collect();
        (trees, truncation, stats)
    }

    /// Materialize a root's answer tree: shortest paths to each keyword's
    /// nearest match.
    fn build_tree(
        &self,
        index: &NodeKeywordIndex,
        syms: &[kwdb_common::intern::Sym],
        root: NodeId,
        _rank_cost: f64,
    ) -> AnswerTree {
        let mut edges = Vec::new();
        let mut matches = Vec::with_capacity(syms.len());
        for &sym in syms {
            let m = index.nearest_match_sym(root, sym).expect("complete root");
            matches.push(m);
            if m != root {
                let sp = dijkstra(self.g, root, Some(m), None, &|_| false);
                let path = sp.path_to(m).expect("indexed distance implies a path");
                for w in path.windows(2) {
                    edges.push(norm_edge(w[0], w[1]));
                }
            }
        }
        edges.sort();
        edges.dedup();
        let (tree_edges, cost) = crate::banks1::prune_to_tree_pub(self.g, root, &edges, &matches);
        AnswerTree {
            root,
            edges: tree_edges,
            matches,
            cost,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn slide30() -> DataGraph {
        let mut g = DataGraph::new();
        let a = g.add_node("n", "k1");
        let b = g.add_node("n", "");
        let c = g.add_node("n", "k2");
        let d = g.add_node("n", "k3");
        let e = g.add_node("n", "k1");
        g.add_edge(a, b, 5.0);
        g.add_edge(b, c, 2.0);
        g.add_edge(b, d, 3.0);
        g.add_edge(a, c, 6.0);
        g.add_edge(a, d, 7.0);
        g.add_edge(e, b, 10.0);
        g.add_edge(e, c, 11.0);
        g
    }

    #[test]
    fn top1_matches_best_distinct_root() {
        let g = slide30();
        let kws = ["k1", "k2", "k3"];
        let bl = Blinks::new(&g);
        let ix = bl.build_index(&kws);
        let res = bl.search(&ix, &kws, 1);
        assert_eq!(res.len(), 1);
        // b is the best distinct root (5 + 2 + 3 = 10)
        assert_eq!(res[0].cost, 10.0);
        res[0].validate(&g, &kws).unwrap();
    }

    #[test]
    fn topk_agrees_with_exhaustive_scan() {
        let g = slide30();
        let kws = ["k1", "k2"];
        let bl = Blinks::new(&g);
        let ix = bl.build_index(&kws);
        let res = bl.search(&ix, &kws, 3);
        // exhaustive: score every node by sum of index distances
        let mut all: Vec<(f64, NodeId)> = g
            .iter()
            .filter_map(|n| {
                let d1 = ix.dist(n, "k1")?;
                let d2 = ix.dist(n, "k2")?;
                Some((d1 + d2, n))
            })
            .collect();
        all.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
        let ta_costs: Vec<f64> = res
            .iter()
            .map(|t| ix.dist(t.root, "k1").unwrap() + ix.dist(t.root, "k2").unwrap())
            .collect();
        let best: Vec<f64> = all.iter().take(3).map(|&(c, _)| c).collect();
        assert_eq!(ta_costs, best);
    }

    #[test]
    fn ta_stops_before_exhausting_lists() {
        // Long path: early stop should not read everything.
        let mut g = DataGraph::new();
        let first = g.add_node("n", "x y");
        let mut prev = first;
        for i in 0..50 {
            let n = g.add_node("n", &format!("f{i}"));
            g.add_edge(prev, n, 1.0);
            prev = n;
        }
        let kws = ["x", "y"];
        let bl = Blinks::new(&g);
        let ix = bl.build_index(&kws);
        let (res, _, stats) = bl.search_budgeted(&ix, &kws, 1, &Budget::unlimited());
        assert_eq!(res[0].cost, 0.0);
        assert!(
            stats.sorted_accesses < 20,
            "TA should stop early, did {} accesses",
            stats.sorted_accesses
        );
    }

    #[test]
    fn missing_keyword_is_empty() {
        let g = slide30();
        let kws = ["k1", "none"];
        let bl = Blinks::new(&g);
        let ix = bl.build_index(&kws);
        assert!(bl.search(&ix, &kws, 2).is_empty());
    }
}
