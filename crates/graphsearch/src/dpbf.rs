//! DPBF: exact (group) Steiner tree search by dynamic programming
//! (Ding et al., *Finding top-k min-cost connected trees in databases*,
//! ICDE 07) — tutorial slide 113.
//!
//! State `(v, S)` is the minimum-cost tree rooted at `v` covering the keyword
//! subset `S` (a bitmask). Two transitions:
//!
//! * **grow**: attach edge `(v, u)` — `T(u, S) ≤ T(v, S) + w(v,u)`;
//! * **merge**: combine two trees at the same root —
//!   `T(v, S₁ ∪ S₂) ≤ T(v, S₁) + T(v, S₂)` for disjoint `S₁, S₂`.
//!
//! Processed best-first (a Dijkstra over states) this yields the exact
//! optimum: the first full-coverage state popped is the top-1 group Steiner
//! tree. Continuing to pop full states yields the top-k *distinct-root*
//! trees in cost order. Complexity `O(3^k·n + 2^k·(n log n + m))`; the
//! keyword count is capped at 16.

use crate::answer::{norm_edge, AnswerTree};
use crate::TraversalStats;
use kwdb_common::{Budget, Score, TruncationReason};
use kwdb_graph::{DataGraph, NodeId};
use std::collections::{BinaryHeap, HashMap};

/// How a state's tree was derived, for reconstruction.
#[derive(Debug, Clone, Copy)]
enum Parent {
    /// Initial state: a keyword match node by itself.
    Leaf,
    /// Grown over an edge from `(from, mask)`.
    Grow { from: NodeId },
    /// Merge of `(v, m1)` and `(v, m2)`.
    Merge { m1: u32, m2: u32 },
}

/// The DPBF search engine. Stateless — `search` takes `&self` and the
/// per-query work counter (states popped) comes back in a
/// [`TraversalStats`], so one engine can serve concurrent queries.
#[derive(Debug)]
pub struct Dpbf<'g> {
    g: &'g DataGraph,
}

impl<'g> Dpbf<'g> {
    pub fn new(g: &'g DataGraph) -> Self {
        Dpbf { g }
    }

    /// Top-k minimum-cost connecting trees (distinct roots), best first.
    /// Keywords with no matches make the result empty (AND semantics).
    pub fn search<S: AsRef<str>>(&self, keywords: &[S], k: usize) -> Vec<AnswerTree> {
        self.search_budgeted(keywords, k, &Budget::unlimited()).0
    }

    /// [`Self::search`] under an execution [`Budget`]: every DP state popped
    /// counts as one candidate; an exhausted budget returns the (cost-sorted)
    /// full-coverage trees found so far plus the [`TruncationReason`] that
    /// stopped the expansion. The third element reports this query's work in
    /// `states_popped`.
    pub fn search_budgeted<S: AsRef<str>>(
        &self,
        keywords: &[S],
        k: usize,
        budget: &Budget,
    ) -> (Vec<AnswerTree>, Option<TruncationReason>, TraversalStats) {
        let mut stats = TraversalStats::default();
        let l = keywords.len();
        assert!(l <= 16, "DPBF supports at most 16 keywords");
        let mut truncation = None;
        if l == 0 || k == 0 {
            return (Vec::new(), truncation, stats);
        }
        let full: u32 = (1 << l) - 1;
        // cost[(v, mask)] and parent pointers
        let mut cost: HashMap<(NodeId, u32), f64> = HashMap::new();
        let mut parent: HashMap<(NodeId, u32), Parent> = HashMap::new();
        let mut heap: BinaryHeap<std::cmp::Reverse<(Score, NodeId, u32)>> = BinaryHeap::new();
        // Per-node settled masks, for merge transitions.
        let mut settled: HashMap<NodeId, Vec<u32>> = HashMap::new();

        for (i, kw) in keywords.iter().enumerate() {
            let group = self.g.keyword_nodes(kw.as_ref());
            if group.is_empty() {
                return (Vec::new(), truncation, stats);
            }
            for v in group.iter() {
                let key = (v, 1 << i);
                // A node may match several keywords; each gets its own
                // initial state (merging will combine them at cost 0).
                if cost.get(&key).is_none_or(|&c| c > 0.0) {
                    cost.insert(key, 0.0);
                    parent.insert(key, Parent::Leaf);
                    heap.push(std::cmp::Reverse((Score(0.0), v, 1 << i)));
                }
            }
        }

        let mut results: Vec<AnswerTree> = Vec::new();
        let mut roots_seen: std::collections::HashSet<NodeId> = std::collections::HashSet::new();
        let mut popped: u64 = 0;

        while let Some(std::cmp::Reverse((Score(c), v, mask))) = heap.pop() {
            if cost.get(&(v, mask)).is_some_and(|&best| c > best) {
                continue; // stale
            }
            if let Some(reason) = budget.truncation_at(popped) {
                truncation = Some(reason);
                break;
            }
            popped += 1;
            stats.states_popped += 1;
            if mask == full {
                if roots_seen.insert(v) {
                    let tree = self.reconstruct(v, mask, &parent, keywords.len(), c);
                    results.push(tree);
                    if results.len() >= k {
                        break;
                    }
                }
                continue;
            }
            // merge with previously settled disjoint masks at v
            let masks_at_v = settled.entry(v).or_default().clone();
            for m2 in masks_at_v {
                if m2 & mask != 0 {
                    continue;
                }
                let nm = mask | m2;
                let nc = c + cost[&(v, m2)];
                if cost.get(&(v, nm)).is_none_or(|&cur| nc < cur) {
                    cost.insert((v, nm), nc);
                    parent.insert((v, nm), Parent::Merge { m1: mask, m2 });
                    heap.push(std::cmp::Reverse((Score(nc), v, nm)));
                }
            }
            settled.get_mut(&v).expect("inserted above").push(mask);
            // grow over edges
            for &(u, w) in self.g.neighbors(v) {
                let nc = c + w;
                if cost.get(&(u, mask)).is_none_or(|&cur| nc < cur) {
                    cost.insert((u, mask), nc);
                    parent.insert((u, mask), Parent::Grow { from: v });
                    heap.push(std::cmp::Reverse((Score(nc), u, mask)));
                }
            }
        }
        (results, truncation, stats)
    }

    /// Rebuild the tree edges and keyword matches from parent pointers.
    fn reconstruct(
        &self,
        root: NodeId,
        mask: u32,
        parent: &HashMap<(NodeId, u32), Parent>,
        n_keywords: usize,
        cost: f64,
    ) -> AnswerTree {
        let mut edges = Vec::new();
        let mut matches: Vec<Option<NodeId>> = vec![None; n_keywords];
        let mut stack = vec![(root, mask)];
        while let Some((v, m)) = stack.pop() {
            match parent.get(&(v, m)).copied().unwrap_or(Parent::Leaf) {
                Parent::Leaf => {
                    // v matches every keyword in m
                    for (i, slot) in matches.iter_mut().enumerate() {
                        if m & (1 << i) != 0 && slot.is_none() {
                            *slot = Some(v);
                        }
                    }
                }
                Parent::Grow { from } => {
                    edges.push(norm_edge(v, from));
                    stack.push((from, m));
                }
                Parent::Merge { m1, m2 } => {
                    stack.push((v, m1));
                    stack.push((v, m2));
                }
            }
        }
        edges.sort();
        edges.dedup();
        AnswerTree {
            root,
            edges,
            matches: matches
                .into_iter()
                .map(|m| m.expect("all keywords covered"))
                .collect(),
            cost,
        }
    }
}

/// Brute-force optimal group Steiner cost for cross-checking (exponential;
/// test-sized graphs only): tries every node subset, checking it induces a
/// connected subgraph covering all groups, and returns the minimum spanning
/// cost.
pub fn brute_force_gst_cost<S: AsRef<str>>(g: &DataGraph, keywords: &[S]) -> Option<f64> {
    let n = g.node_count();
    assert!(n <= 16, "brute force is for tiny graphs");
    let groups: Vec<_> = keywords
        .iter()
        .map(|k| g.keyword_nodes(k.as_ref()))
        .collect();
    if groups.iter().any(|g| g.is_empty()) {
        return None;
    }
    let mut best: Option<f64> = None;
    for subset in 1u32..(1 << n) {
        let nodes: Vec<NodeId> = (0..n as u32)
            .filter(|i| subset & (1 << i) != 0)
            .map(NodeId)
            .collect();
        // must cover every group
        if !groups
            .iter()
            .all(|grp| grp.iter().any(|m| nodes.contains(&m)))
        {
            continue;
        }
        // minimum spanning tree over the induced subgraph (Prim), must span
        if let Some(c) = induced_mst_cost(g, &nodes) {
            if best.is_none_or(|b| c < b) {
                best = Some(c);
            }
        }
    }
    best
}

fn induced_mst_cost(g: &DataGraph, nodes: &[NodeId]) -> Option<f64> {
    if nodes.is_empty() {
        return None;
    }
    let set: std::collections::HashSet<NodeId> = nodes.iter().copied().collect();
    let mut in_tree = std::collections::HashSet::new();
    in_tree.insert(nodes[0]);
    let mut cost = 0.0;
    while in_tree.len() < nodes.len() {
        let mut best: Option<(f64, NodeId)> = None;
        for &u in &in_tree {
            for &(v, w) in g.neighbors(u) {
                if set.contains(&v) && !in_tree.contains(&v) && best.is_none_or(|(bw, _)| w < bw) {
                    best = Some((w, v));
                }
            }
        }
        let (w, v) = best?;
        cost += w;
        in_tree.insert(v);
    }
    Some(cost)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kwdb_common::Rng;

    /// The exact graph from tutorial slide 30: nodes a,b,c,d,e; keyword
    /// groups k1={a,e}, k2={c}, k3={d}; weights a-b=5, b-c=2, b-d=3, a-c=6,
    /// a-d=7, e-?=10/11 (e is an expensive alternative for k1).
    fn slide30() -> (DataGraph, Vec<NodeId>) {
        let mut g = DataGraph::new();
        let a = g.add_node("n", "k1");
        let b = g.add_node("n", "");
        let c = g.add_node("n", "k2");
        let d = g.add_node("n", "k3");
        let e = g.add_node("n", "k1");
        g.add_edge(a, b, 5.0);
        g.add_edge(b, c, 2.0);
        g.add_edge(b, d, 3.0);
        g.add_edge(a, c, 6.0);
        g.add_edge(a, d, 7.0);
        g.add_edge(e, b, 10.0);
        g.add_edge(e, c, 11.0);
        (g, vec![a, b, c, d, e])
    }

    #[test]
    fn slide30_top1_is_a_b_c_d() {
        let (g, ids) = slide30();
        let dpbf = Dpbf::new(&g);
        let res = dpbf.search(&["k1", "k2", "k3"], 1);
        assert_eq!(res.len(), 1);
        let t = &res[0];
        // a(b(c,d)): edges ab(5) + bc(2) + bd(3) = 10 beats a(c,d): 6+7=13
        assert_eq!(t.cost, 10.0);
        assert!(t.validate(&g, &["k1", "k2", "k3"]).is_ok());
        let nodes = t.nodes();
        assert!(nodes.contains(&ids[0]) && nodes.contains(&ids[1]));
        assert!(
            !nodes.contains(&ids[4]),
            "expensive k1 match e must not appear"
        );
    }

    #[test]
    fn top_k_returns_increasing_costs() {
        let (g, _) = slide30();
        let dpbf = Dpbf::new(&g);
        let res = dpbf.search(&["k1", "k2", "k3"], 3);
        assert!(res.len() >= 2);
        for w in res.windows(2) {
            assert!(w[0].cost <= w[1].cost);
        }
        for t in &res {
            assert!(t.validate(&g, &["k1", "k2", "k3"]).is_ok());
        }
    }

    #[test]
    fn single_node_covering_all_keywords() {
        let mut g = DataGraph::new();
        let a = g.add_node("n", "x y");
        let b = g.add_node("n", "x");
        g.add_edge(a, b, 1.0);
        let dpbf = Dpbf::new(&g);
        let res = dpbf.search(&["x", "y"], 1);
        assert_eq!(res[0].cost, 0.0);
        assert_eq!(res[0].root, a);
        assert_eq!(res[0].size(), 1);
    }

    #[test]
    fn missing_keyword_returns_empty() {
        let (g, _) = slide30();
        let dpbf = Dpbf::new(&g);
        assert!(dpbf.search(&["k1", "zzz"], 3).is_empty());
        assert!(dpbf.search::<&str>(&[], 3).is_empty());
    }

    #[test]
    fn matches_brute_force_on_slide_graph() {
        let (g, _) = slide30();
        let dpbf = Dpbf::new(&g);
        let res = dpbf.search(&["k1", "k2", "k3"], 1);
        let bf = brute_force_gst_cost(&g, &["k1", "k2", "k3"]).unwrap();
        assert_eq!(res[0].cost, bf);
    }

    /// DPBF equals brute force on random small graphs.
    #[test]
    fn dpbf_is_optimal() {
        let mut rng = Rng::seed_from_u64(41);
        for _ in 0..48 {
            let n = rng.gen_range(3usize..9);
            let n_edges = rng.gen_range(2usize..20);
            let n_seeds = rng.gen_range(2usize..4);
            let seeds: Vec<usize> = (0..n_seeds).map(|_| rng.gen_index(9)).collect();
            let mut g = DataGraph::new();
            let mut kw_of = vec![String::new(); n];
            for (i, kw) in seeds.iter().enumerate() {
                let node = kw % n;
                let term = format!("kw{i}");
                if !kw_of[node].is_empty() {
                    kw_of[node].push(' ');
                }
                kw_of[node].push_str(&term);
            }
            let ids: Vec<NodeId> = (0..n).map(|i| g.add_node("n", &kw_of[i])).collect();
            for _ in 0..n_edges {
                let (u, v) = (rng.gen_index(9), rng.gen_index(9));
                let w = rng.gen_range(1u32..6);
                if u % n != v % n {
                    g.add_edge(ids[u % n], ids[v % n], w as f64);
                }
            }
            let keywords: Vec<String> = (0..seeds.len()).map(|i| format!("kw{i}")).collect();
            let dpbf = Dpbf::new(&g);
            let res = dpbf.search(&keywords, 1);
            let bf = brute_force_gst_cost(&g, &keywords);
            match (res.first(), bf) {
                (Some(t), Some(b)) => {
                    assert!(
                        (t.cost - b).abs() < 1e-9,
                        "dpbf {} vs brute force {}",
                        t.cost,
                        b
                    );
                    assert!(t.validate(&g, &keywords).is_ok());
                }
                (None, None) => {}
                (a, b) => panic!("feasibility mismatch: {a:?} vs {b:?}"),
            }
        }
    }
}
