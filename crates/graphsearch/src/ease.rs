//! EASE: r-radius Steiner subgraphs (Li et al., SIGMOD 08) —
//! tutorial slide 31.
//!
//! An answer is a subgraph of hop-radius ≤ r around a center node whose
//! neighborhood contains a match of every keyword, *reduced to its Steiner
//! part*: only nodes on shortest center→match paths survive ("less
//! unnecessary nodes"). Subgraphs with identical node sets are reported
//! once (maximality by node-set dedup). Scored by keyword proximity: the
//! closer the matches sit to each other, the higher the score.

use kwdb_graph::shortest::within_hops;
use kwdb_graph::{DataGraph, NodeId};
use std::collections::{BTreeSet, HashMap, HashSet};

/// An r-radius Steiner subgraph answer.
#[derive(Debug, Clone)]
pub struct SteinerSubgraph {
    pub center: NodeId,
    /// All retained nodes (sorted).
    pub nodes: Vec<NodeId>,
    /// Retained edges (normalized, sorted).
    pub edges: Vec<(NodeId, NodeId)>,
    /// `matches[i]` are the matches of keyword `i` inside the subgraph.
    pub matches: Vec<Vec<NodeId>>,
    pub score: f64,
}

/// Search for r-radius Steiner subgraphs.
pub fn search<S: AsRef<str>>(
    g: &DataGraph,
    keywords: &[S],
    radius: usize,
    k: usize,
) -> Vec<SteinerSubgraph> {
    let l = keywords.len();
    if l == 0 || k == 0 {
        return Vec::new();
    }
    // Resolve each keyword to its sorted node list once (one dictionary
    // lookup per keyword); a missing keyword means no answers.
    let Some(groups) = keywords
        .iter()
        .map(|kw| {
            let grp = g.keyword_nodes(kw.as_ref());
            (!grp.is_empty()).then_some(grp)
        })
        .collect::<Option<Vec<_>>>()
    else {
        return Vec::new();
    };
    let mut out: Vec<SteinerSubgraph> = Vec::new();
    let mut seen_nodesets: HashSet<Vec<NodeId>> = HashSet::new();

    for center in g.iter() {
        let hood = within_hops(g, center, radius);
        let mut hood_sorted: Vec<NodeId> = hood.keys().copied().collect();
        hood_sorted.sort();
        // per-keyword matches within the neighborhood: both sides are sorted
        // node lists, so the shared intersection kernel applies directly
        let matches: Vec<Vec<NodeId>> = groups
            .iter()
            .map(|grp| {
                let mut m = Vec::new();
                grp.intersect_sorted_into(&hood_sorted, &mut m);
                m
            })
            .collect();
        if matches.iter().any(|m| m.is_empty()) {
            continue;
        }
        // Steiner reduction: keep nodes on BFS-hop shortest paths center→match.
        let kept = steiner_nodes(g, center, &hood, &matches);
        let mut nodes: Vec<NodeId> = kept.iter().copied().collect();
        nodes.sort();
        if !seen_nodesets.insert(nodes.clone()) {
            continue; // same reduced subgraph found from another center
        }
        let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
        for &u in &nodes {
            for &(v, _) in g.neighbors(u) {
                if u < v && kept.contains(&v) {
                    edges.push((u, v));
                }
            }
        }
        edges.sort();
        let score = proximity_score(&hood, &matches);
        out.push(SteinerSubgraph {
            center,
            nodes,
            edges,
            matches,
            score,
        });
    }
    out.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap()
            .then(a.nodes.len().cmp(&b.nodes.len()))
            .then(a.center.cmp(&b.center))
    });
    out.truncate(k);
    out
}

/// Nodes on some hop-shortest path from the center to a match.
fn steiner_nodes(
    g: &DataGraph,
    center: NodeId,
    hood: &HashMap<NodeId, usize>,
    matches: &[Vec<NodeId>],
) -> BTreeSet<NodeId> {
    let mut kept: BTreeSet<NodeId> = BTreeSet::new();
    kept.insert(center);
    // Walk back from each match along decreasing hop count.
    let mut frontier: Vec<NodeId> = matches.iter().flatten().copied().collect();
    while let Some(n) = frontier.pop() {
        if !kept.insert(n) {
            continue;
        }
        let h = hood[&n];
        if h == 0 {
            continue;
        }
        for &(p, _) in g.neighbors(n) {
            if hood.get(&p).is_some_and(|&hp| hp + 1 == h) {
                frontier.push(p);
                break; // one shortest predecessor suffices for the reduction
            }
        }
    }
    kept
}

/// EASE-style proximity score: sum over keyword-match pairs (across distinct
/// keywords) of `1 / (hops(m1) + hops(m2) + 1)` — matches close to the
/// center (hence to each other) score high.
fn proximity_score(hood: &HashMap<NodeId, usize>, matches: &[Vec<NodeId>]) -> f64 {
    let mut score = 0.0;
    for (i, mi) in matches.iter().enumerate() {
        for mj in matches.iter().skip(i + 1) {
            for &a in mi {
                for &b in mj {
                    let d = hood[&a] + hood[&b];
                    score += 1.0 / (d as f64 + 1.0);
                }
            }
        }
    }
    score
}

#[cfg(test)]
mod tests {
    use super::*;

    /// x—c—y plus a far pair x2——(3 hops)——y2.
    fn graph() -> (DataGraph, Vec<NodeId>) {
        let mut g = DataGraph::new();
        let x = g.add_node("n", "apple");
        let c = g.add_node("n", "");
        let y = g.add_node("n", "banana");
        g.add_edge(x, c, 1.0);
        g.add_edge(c, y, 1.0);
        let x2 = g.add_node("n", "apple");
        let m1 = g.add_node("n", "");
        let m2 = g.add_node("n", "");
        let y2 = g.add_node("n", "banana");
        g.add_edge(x2, m1, 1.0);
        g.add_edge(m1, m2, 1.0);
        g.add_edge(m2, y2, 1.0);
        (g, vec![x, c, y, x2, m1, m2, y2])
    }

    #[test]
    fn tight_subgraph_ranks_first() {
        let (g, ids) = graph();
        let res = search(&g, &["apple", "banana"], 2, 10);
        assert!(!res.is_empty());
        let top = &res[0];
        assert!(top.nodes.contains(&ids[0]) && top.nodes.contains(&ids[2]));
        assert!(res.windows(2).all(|w| w[0].score >= w[1].score));
    }

    #[test]
    fn radius_limits_answers() {
        let (g, _) = graph();
        // radius 1: no center sees both keywords in the far component,
        // and in the near component only c does.
        let res = search(&g, &["apple", "banana"], 1, 10);
        assert_eq!(res.len(), 1);
        // radius 2 adds centers covering the far pair
        let res2 = search(&g, &["apple", "banana"], 2, 10);
        assert!(res2.len() > res.len());
    }

    #[test]
    fn steiner_reduction_drops_unrelated_nodes() {
        let mut g = DataGraph::new();
        let x = g.add_node("n", "p");
        let c = g.add_node("n", "");
        let y = g.add_node("n", "q");
        let stray = g.add_node("n", "");
        g.add_edge(x, c, 1.0);
        g.add_edge(c, y, 1.0);
        g.add_edge(c, stray, 1.0);
        let res = search(&g, &["p", "q"], 1, 10);
        assert_eq!(res.len(), 1);
        assert!(
            !res[0].nodes.contains(&stray),
            "stray node must be reduced away"
        );
    }

    #[test]
    fn duplicate_nodesets_reported_once() {
        // Both matches sit on one node; every center that can see it reduces
        // to a subgraph containing it, and the identical singleton reduction
        // (center = x itself) must be reported exactly once.
        let mut g = DataGraph::new();
        let x = g.add_node("n", "p q");
        let _lone = g.add_node("n", "other");
        let res = search(&g, &["p", "q"], 1, 10);
        assert_eq!(res.len(), 1);
        assert_eq!(res[0].nodes, vec![x]);
        assert_eq!(res[0].center, x);
    }

    #[test]
    fn missing_keyword_empty() {
        let (g, _) = graph();
        assert!(search(&g, &["apple", "zzz"], 2, 5).is_empty());
    }
}
