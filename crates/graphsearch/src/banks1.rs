//! BANKS I: backward expanding search (Bhalotia et al., ICDE 02) —
//! tutorial slide 114.
//!
//! One equi-distance Dijkstra expansion runs *backward* from each keyword's
//! match set; a node reached by all expansions is a connection point — an
//! answer tree rooted there is the union of the shortest paths back to each
//! keyword's nearest match, with cost `Σᵢ dist(root, Sᵢ)` (the distinct-root
//! cost BANKS ranks by).
//!
//! The search settles nodes globally in distance order (the paper's
//! "equi-distance expansion"). Termination is sound for the distinct-root
//! cost: every yet-unseen connection point must still be settled by at least
//! one expansion, so its cost is at least that expansion's current radius;
//! once the k-th best found cost is below every expansion's radius, no better
//! answer can appear.
//!
//! BANKS trees approximate Steiner trees: union-of-shortest-paths is within
//! a factor of the group count of optimal but not exact — E05 measures the
//! gap against DPBF.

use crate::answer::{norm_edge, AnswerTree};
use crate::TraversalStats;
use kwdb_common::{topk::TopK, Budget, Score, TruncationReason};
use kwdb_graph::{DataGraph, NodeId};
use std::collections::{BinaryHeap, HashMap};

/// Incremental multi-source Dijkstra for one keyword group.
#[derive(Debug)]
struct GroupExpansion {
    heap: BinaryHeap<std::cmp::Reverse<(Score, NodeId)>>,
    dist: HashMap<NodeId, f64>,
    pred: HashMap<NodeId, NodeId>,
    /// Distance of the last settled node — the expansion radius.
    radius: f64,
}

impl GroupExpansion {
    fn new(sources: impl IntoIterator<Item = NodeId>) -> Self {
        let mut heap = BinaryHeap::new();
        let mut dist = HashMap::new();
        for s in sources {
            dist.insert(s, 0.0);
            heap.push(std::cmp::Reverse((Score(0.0), s)));
        }
        GroupExpansion {
            heap,
            dist,
            pred: HashMap::new(),
            radius: 0.0,
        }
    }

    /// Distance of the next node to be settled, if any.
    fn peek(&self) -> Option<f64> {
        self.heap.peek().map(|std::cmp::Reverse((Score(d), _))| *d)
    }

    /// Settle one node; returns it and its distance.
    fn settle(&mut self, g: &DataGraph) -> Option<(NodeId, f64)> {
        while let Some(std::cmp::Reverse((Score(d), u))) = self.heap.pop() {
            if self.dist.get(&u).is_some_and(|&best| d > best) {
                continue; // stale
            }
            self.radius = d;
            for &(v, w) in g.neighbors(u) {
                let nd = d + w;
                if self.dist.get(&v).is_none_or(|&cur| nd < cur) {
                    self.dist.insert(v, nd);
                    self.pred.insert(v, u);
                    self.heap.push(std::cmp::Reverse((Score(nd), v)));
                }
            }
            return Some((u, d));
        }
        None
    }

    /// Shortest-path edges from `n` back to this group's nearest source.
    fn path_edges(&self, mut n: NodeId) -> Vec<(NodeId, NodeId)> {
        let mut edges = Vec::new();
        while let Some(&p) = self.pred.get(&n) {
            edges.push(norm_edge(n, p));
            n = p;
        }
        edges
    }

    /// The source that `n`'s shortest path leads to.
    fn source_of(&self, mut n: NodeId) -> NodeId {
        while let Some(&p) = self.pred.get(&n) {
            n = p;
        }
        n
    }
}

/// The BANKS I engine. Stateless — `search` takes `&self` and the per-query
/// work counter (nodes settled) comes back in a [`TraversalStats`], so one
/// engine can serve concurrent queries.
#[derive(Debug)]
pub struct BanksI<'g> {
    g: &'g DataGraph,
}

impl<'g> BanksI<'g> {
    pub fn new(g: &'g DataGraph) -> Self {
        BanksI { g }
    }

    /// Top-k answers by distinct-root cost, best first.
    pub fn search<S: AsRef<str>>(&self, keywords: &[S], k: usize) -> Vec<AnswerTree> {
        self.search_budgeted(keywords, k, &Budget::unlimited()).0
    }

    /// [`Self::search`] under an execution [`Budget`]: every node settled
    /// counts as one candidate; an exhausted budget returns the (cost-sorted)
    /// answers found so far plus the [`TruncationReason`] that stopped the
    /// expansion. The third element reports this query's expansion work in
    /// `nodes_expanded`.
    pub fn search_budgeted<S: AsRef<str>>(
        &self,
        keywords: &[S],
        k: usize,
        budget: &Budget,
    ) -> (Vec<AnswerTree>, Option<TruncationReason>, TraversalStats) {
        let mut stats = TraversalStats::default();
        let l = keywords.len();
        let mut truncation = None;
        if l == 0 || k == 0 {
            return (Vec::new(), truncation, stats);
        }
        let mut groups: Vec<GroupExpansion> = Vec::with_capacity(l);
        for kw in keywords {
            let sources = self.g.keyword_nodes(kw.as_ref());
            if sources.is_empty() {
                return (Vec::new(), truncation, stats);
            }
            groups.push(GroupExpansion::new(sources));
        }
        // settled_by[node] = bitmask of groups that settled it
        let mut settled_by: HashMap<NodeId, u32> = HashMap::new();
        let full: u32 = (1 << l) - 1;
        let mut topk: TopK<NodeId> = TopK::new(k);
        let mut settled: u64 = 0;

        loop {
            if let Some(reason) = budget.truncation_at(settled) {
                truncation = Some(reason);
                break;
            }
            settled += 1;
            // Equi-distance: settle from the expansion with smallest frontier.
            let next = groups
                .iter()
                .enumerate()
                .filter_map(|(i, e)| e.peek().map(|d| (i, d)))
                .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
            let Some((gi, _)) = next else { break };
            let Some((node, _)) = groups[gi].settle(self.g) else {
                break;
            };
            stats.nodes_expanded += 1;
            let mask = settled_by.entry(node).or_insert(0);
            *mask |= 1 << gi;
            if *mask == full {
                let cost: f64 = groups.iter().map(|e| e.dist[&node]).sum();
                topk.push(-cost, node); // TopK keeps max; negate cost
            }
            // Sound stop: any future connection point costs at least the
            // smallest current radius.
            if topk.is_full() {
                let kth_cost = -topk.threshold().expect("full");
                let min_radius = groups
                    .iter()
                    .map(|e| e.peek().unwrap_or(f64::INFINITY))
                    .fold(f64::INFINITY, f64::min);
                if kth_cost <= min_radius {
                    break;
                }
            }
        }

        let trees = topk
            .into_sorted_vec()
            .into_iter()
            .map(|(neg_cost, root)| self.build_tree(root, -neg_cost, &groups, l))
            .collect();
        (trees, truncation, stats)
    }

    fn build_tree(
        &self,
        root: NodeId,
        cost: f64,
        groups: &[GroupExpansion],
        l: usize,
    ) -> AnswerTree {
        let mut edges = Vec::new();
        let mut matches = Vec::with_capacity(l);
        for e in groups {
            edges.extend(e.path_edges(root));
            matches.push(e.source_of(root));
        }
        edges.sort();
        edges.dedup();
        // Union of shortest paths may form a non-tree (shared segments create
        // cycles); prune to a tree by BFS from the root over the edge union.
        let (tree_edges, tree_cost) = prune_to_tree(self.g, root, &edges, &matches);
        let _ = cost; // distinct-root cost ranks; the tree cost is the real weight
        AnswerTree {
            root,
            edges: tree_edges,
            matches,
            cost: tree_cost,
        }
    }
}

/// Restrict an edge union to a BFS tree from `root` that still reaches every
/// match, and drop branches that lead nowhere useful. Shared with BANKS II.
pub(crate) fn prune_to_tree_pub(
    g: &DataGraph,
    root: NodeId,
    edges: &[(NodeId, NodeId)],
    matches: &[NodeId],
) -> (Vec<(NodeId, NodeId)>, f64) {
    prune_to_tree(g, root, edges, matches)
}

fn prune_to_tree(
    g: &DataGraph,
    root: NodeId,
    edges: &[(NodeId, NodeId)],
    matches: &[NodeId],
) -> (Vec<(NodeId, NodeId)>, f64) {
    let mut adj: HashMap<NodeId, Vec<NodeId>> = HashMap::new();
    for &(u, v) in edges {
        adj.entry(u).or_default().push(v);
        adj.entry(v).or_default().push(u);
    }
    // BFS tree from root.
    let mut parent: HashMap<NodeId, NodeId> = HashMap::new();
    let mut order = vec![root];
    let mut seen: std::collections::HashSet<NodeId> = std::collections::HashSet::new();
    seen.insert(root);
    let mut qi = 0;
    while qi < order.len() {
        let u = order[qi];
        qi += 1;
        for &v in adj.get(&u).into_iter().flatten() {
            if seen.insert(v) {
                parent.insert(v, u);
                order.push(v);
            }
        }
    }
    // Keep only edges on root→match paths.
    let mut keep: std::collections::HashSet<(NodeId, NodeId)> = std::collections::HashSet::new();
    for &m in matches {
        let mut cur = m;
        while let Some(&p) = parent.get(&cur) {
            keep.insert(norm_edge(cur, p));
            cur = p;
        }
    }
    let mut out: Vec<(NodeId, NodeId)> = keep.into_iter().collect();
    out.sort();
    let cost = out
        .iter()
        .map(|&(u, v)| g.edge_weight(u, v).expect("edge from union exists"))
        .sum();
    (out, cost)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn slide30() -> DataGraph {
        let mut g = DataGraph::new();
        let a = g.add_node("n", "k1");
        let b = g.add_node("n", "");
        let c = g.add_node("n", "k2");
        let d = g.add_node("n", "k3");
        let e = g.add_node("n", "k1");
        g.add_edge(a, b, 5.0);
        g.add_edge(b, c, 2.0);
        g.add_edge(b, d, 3.0);
        g.add_edge(a, c, 6.0);
        g.add_edge(a, d, 7.0);
        g.add_edge(e, b, 10.0);
        g.add_edge(e, c, 11.0);
        g
    }

    #[test]
    fn finds_valid_answers() {
        let g = slide30();
        let banks = BanksI::new(&g);
        let res = banks.search(&["k1", "k2", "k3"], 3);
        assert!(!res.is_empty());
        for t in &res {
            t.validate(&g, &["k1", "k2", "k3"]).unwrap();
        }
    }

    #[test]
    fn best_answer_is_near_optimal_on_slide_graph() {
        let g = slide30();
        let banks = BanksI::new(&g);
        let res = banks.search(&["k1", "k2", "k3"], 1);
        // optimal Steiner cost is 10; BANKS (union of shortest paths from the
        // best root) finds exactly it here
        assert_eq!(res[0].cost, 10.0);
    }

    #[test]
    fn distinct_roots() {
        let g = slide30();
        let banks = BanksI::new(&g);
        let res = banks.search(&["k1", "k2"], 5);
        let mut roots: Vec<NodeId> = res.iter().map(|t| t.root).collect();
        roots.sort();
        roots.dedup();
        assert_eq!(roots.len(), res.len());
    }

    #[test]
    fn missing_keyword_is_empty() {
        let g = slide30();
        let banks = BanksI::new(&g);
        assert!(banks.search(&["k1", "nope"], 3).is_empty());
    }

    #[test]
    fn single_keyword_returns_match_roots() {
        let g = slide30();
        let banks = BanksI::new(&g);
        let res = banks.search(&["k1"], 2);
        assert_eq!(res.len(), 2);
        assert!(res.iter().all(|t| t.cost == 0.0 && t.size() == 1));
    }

    #[test]
    fn expansion_work_is_counted() {
        let g = slide30();
        let banks = BanksI::new(&g);
        let (_, _, stats) = banks.search_budgeted(&["k1", "k2", "k3"], 1, &Budget::unlimited());
        assert!(stats.nodes_expanded > 0);
    }
}
