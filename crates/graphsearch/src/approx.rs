//! Approximate group Steiner trees via the shortest-path-tree heuristic,
//! with STAR-style local improvement (Kasneci et al., ICDE 09).
//!
//! The heuristic: pick candidate roots (the smallest keyword group's match
//! nodes — one of them touches the optimal tree), take the union of shortest
//! paths from the root to each group's nearest match, prune to a tree, and
//! keep the cheapest. This is the classic `l`-approximation; an improvement
//! pass then repeatedly tries to re-root at every tree node, which is the
//! essence of STAR's iterative path replacement.

use crate::answer::{norm_edge, AnswerTree};
use kwdb_common::index::Postings;
use kwdb_graph::shortest::multi_source;
use kwdb_graph::{DataGraph, NodeId};
use std::collections::{HashMap, HashSet};

/// Approximate top-1 group Steiner tree. Returns `None` when some keyword
/// has no match or the groups are disconnected.
pub fn spt_heuristic<S: AsRef<str>>(g: &DataGraph, keywords: &[S]) -> Option<AnswerTree> {
    let l = keywords.len();
    if l == 0 {
        return None;
    }
    // Per-group distance fields (multi-source Dijkstra once per keyword).
    let mut fields = Vec::with_capacity(l);
    let mut smallest: Option<(usize, Postings<'_, NodeId>)> = None;
    for (i, kw) in keywords.iter().enumerate() {
        let group = g.keyword_nodes(kw.as_ref());
        if group.is_empty() {
            return None;
        }
        if smallest.is_none_or(|(_, s)| group.len() < s.len()) {
            smallest = Some((i, group));
        }
        fields.push(multi_source_with_pred(g, group));
    }
    let (_, roots) = smallest.expect("l >= 1");

    let mut best: Option<AnswerTree> = None;
    let try_root = |root: NodeId, best: &mut Option<AnswerTree>| {
        if let Some(t) = tree_from_fields(g, root, &fields, l) {
            if best.as_ref().is_none_or(|b| t.cost < b.cost) {
                *best = Some(t);
            }
        }
    };
    for r in roots.iter() {
        try_root(r, &mut best);
    }
    // STAR-style improvement: re-root at every node of the current best tree
    // until no improvement.
    let mut improved = true;
    while improved {
        improved = false;
        let Some(cur) = best.clone() else { break };
        for n in cur.nodes() {
            if let Some(t) = tree_from_fields(g, n, &fields, l) {
                if t.cost + 1e-12 < best.as_ref().unwrap().cost {
                    best = Some(t);
                    improved = true;
                }
            }
        }
    }
    best
}

struct Field {
    dist: HashMap<NodeId, f64>,
    pred: HashMap<NodeId, NodeId>,
}

fn multi_source_with_pred(g: &DataGraph, sources: Postings<'_, NodeId>) -> Field {
    // multi_source tracks origins; we also need preds for path extraction,
    // so rebuild them: pred(v) = the neighbor u with dist(u) + w(u,v) = dist(v).
    let (dist, _origin) = multi_source(g, sources, None);
    let mut pred = HashMap::new();
    for (&v, &dv) in &dist {
        if dv == 0.0 {
            continue;
        }
        for &(u, w) in g.neighbors(v) {
            if let Some(&du) = dist.get(&u) {
                // `du < dv` guards against zero-weight ties creating cycles
                if du < dv && (du + w - dv).abs() < 1e-9 {
                    pred.insert(v, u);
                    break;
                }
            }
        }
    }
    Field { dist, pred }
}

fn tree_from_fields(g: &DataGraph, root: NodeId, fields: &[Field], l: usize) -> Option<AnswerTree> {
    let mut edges = Vec::new();
    let mut matches = Vec::with_capacity(l);
    for f in fields {
        f.dist.get(&root)?;
        let mut n = root;
        while let Some(&p) = f.pred.get(&n) {
            edges.push(norm_edge(n, p));
            n = p;
        }
        matches.push(n); // a source (dist 0) of this group
    }
    edges.sort();
    edges.dedup();
    let (tree_edges, cost) = crate::banks1::prune_to_tree_pub(g, root, &edges, &matches);
    Some(AnswerTree {
        root,
        edges: tree_edges,
        matches,
        cost,
    })
}

/// Known approximation guarantee of the SPT heuristic with root restricted
/// to one group: cost ≤ l · OPT (each root→match path is at most OPT since
/// OPT connects root's group to every other group).
pub fn approximation_factor(n_keywords: usize) -> f64 {
    n_keywords as f64
}

/// Total distinct edge weight of a set of trees (diagnostics).
pub fn union_weight(g: &DataGraph, trees: &[AnswerTree]) -> f64 {
    let mut seen: HashSet<(NodeId, NodeId)> = HashSet::new();
    let mut total = 0.0;
    for t in trees {
        for &(u, v) in &t.edges {
            if seen.insert((u, v)) {
                total += g.edge_weight(u, v).unwrap_or(0.0);
            }
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dpbf::{brute_force_gst_cost, Dpbf};
    use kwdb_common::Rng;

    fn slide30() -> DataGraph {
        let mut g = DataGraph::new();
        let a = g.add_node("n", "k1");
        let b = g.add_node("n", "");
        let c = g.add_node("n", "k2");
        let d = g.add_node("n", "k3");
        let e = g.add_node("n", "k1");
        g.add_edge(a, b, 5.0);
        g.add_edge(b, c, 2.0);
        g.add_edge(b, d, 3.0);
        g.add_edge(a, c, 6.0);
        g.add_edge(a, d, 7.0);
        g.add_edge(e, b, 10.0);
        g.add_edge(e, c, 11.0);
        g
    }

    #[test]
    fn finds_optimal_on_slide_graph() {
        let g = slide30();
        let t = spt_heuristic(&g, &["k1", "k2", "k3"]).unwrap();
        t.validate(&g, &["k1", "k2", "k3"]).unwrap();
        assert_eq!(t.cost, 10.0); // improvement pass re-roots at b
    }

    #[test]
    fn missing_or_disconnected_returns_none() {
        let g = slide30();
        assert!(spt_heuristic(&g, &["k1", "zzz"]).is_none());
        let mut g2 = DataGraph::new();
        g2.add_node("n", "p");
        g2.add_node("n", "q");
        assert!(spt_heuristic(&g2, &["p", "q"]).is_none());
    }

    #[test]
    fn factor_helper() {
        assert_eq!(approximation_factor(3), 3.0);
    }

    #[test]
    fn within_guarantee() {
        // Heuristic cost is within l x optimal, and >= optimal.
        let mut rng = Rng::seed_from_u64(31);
        for _ in 0..40 {
            let n = rng.gen_range(3usize..9);
            let n_edges = rng.gen_range(3usize..20);
            let n_seeds = rng.gen_range(2usize..4);
            let seeds: Vec<usize> = (0..n_seeds).map(|_| rng.gen_index(9)).collect();
            let mut g = DataGraph::new();
            let mut kw_of = vec![String::new(); n];
            for (i, s) in seeds.iter().enumerate() {
                let node = s % n;
                if !kw_of[node].is_empty() {
                    kw_of[node].push(' ');
                }
                kw_of[node].push_str(&format!("kw{i}"));
            }
            let ids: Vec<NodeId> = (0..n).map(|i| g.add_node("n", &kw_of[i])).collect();
            for _ in 0..n_edges {
                let (u, v) = (rng.gen_index(9), rng.gen_index(9));
                let w = rng.gen_range(1u32..6);
                if u % n != v % n {
                    g.add_edge(ids[u % n], ids[v % n], w as f64);
                }
            }
            let keywords: Vec<String> = (0..seeds.len()).map(|i| format!("kw{i}")).collect();
            let heur = spt_heuristic(&g, &keywords);
            let opt = brute_force_gst_cost(&g, &keywords);
            match (heur, opt) {
                (Some(t), Some(o)) => {
                    assert!(t.validate(&g, &keywords).is_ok());
                    assert!(t.cost + 1e-9 >= o, "heuristic beat optimum?");
                    assert!(
                        t.cost <= keywords.len() as f64 * o + 1e-9,
                        "guarantee violated: {} > {} * {}",
                        t.cost,
                        keywords.len(),
                        o
                    );
                }
                (None, None) => {}
                (h, o) => panic!("feasibility mismatch {h:?} {o:?}"),
            }
        }
    }

    /// Sanity against DPBF on random graphs.
    #[test]
    fn never_beats_dpbf() {
        let mut rng = Rng::seed_from_u64(32);
        for _ in 0..40 {
            let n_edges = rng.gen_range(3usize..15);
            let mut g = DataGraph::new();
            let ids: Vec<NodeId> = (0..7)
                .map(|i| {
                    g.add_node(
                        "n",
                        if i == 0 {
                            "aa"
                        } else if i == 6 {
                            "bb"
                        } else {
                            ""
                        },
                    )
                })
                .collect();
            for _ in 0..n_edges {
                let (u, v) = (rng.gen_index(7), rng.gen_index(7));
                let w = rng.gen_range(1u32..5);
                if u != v {
                    g.add_edge(ids[u], ids[v], w as f64);
                }
            }
            let kws = ["aa", "bb"];
            let heur = spt_heuristic(&g, &kws);
            let dp = Dpbf::new(&g);
            let opt = dp.search(&kws, 1);
            match (heur, opt.first()) {
                (Some(t), Some(o)) => assert!(t.cost + 1e-9 >= o.cost),
                (None, None) => {}
                (h, o) => panic!("feasibility mismatch {h:?} {o:?}"),
            }
        }
    }
}
