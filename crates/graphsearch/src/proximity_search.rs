//! Proximity search: *Find X near Y* (Goldman, Shivakumar,
//! Venkatasubramanian & Garcia-Molina, VLDB 98) — tutorial slides 25
//! and 122.
//!
//! The ancestor of modern keyword search: rank the objects of a **find**
//! set by their distance to the objects of a **near** set — "find movies
//! near 'meaning of life'". The scoring follows the paper: each find object
//! gets `Σ_near 1/d(f, n)²` (closer near-objects dominate, multiple nearby
//! matches reinforce), with distances served either by Dijkstra or by the
//! precomputed [`HubIndex`].

use kwdb_graph::shortest::multi_source;
use kwdb_graph::{DataGraph, HubIndex, NodeId};

/// A ranked find-object.
#[derive(Debug, Clone, PartialEq)]
pub struct ProximityHit {
    pub node: NodeId,
    pub score: f64,
    /// Distance to the closest near-object.
    pub min_dist: f64,
}

fn score_of(dists: impl Iterator<Item = f64>) -> (f64, f64) {
    let mut score = 0.0;
    let mut min_dist = f64::INFINITY;
    for d in dists {
        score += 1.0 / (1.0 + d * d);
        min_dist = min_dist.min(d);
    }
    (score, min_dist)
}

/// Rank `find`-keyword objects by proximity to `near`-keyword objects,
/// computing distances with one multi-source Dijkstra from the near set.
pub fn proximity_search(g: &DataGraph, find: &str, near: &str, k: usize) -> Vec<ProximityHit> {
    let find_nodes = g.keyword_nodes(find);
    let near_nodes = g.keyword_nodes(near);
    if find_nodes.is_empty() || near_nodes.is_empty() {
        return Vec::new();
    }
    // one field from the whole near set gives min-distance; for the additive
    // score each near object needs its own distance, so run per near object
    // when the set is small, else approximate with the nearest only.
    let mut hits: Vec<ProximityHit> = if near_nodes.len() <= 8 {
        let fields: Vec<std::collections::HashMap<NodeId, f64>> = near_nodes
            .iter()
            .map(|s| multi_source(g, [s], None).0)
            .collect();
        find_nodes
            .iter()
            .filter_map(|f| {
                let ds: Vec<f64> = fields
                    .iter()
                    .filter_map(|fld| fld.get(&f).copied())
                    .collect();
                if ds.is_empty() {
                    return None;
                }
                let (score, min_dist) = score_of(ds.into_iter());
                Some(ProximityHit {
                    node: f,
                    score,
                    min_dist,
                })
            })
            .collect()
    } else {
        let (dist, _) = multi_source(g, near_nodes, None);
        find_nodes
            .iter()
            .filter_map(|f| {
                let d = dist.get(&f).copied()?;
                let (score, min_dist) = score_of(std::iter::once(d));
                Some(ProximityHit {
                    node: f,
                    score,
                    min_dist,
                })
            })
            .collect()
    };
    hits.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap()
            .then(a.node.cmp(&b.node))
    });
    hits.truncate(k);
    hits
}

/// The same ranking served from a hub index — the paper's point: distance
/// queries become index lookups instead of graph traversals.
pub fn proximity_search_indexed(
    g: &DataGraph,
    index: &HubIndex,
    find: &str,
    near: &str,
    k: usize,
) -> Vec<ProximityHit> {
    let find_nodes = g.keyword_nodes(find);
    let near_nodes = g.keyword_nodes(near);
    let mut hits: Vec<ProximityHit> = find_nodes
        .iter()
        .filter_map(|f| {
            let ds: Vec<f64> = near_nodes
                .iter()
                .filter_map(|n| index.distance(f, n))
                .collect();
            if ds.is_empty() {
                return None;
            }
            let (score, min_dist) = score_of(ds.into_iter());
            Some(ProximityHit {
                node: f,
                score,
                min_dist,
            })
        })
        .collect();
    hits.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap()
            .then(a.node.cmp(&b.node))
    });
    hits.truncate(k);
    hits
}

#[cfg(test)]
mod tests {
    use super::*;
    use kwdb_graph::hub::HubSelection;

    /// movie1 — actor — movie2 — x — x — quote("meaning of life")-ish
    fn graph() -> (DataGraph, Vec<NodeId>) {
        let mut g = DataGraph::new();
        let m1 = g.add_node("movie", "movie brian");
        let m2 = g.add_node("movie", "movie grail");
        let quote = g.add_node("quote", "meaning of life");
        let a = g.add_node("actor", "cleese");
        // brian is adjacent to the quote; grail two hops away
        g.add_edge(m1, quote, 1.0);
        g.add_edge(m1, a, 1.0);
        g.add_edge(a, m2, 1.0);
        (g, vec![m1, m2, quote, a])
    }

    #[test]
    fn closer_objects_rank_first() {
        let (g, ids) = graph();
        let hits = proximity_search(&g, "movie", "meaning", 10);
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].node, ids[0], "brian touches the quote");
        assert_eq!(hits[0].min_dist, 1.0);
        assert_eq!(hits[1].node, ids[1]);
        assert_eq!(hits[1].min_dist, 3.0);
        assert!(hits[0].score > hits[1].score);
    }

    #[test]
    fn indexed_search_agrees_with_direct() {
        let (g, _) = graph();
        let ix = HubIndex::build(&g, 1, HubSelection::HighestDegree);
        let direct = proximity_search(&g, "movie", "meaning", 10);
        let indexed = proximity_search_indexed(&g, &ix, "movie", "meaning", 10);
        assert_eq!(direct.len(), indexed.len());
        for (d, i) in direct.iter().zip(&indexed) {
            assert_eq!(d.node, i.node);
            assert!((d.score - i.score).abs() < 1e-9);
        }
    }

    #[test]
    fn multiple_near_objects_reinforce() {
        let mut g = DataGraph::new();
        let f1 = g.add_node("movie", "movie one");
        let f2 = g.add_node("movie", "movie two");
        let n1 = g.add_node("q", "life");
        let n2 = g.add_node("q", "life");
        // f1 is near both; f2 near only one (same distance)
        g.add_edge(f1, n1, 1.0);
        g.add_edge(f1, n2, 1.0);
        g.add_edge(f2, n1, 1.0);
        let hits = proximity_search(&g, "movie", "life", 10);
        assert_eq!(hits[0].node, f1, "two nearby matches beat one");
        assert!(hits[0].score > hits[1].score);
    }

    #[test]
    fn missing_sets_are_empty() {
        let (g, _) = graph();
        assert!(proximity_search(&g, "movie", "zzz", 5).is_empty());
        assert!(proximity_search(&g, "zzz", "meaning", 5).is_empty());
    }
}
