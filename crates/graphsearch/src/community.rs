//! Distinct-core semantics / communities (Qin et al., *Querying Communities
//! in Relational Databases*, ICDE 09) — tutorial slides 31 and 126.
//!
//! Two answers with the same *core* — the combination of keyword match nodes
//! — are the same community even if connected through different centers.
//! A community exists for core `(m₁, …, m_l)` when some center `x` satisfies
//! `dist(x, mᵢ) ≤ Dmax` for all `i`; its cost is the best center's total
//! distance. This mirrors the `Pairs(n1, n2, dist ≤ Dmax)` formulation the
//! RDBMS-powered evaluation uses (slide 126), so
//! `kwdb_relsearch::rdbms_power` can be cross-checked against this module.

use kwdb_graph::shortest::multi_source;
use kwdb_graph::{DataGraph, NodeId};
use std::collections::HashMap;

/// A community answer: a distinct keyword-match combination.
#[derive(Debug, Clone, PartialEq)]
pub struct Community {
    /// `core[i]` matches keyword `i`.
    pub core: Vec<NodeId>,
    /// Best center and its total distance to the core.
    pub center: NodeId,
    pub cost: f64,
}

/// Enumerate communities with centers within `d_max` of every keyword.
///
/// Implementation: one distance-capped multi-source Dijkstra per keyword
/// (tracking the nearest-match origin), then every node reached by all
/// keywords proposes the core formed by its nearest matches. Distinct cores
/// are kept with their cheapest center, sorted by cost.
///
/// Note this enumerates cores *realized by some nearest-match assignment*;
/// cores only reachable through non-nearest matches are not produced, which
/// matches the pruning behaviour of the semi-join evaluation.
pub fn search<S: AsRef<str>>(
    g: &DataGraph,
    keywords: &[S],
    d_max: f64,
    k: usize,
) -> Vec<Community> {
    let l = keywords.len();
    if l == 0 || k == 0 {
        return Vec::new();
    }
    let mut dists: Vec<HashMap<NodeId, f64>> = Vec::with_capacity(l);
    let mut origins: Vec<HashMap<NodeId, NodeId>> = Vec::with_capacity(l);
    for kw in keywords {
        let sources = g.keyword_nodes(kw.as_ref());
        if sources.is_empty() {
            return Vec::new();
        }
        let (d, o) = multi_source(g, sources, Some(d_max));
        dists.push(d);
        origins.push(o);
    }
    // Iterate candidates from the smallest reach set.
    let smallest = (0..l).min_by_key(|&i| dists[i].len()).expect("l >= 1");
    let mut best: HashMap<Vec<NodeId>, (NodeId, f64)> = HashMap::new();
    'centers: for (&x, &d0) in &dists[smallest] {
        let mut core = vec![NodeId(0); l];
        let mut total = 0.0;
        for i in 0..l {
            if i == smallest {
                core[i] = origins[i][&x];
                total += d0;
                continue;
            }
            match dists[i].get(&x) {
                Some(&d) => {
                    core[i] = origins[i][&x];
                    total += d;
                }
                None => continue 'centers,
            }
        }
        match best.get_mut(&core) {
            Some(slot) => {
                if total < slot.1 || (total == slot.1 && x < slot.0) {
                    *slot = (x, total);
                }
            }
            None => {
                best.insert(core, (x, total));
            }
        }
    }
    let mut out: Vec<Community> = best
        .into_iter()
        .map(|(core, (center, cost))| Community { core, center, cost })
        .collect();
    out.sort_by(|a, b| {
        a.cost
            .partial_cmp(&b.cost)
            .unwrap()
            .then(a.core.cmp(&b.core))
    });
    out.truncate(k);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two x-matches and one y-match on a path: x1—a—y1—b—x2.
    fn graph() -> (DataGraph, Vec<NodeId>) {
        let mut g = DataGraph::new();
        let x1 = g.add_node("n", "x");
        let a = g.add_node("n", "");
        let y1 = g.add_node("n", "y");
        let b = g.add_node("n", "");
        let x2 = g.add_node("n", "x");
        g.add_edge(x1, a, 1.0);
        g.add_edge(a, y1, 1.0);
        g.add_edge(y1, b, 1.0);
        g.add_edge(b, x2, 1.0);
        (g, vec![x1, a, y1, b, x2])
    }

    #[test]
    fn distinct_cores_found() {
        let (g, ids) = graph();
        let res = search(&g, &["x", "y"], 2.0, 10);
        // cores: (x1, y1) and (x2, y1)
        assert_eq!(res.len(), 2);
        let cores: Vec<Vec<NodeId>> = res.iter().map(|c| c.core.clone()).collect();
        assert!(cores.contains(&vec![ids[0], ids[2]]));
        assert!(cores.contains(&vec![ids[4], ids[2]]));
    }

    #[test]
    fn costs_sorted_and_best_center_chosen() {
        let (g, _) = graph();
        let res = search(&g, &["x", "y"], 3.0, 10);
        assert!(res.windows(2).all(|w| w[0].cost <= w[1].cost));
        // best center for (x1,y1): a or the matches themselves — cost 2
        assert_eq!(res[0].cost, 2.0);
    }

    #[test]
    fn dmax_restricts_communities() {
        let (g, _) = graph();
        // d_max 1: a center must be adjacent to both an x and the y
        let res = search(&g, &["x", "y"], 1.0, 10);
        assert_eq!(res.len(), 2); // centers a and b qualify
        let res0 = search(&g, &["x", "y"], 0.4, 10);
        assert!(res0.is_empty(), "no node matches both keywords directly");
    }

    #[test]
    fn node_matching_all_keywords_is_its_own_community() {
        let mut g = DataGraph::new();
        let n = g.add_node("n", "x y");
        let res = search(&g, &["x", "y"], 1.0, 5);
        assert_eq!(res.len(), 1);
        assert_eq!(res[0].core, vec![n, n]);
        assert_eq!(res[0].cost, 0.0);
    }

    #[test]
    fn missing_keyword_empty() {
        let (g, _) = graph();
        assert!(search(&g, &["x", "none"], 5.0, 5).is_empty());
    }
}
