//! Graph-based keyword search.
//!
//! Slide 29 of the tutorial lays out the taxonomy of graph answer semantics;
//! this crate implements one engine per family:
//!
//! | Semantics | System | Module |
//! |---|---|---|
//! | (Group) Steiner tree, exact top-k | DPBF (Ding et al., ICDE 07) | [`dpbf`] |
//! | Steiner tree, approximate | BANKS I backward search (ICDE 02) | [`banks1`] |
//! | Steiner tree, approximate | BANKS II bidirectional search (VLDB 05) | [`banks2`] |
//! | Steiner tree, approximate | shortest-path-tree heuristic (STAR-style) | [`approx`] |
//! | Distinct root | BLINKS node→keyword index + TA (SIGMOD 07) | [`blinks`] |
//! | Distinct core / community | Qin et al. (ICDE 09) | [`community`] |
//! | r-radius Steiner subgraph | EASE (SIGMOD 08) | [`ease`] |
//!
//! [`proximity_search`] is the family's ancestor (Goldman et al., VLDB 98;
//! slide 25): rank *find*-objects by distance to *near*-objects, optionally
//! served from the hub index.
//!
//! All engines consume a [`kwdb_graph::DataGraph`] and produce
//! [`answer::AnswerTree`]s (or subgraphs), so they are directly comparable —
//! experiment E34 runs the whole zoo on one graph.

pub mod answer;
pub mod approx;
pub mod banks1;
pub mod banks2;
pub mod blinks;
pub mod community;
pub mod dpbf;
pub mod ease;
pub mod proximity_search;

pub use answer::AnswerTree;
pub use banks1::BanksI;
pub use banks2::BanksII;
pub use blinks::Blinks;
pub use dpbf::Dpbf;

/// Per-query work counters returned by the budgeted graph engines.
///
/// Each engine fills only the counters that describe its own work and
/// leaves the rest at zero, so one type serves the whole zoo and callers
/// (the unified engine, benches) can translate into [`kwdb_common::QueryStats`]
/// without per-engine plumbing. Returning the counters alongside the
/// results — instead of stashing them in the engine as BANKS/DPBF/BLINKS
/// historically did — keeps every engine `&self`-callable and `Sync`, so a
/// single instance can serve concurrent queries.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraversalStats {
    /// Nodes settled by backward expansion (BANKS I).
    pub nodes_expanded: usize,
    /// DP states popped from the priority queue (DPBF).
    pub states_popped: usize,
    /// Sorted index accesses (BLINKS TA).
    pub sorted_accesses: usize,
    /// Random index accesses (BLINKS TA).
    pub random_accesses: usize,
}
