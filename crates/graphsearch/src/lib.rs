//! Graph-based keyword search.
//!
//! Slide 29 of the tutorial lays out the taxonomy of graph answer semantics;
//! this crate implements one engine per family:
//!
//! | Semantics | System | Module |
//! |---|---|---|
//! | (Group) Steiner tree, exact top-k | DPBF (Ding et al., ICDE 07) | [`dpbf`] |
//! | Steiner tree, approximate | BANKS I backward search (ICDE 02) | [`banks1`] |
//! | Steiner tree, approximate | BANKS II bidirectional search (VLDB 05) | [`banks2`] |
//! | Steiner tree, approximate | shortest-path-tree heuristic (STAR-style) | [`approx`] |
//! | Distinct root | BLINKS node→keyword index + TA (SIGMOD 07) | [`blinks`] |
//! | Distinct core / community | Qin et al. (ICDE 09) | [`community`] |
//! | r-radius Steiner subgraph | EASE (SIGMOD 08) | [`ease`] |
//!
//! [`proximity_search`] is the family's ancestor (Goldman et al., VLDB 98;
//! slide 25): rank *find*-objects by distance to *near*-objects, optionally
//! served from the hub index.
//!
//! All engines consume a [`kwdb_graph::DataGraph`] and produce
//! [`answer::AnswerTree`]s (or subgraphs), so they are directly comparable —
//! experiment E34 runs the whole zoo on one graph.

pub mod answer;
pub mod approx;
pub mod banks1;
pub mod banks2;
pub mod blinks;
pub mod community;
pub mod dpbf;
pub mod ease;
pub mod proximity_search;

pub use answer::AnswerTree;
pub use banks1::BanksI;
pub use banks2::BanksII;
pub use blinks::Blinks;
pub use dpbf::Dpbf;
