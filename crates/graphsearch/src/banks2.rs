//! BANKS II: bidirectional expansion with spreading activation
//! (Kacholia et al., VLDB 05) — tutorial slide 114.
//!
//! BANKS I's weakness is expanding every frontier at the same radius: a
//! keyword matching a huge cluster forces equal effort everywhere. BANKS II
//! instead prioritizes by **activation**: each keyword source injects
//! activation that decays along edges and is divided among a node's
//! neighbors, so nodes that are close to *many* keywords through
//! *low-degree* paths are expanded first, and high-degree hubs are deferred.
//!
//! This implementation keeps the per-group incremental Dijkstra structure of
//! [`crate::banks1`] (so answers and costs are directly comparable) but
//! replaces the equi-distance scheduling rule with the activation rule, and
//! adds the bidirectional element: once a node is settled by some group, its
//! activation is boosted for the remaining groups, pulling their expansions
//! toward already-discovered meeting points.
//!
//! Like the original system, result order is best-effort: the search stops
//! on the same sound radius bound as BANKS I when possible, else on a work
//! budget; E05 measures both engines' expanded-node counts.

use crate::answer::AnswerTree;
use kwdb_common::{topk::TopK, Score};
use kwdb_graph::{DataGraph, NodeId};
use std::collections::{BinaryHeap, HashMap};

/// Activation decay per unit of edge weight.
const DECAY: f64 = 0.5;

/// The BANKS II engine.
#[derive(Debug)]
pub struct BanksII<'g> {
    g: &'g DataGraph,
    /// Nodes settled — comparable to BANKS I's
    /// [`TraversalStats::nodes_expanded`](crate::TraversalStats).
    pub nodes_expanded: usize,
    /// Stop after this many settles without the sound bound firing.
    pub work_budget: usize,
}

#[derive(Debug)]
struct Expansion {
    heap: BinaryHeap<std::cmp::Reverse<(Score, NodeId)>>, // keyed by -activation priority
    dist: HashMap<NodeId, f64>,
    pred: HashMap<NodeId, NodeId>,
    radius: f64,
}

impl<'g> BanksII<'g> {
    pub fn new(g: &'g DataGraph) -> Self {
        BanksII {
            g,
            nodes_expanded: 0,
            work_budget: usize::MAX,
        }
    }

    fn activation(&self, dist: f64, degree: usize, boost: u32) -> f64 {
        // decay^dist, divided among neighbors, boosted per group already
        // settled at the node (the bidirectional pull).
        DECAY.powf(dist) / (1.0 + degree as f64).sqrt() * (1.0 + boost as f64)
    }

    /// Top-k answers by distinct-root cost, best first.
    pub fn search<S: AsRef<str>>(&mut self, keywords: &[S], k: usize) -> Vec<AnswerTree> {
        let l = keywords.len();
        if l == 0 || k == 0 {
            return Vec::new();
        }
        let mut groups: Vec<Expansion> = Vec::with_capacity(l);
        for kw in keywords {
            let sources = self.g.keyword_nodes(kw.as_ref());
            if sources.is_empty() {
                return Vec::new();
            }
            let mut e = Expansion {
                heap: BinaryHeap::new(),
                dist: HashMap::new(),
                pred: HashMap::new(),
                radius: 0.0,
            };
            for s in sources.iter() {
                e.dist.insert(s, 0.0);
                let a = self.activation(0.0, self.g.degree(s), 0);
                e.heap.push(std::cmp::Reverse((Score(-a), s)));
            }
            groups.push(e);
        }
        let full: u32 = (1 << l) - 1;
        let mut settled_by: HashMap<NodeId, u32> = HashMap::new();
        let mut topk: TopK<NodeId> = TopK::new(k);
        let mut work = 0usize;

        loop {
            // Pick the group whose frontier head has the highest activation.
            let next = groups
                .iter()
                .enumerate()
                .filter_map(|(i, e)| {
                    e.heap
                        .peek()
                        .map(|std::cmp::Reverse((Score(na), _))| (i, *na))
                })
                .min_by(|a, b| a.1.total_cmp(&b.1)); // most-negative = highest activation
            let Some((gi, _)) = next else { break };

            // Settle the head of group gi (skipping stale entries).
            let settled = loop {
                let Some(std::cmp::Reverse((_, u))) = groups[gi].heap.pop() else {
                    break None;
                };
                let d = groups[gi].dist[&u];
                // A node can appear multiple times with different activations;
                // settle only the first pop per (group, node).
                let mask = settled_by.get(&u).copied().unwrap_or(0);
                if mask & (1 << gi) != 0 {
                    continue;
                }
                break Some((u, d));
            };
            let Some((node, d)) = settled else { continue };
            groups[gi].radius = groups[gi].radius.max(d);
            self.nodes_expanded += 1;
            work += 1;

            let mask = settled_by.entry(node).or_insert(0);
            *mask |= 1 << gi;
            let boost = mask.count_ones();
            if *mask == full {
                let cost: f64 = groups.iter().map(|e| e.dist[&node]).sum();
                topk.push(-cost, node);
            }
            // Relax neighbors for group gi.
            for &(v, w) in self.g.neighbors(node) {
                let nd = d + w;
                if groups[gi].dist.get(&v).is_none_or(|&cur| nd < cur) {
                    groups[gi].dist.insert(v, nd);
                    groups[gi].pred.insert(v, node);
                    let vboost = settled_by
                        .get(&v)
                        .map(|m| m.count_ones())
                        .unwrap_or(0)
                        .max(boost - 1);
                    let a = self.activation(nd, self.g.degree(v), vboost);
                    groups[gi].heap.push(std::cmp::Reverse((Score(-a), v)));
                }
            }
            // Stop: sound radius bound (using per-group max settled distance)
            // or work budget.
            if topk.is_full() {
                let kth_cost = -topk.threshold().expect("full");
                let min_radius = groups
                    .iter()
                    .map(|e| e.radius)
                    .fold(f64::INFINITY, f64::min);
                if kth_cost <= min_radius || work >= self.work_budget {
                    break;
                }
            }
        }

        // Reuse BANKS I's tree construction by replaying preds.
        topk.into_sorted_vec()
            .into_iter()
            .map(|(neg_cost, root)| build_tree_from_preds(self.g, root, -neg_cost, &groups))
            .collect()
    }
}

fn build_tree_from_preds(
    g: &DataGraph,
    root: NodeId,
    _rank_cost: f64,
    groups: &[Expansion],
) -> AnswerTree {
    use crate::answer::norm_edge;
    let mut edges = Vec::new();
    let mut matches = Vec::with_capacity(groups.len());
    for e in groups {
        let mut n = root;
        while let Some(&p) = e.pred.get(&n) {
            edges.push(norm_edge(n, p));
            n = p;
        }
        matches.push(n);
    }
    edges.sort();
    edges.dedup();
    let (tree_edges, cost) = crate::banks1::prune_to_tree_pub(g, root, &edges, &matches);
    AnswerTree {
        root,
        edges: tree_edges,
        matches,
        cost,
    }
}

/// Dijkstra-quality caveat of the activation ordering: a node can be settled
/// before its true shortest distance is final. BANKS II accepts this (it is
/// a heuristic engine); the answer trees remain *valid* because edges come
/// from actual pred pointers — only costs may be slightly above optimal.
#[cfg(test)]
mod tests {
    use super::*;
    use crate::banks1::BanksI;

    fn slide30() -> DataGraph {
        let mut g = DataGraph::new();
        let a = g.add_node("n", "k1");
        let b = g.add_node("n", "");
        let c = g.add_node("n", "k2");
        let d = g.add_node("n", "k3");
        let e = g.add_node("n", "k1");
        g.add_edge(a, b, 5.0);
        g.add_edge(b, c, 2.0);
        g.add_edge(b, d, 3.0);
        g.add_edge(a, c, 6.0);
        g.add_edge(a, d, 7.0);
        g.add_edge(e, b, 10.0);
        g.add_edge(e, c, 11.0);
        g
    }

    #[test]
    fn finds_valid_answers() {
        let g = slide30();
        let mut b2 = BanksII::new(&g);
        let res = b2.search(&["k1", "k2", "k3"], 3);
        assert!(!res.is_empty());
        for t in &res {
            t.validate(&g, &["k1", "k2", "k3"]).unwrap();
        }
    }

    #[test]
    fn answer_cost_close_to_banks1() {
        let g = slide30();
        let b1 = BanksI::new(&g);
        let mut b2 = BanksII::new(&g);
        let r1 = b1.search(&["k1", "k2", "k3"], 1);
        let r2 = b2.search(&["k1", "k2", "k3"], 1);
        assert!(!r1.is_empty() && !r2.is_empty());
        // heuristic: within 2x of BANKS I's best on this tiny graph
        assert!(r2[0].cost <= 2.0 * r1[0].cost + 1e-9);
    }

    #[test]
    fn missing_keyword_is_empty() {
        let g = slide30();
        let mut b2 = BanksII::new(&g);
        assert!(b2.search(&["k1", "zzz"], 3).is_empty());
    }

    #[test]
    fn work_budget_limits_expansion() {
        let g = slide30();
        let mut b2 = BanksII::new(&g);
        b2.work_budget = 6;
        let _ = b2.search(&["k1", "k2", "k3"], 10);
        // budget engages only after top-k is full; still bounded well below
        // exhaustive expansion of all (group, node) pairs
        assert!(b2.nodes_expanded <= 15);
    }

    #[test]
    fn prefers_low_degree_paths_first() {
        // star center h with many leaves vs a quiet 2-path: activation should
        // find the quiet meeting point with less expansion than settling the
        // whole star at equal radius would need.
        let mut g = DataGraph::new();
        let x = g.add_node("n", "q1");
        let m = g.add_node("n", "");
        let y = g.add_node("n", "q2");
        g.add_edge(x, m, 1.0);
        g.add_edge(m, y, 1.0);
        let hub = g.add_node("n", "q1");
        for i in 0..20 {
            let leaf = g.add_node("n", &format!("leaf{i}"));
            g.add_edge(hub, leaf, 1.0);
        }
        let mut b2 = BanksII::new(&g);
        let res = b2.search(&["q1", "q2"], 1);
        // Best distinct-root cost on the quiet path is 2 (roots x, m, y tie);
        // the star component is unreachable from q2 so it can never win.
        assert_eq!(res[0].cost, 2.0);
        assert!([x, m, y].contains(&res[0].root));
        assert!(b2.nodes_expanded < g.node_count() * 2);
    }
}
