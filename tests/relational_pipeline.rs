//! Integration: the full relational keyword-search pipeline on generated
//! DBLP data — tuple sets → CNs → executors → sharing → parallelism agree
//! with each other.

use kwdb::datasets::{dblp::sample_queries, generate_dblp, DblpConfig};
use kwdb::relational::ExecStats;
use kwdb::relsearch::cn::{CnGenConfig, CnGenerator, MaskOracle};
use kwdb::relsearch::eval::evaluate_cn;
use kwdb::relsearch::mesh::evaluate_shared;
use kwdb::relsearch::parallel::{estimate_cost, execute_parallel, partition_lpt};
use kwdb::relsearch::spark::{naive_spark, skyline_sweep};
use kwdb::relsearch::topk::{global_pipeline, naive, sparse, TopKQuery};
use kwdb::relsearch::{CandidateNetwork, ResultScorer, TupleSets};

fn setup(
    db: &kwdb::relational::Database,
    keywords: &[String],
) -> (TupleSets, Vec<CandidateNetwork>) {
    let ts = TupleSets::build(db, keywords).unwrap();
    let oracle = MaskOracle::from_tuplesets(&ts);
    let mut generator = CnGenerator::new(
        db.schema_graph(),
        &oracle,
        CnGenConfig {
            max_size: 4,
            dedupe: true,
            max_cns: 500,
        },
    );
    let cns = generator.generate();
    (ts, cns)
}

#[test]
fn executors_agree_across_many_generated_queries() {
    let db = generate_dblp(&DblpConfig {
        n_authors: 50,
        n_papers: 120,
        ..Default::default()
    });
    let scorer = ResultScorer::new(&db);
    for query in sample_queries(&db, 6, 2, 99) {
        let (ts, cns) = setup(&db, &query);
        let q = TopKQuery {
            db: &db,
            ts: &ts,
            cns: &cns,
            scorer: &scorer,
            keywords: &query,
        };
        let s = ExecStats::new();
        let a: Vec<f64> = naive(&q, 5, &s).iter().map(|r| r.score).collect();
        let b: Vec<f64> = sparse(&q, 5, &s).iter().map(|r| r.score).collect();
        let c: Vec<f64> = global_pipeline(&q, 5, &s).iter().map(|r| r.score).collect();
        assert_eq!(a, b, "sparse != naive for {query:?}");
        assert_eq!(a, c, "pipeline != naive for {query:?}");
    }
}

#[test]
fn spark_sweep_agrees_with_naive_spark() {
    let db = generate_dblp(&DblpConfig {
        n_authors: 40,
        n_papers: 80,
        ..Default::default()
    });
    let scorer = ResultScorer::new(&db);
    for query in sample_queries(&db, 4, 2, 123) {
        let (ts, cns) = setup(&db, &query);
        let q = TopKQuery {
            db: &db,
            ts: &ts,
            cns: &cns,
            scorer: &scorer,
            keywords: &query,
        };
        let s = ExecStats::new();
        let a: Vec<f64> = naive_spark(&q, 5, &s).iter().map(|r| r.score).collect();
        let b: Vec<f64> = skyline_sweep(&q, 5, &s).iter().map(|r| r.score).collect();
        for (x, y) in a.iter().zip(&b) {
            assert!(
                (x - y).abs() < 1e-9,
                "spark mismatch for {query:?}: {a:?} vs {b:?}"
            );
        }
        assert_eq!(a.len(), b.len());
    }
}

#[test]
fn mesh_and_parallel_match_independent_evaluation() {
    let db = generate_dblp(&DblpConfig {
        n_authors: 40,
        n_papers: 100,
        ..Default::default()
    });
    let query: Vec<String> = vec!["data".into(), "query".into()];
    let (ts, cns) = setup(&db, &query);
    assert!(!cns.is_empty());
    // independent counts
    let s = ExecStats::new();
    let independent: Vec<usize> = cns
        .iter()
        .map(|cn| evaluate_cn(&db, cn, &ts, &s).len())
        .collect();
    // mesh
    let (shared, mesh_stats) = evaluate_shared(&db, &ts, &cns, &s);
    let mesh_counts: Vec<usize> = shared.iter().map(|r| r.len()).collect();
    assert_eq!(independent, mesh_counts);
    assert!(mesh_stats.cache_hits > 0, "CNs overlap, the cache must hit");
    // parallel
    let costs: Vec<f64> = cns.iter().map(|cn| estimate_cost(&db, &ts, cn)).collect();
    let assignment = partition_lpt(&costs, 4);
    let par_counts = execute_parallel(&db, &ts, &cns, &assignment, 4, &s);
    assert_eq!(independent, par_counts);
}

#[test]
fn every_result_covers_every_keyword() {
    let db = generate_dblp(&DblpConfig {
        n_papers: 60,
        ..Default::default()
    });
    let scorer = ResultScorer::new(&db);
    let query: Vec<String> = vec!["data".into(), "search".into()];
    let (ts, cns) = setup(&db, &query);
    let q = TopKQuery {
        db: &db,
        ts: &ts,
        cns: &cns,
        scorer: &scorer,
        keywords: &query,
    };
    let s = ExecStats::new();
    for hit in naive(&q, 50, &s) {
        let toks: Vec<String> = hit
            .result
            .tuples
            .iter()
            .flat_map(|&t| db.tuple_tokens(t))
            .collect();
        for kw in &query {
            assert!(toks.iter().any(|t| t == kw), "missing {kw}");
        }
    }
}
