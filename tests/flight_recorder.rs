//! Contract of the always-on flight recorder under concurrency.
//!
//! The ring is bounded and lock-striped; these tests pin down the three
//! guarantees callers lean on: the ring never exceeds its capacity (and
//! accounts every overwrite), the most recent query is never the one lost
//! to a lagging writer, and — because appends happen at the same seal
//! point as registry recording — a serial and a concurrent run of the same
//! deterministic batch leave identical record multisets behind.

use kwdb::common::{Budget, CacheConfig};
use kwdb::datasets::{self, generate_dblp, DblpConfig};
use kwdb::dispatch::{Catalog, Dispatcher};
use kwdb::engine::{
    GraphEngine, GraphSemantics, RelationalConfig, RelationalEngine, SearchRequest, XmlEngine,
};
use kwdb::obs::{families, query_digest, MetricsRegistry, SamplePolicy, TraceLevel};
use std::sync::Arc;

fn dblp_engine(registry: &Arc<MetricsRegistry>) -> RelationalEngine {
    // One intra-query worker keeps every request bit-for-bit reproducible
    // (and the algorithm label machine-independent) — same reasoning as
    // tests/observability.rs. The result cache is pinned off so record
    // multisets don't depend on arrival order (a capped request and an
    // uncapped twin share a term set; hit-vs-miss would flip truncation).
    RelationalEngine::with_config(
        generate_dblp(&DblpConfig {
            n_papers: 60,
            n_authors: 30,
            ..Default::default()
        }),
        RelationalConfig {
            intra_query_workers: 1,
            result_cache: CacheConfig::disabled(),
            ..Default::default()
        },
    )
    .with_registry(Arc::clone(registry))
}

fn catalog(registry: &Arc<MetricsRegistry>) -> Catalog {
    let mut c = Catalog::new();
    c.register("dblp", dblp_engine(registry));
    c.register(
        "social",
        GraphEngine::new(datasets::graphs::generate_graph(&Default::default()))
            .with_result_cache(CacheConfig::disabled())
            .with_registry(Arc::clone(registry)),
    );
    c.register(
        "bib",
        XmlEngine::from_tree(datasets::generate_bib_xml(&Default::default()))
            .with_result_cache(CacheConfig::disabled())
            .with_registry(Arc::clone(registry)),
    );
    c
}

/// Deterministic mixed batch: candidate caps only, no wall-clock deadlines.
fn mixed_batch() -> Vec<(String, SearchRequest)> {
    let mut batch = Vec::new();
    for i in 0..60usize {
        let k = 1 + i % 4;
        let req = match i % 5 {
            0 => ("dblp", SearchRequest::new("data query").k(k)),
            1 => (
                "social",
                SearchRequest::new("kw0 kw1")
                    .k(k)
                    .semantics(GraphSemantics::SteinerExact),
            ),
            2 => (
                "social",
                SearchRequest::new("kw0 kw1")
                    .k(k)
                    .semantics(GraphSemantics::DistinctRoot),
            ),
            3 => ("bib", SearchRequest::new("data query").k(k)),
            _ => (
                "dblp",
                SearchRequest::new("query data")
                    .k(k)
                    .budget(Budget::unlimited().with_max_candidates(1 + (i % 3) as u64)),
            ),
        };
        batch.push((req.0.to_string(), req.1));
    }
    batch
}

#[test]
fn ring_is_bounded_and_never_loses_the_latest_query() {
    const CAPACITY: usize = 16;
    const THREADS: usize = 8;
    const PER_THREAD: usize = 25;
    let reg = Arc::new(MetricsRegistry::with_flight_capacity(CAPACITY));
    let engine = Arc::new(dblp_engine(&reg));

    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let engine = Arc::clone(&engine);
            scope.spawn(move || {
                for i in 0..PER_THREAD {
                    engine
                        .execute(&SearchRequest::new("data query").k(1 + (t + i) % 3))
                        .unwrap();
                }
            });
        }
    });
    // After the storm quiesces, one more query: the "latest". The seq-guard
    // in the ring means a lagging overwrite can never evict it.
    engine
        .execute(&SearchRequest::new("xml data search").k(2))
        .unwrap();

    let flight = reg.flight();
    let total = (THREADS * PER_THREAD + 1) as u64;
    assert_eq!(flight.appended(), total);
    assert_eq!(flight.len(), CAPACITY, "full ring holds exactly capacity");
    assert_eq!(flight.dropped(), total - CAPACITY as u64);

    let dump = flight.dump();
    assert_eq!(dump.records.len(), CAPACITY);
    assert!(dump.records.len() <= dump.capacity);
    let latest = dump
        .records
        .iter()
        .max_by_key(|r| r.seq)
        .expect("ring is non-empty");
    assert_eq!(latest.seq, total - 1, "latest append survives");
    assert_eq!(latest.digest, query_digest("xml data search"));
    // self-instruments agree with the ring
    assert_eq!(
        reg.counter_family_total(families::FLIGHT_DROPPED),
        flight.dropped()
    );
    assert_eq!(
        reg.gauge(families::FLIGHT_ENTRIES, &[]).get(),
        CAPACITY as i64
    );
}

#[test]
fn seeded_policy_samples_deterministically_in_serial() {
    let reg = Arc::new(MetricsRegistry::new());
    reg.set_sample_policy(SamplePolicy::every(3));
    let engine = dblp_engine(&reg);

    for _ in 0..9 {
        let resp = engine
            .execute(&SearchRequest::new("data query").k(2))
            .unwrap();
        // tracing is policy-driven, never caller-requested here
        let _ = resp;
    }
    let dump = reg.flight().dump();
    assert_eq!(dump.records.len(), 9);
    let sampled: Vec<u64> = dump
        .records
        .iter()
        .filter(|r| r.sampled)
        .map(|r| r.seq)
        .collect();
    assert_eq!(sampled, vec![2, 5, 8], "every 3rd arrival is promoted");
    for r in &dump.records {
        assert_eq!(
            r.sampled,
            r.trace.is_some(),
            "seq {}: sampled records (and only they) carry traces",
            r.seq
        );
    }
    assert_eq!(reg.counter_family_total(families::TRACE_SAMPLED), 3);

    // A caller already asking for a full trace doesn't consume a tick.
    let reg2 = Arc::new(MetricsRegistry::new());
    reg2.set_sample_policy(SamplePolicy::every(2));
    let engine2 = dblp_engine(&reg2);
    engine2
        .execute(
            &SearchRequest::new("data query")
                .k(2)
                .trace(TraceLevel::Full),
        )
        .unwrap();
    engine2
        .execute(&SearchRequest::new("data query").k(2))
        .unwrap();
    engine2
        .execute(&SearchRequest::new("data query").k(2))
        .unwrap();
    let dump2 = reg2.flight().dump();
    assert!(!dump2.records[0].sampled, "explicit trace is not 'sampled'");
    assert!(dump2.records[0].trace.is_some());
    assert!(!dump2.records[1].sampled, "tick 1 of 2");
    assert!(dump2.records[2].sampled, "tick 2 of 2 promotes");
}

#[test]
fn serial_and_concurrent_runs_leave_identical_record_multisets() {
    let batch = mixed_batch();

    let reg_serial = Arc::new(MetricsRegistry::new());
    let serial = Dispatcher::new(catalog(&reg_serial))
        .with_registry(Arc::clone(&reg_serial))
        .execute_serial(&batch);
    let reg_conc = Arc::new(MetricsRegistry::new());
    let concurrent = Dispatcher::with_workers(catalog(&reg_conc), 8)
        .with_registry(Arc::clone(&reg_conc))
        .execute_concurrent(&batch);
    assert!(serial.responses.iter().all(|r| r.is_ok()));
    assert!(concurrent.responses.iter().all(|r| r.is_ok()));

    // Identity of a record minus its timings and ring position: with
    // candidate-cap-only budgets both runs did exactly the same work, so
    // the two rings must hold the same multiset of these. Cache outcome is
    // excluded: duplicate queries racing on a cold cache can all miss
    // before the first populates it, so hit/miss splits legitimately
    // depend on interleaving.
    let key = |r: &kwdb::obs::QueryRecord| {
        (
            r.engine.clone(),
            r.algorithm.clone(),
            r.digest.clone(),
            r.k,
            r.workers,
            r.truncation.map(|t| t.to_string()),
        )
    };
    let mut serial_keys: Vec<_> = reg_serial.flight().dump().records.iter().map(key).collect();
    let mut conc_keys: Vec<_> = reg_conc.flight().dump().records.iter().map(key).collect();
    assert_eq!(
        serial_keys.len(),
        batch.len(),
        "default capacity retains all"
    );
    serial_keys.sort();
    conc_keys.sort();
    assert_eq!(serial_keys, conc_keys);

    // And the dump round-trips exactly through its JSON format.
    let dump = reg_conc.flight().dump();
    let rt = kwdb::obs::FlightDump::from_json(&dump.to_json()).expect("round-trip parse");
    assert_eq!(rt, dump);
}
