//! Integration: slide 12's ambiguity pipeline as one session over the
//! product dataset — correction, completion, guaranteed cleaning,
//! translation and rewriting all working against the same database.

use kwdb::datasets::products::{corrupt, generate_laptops, product_query_log};
use kwdb::qclean::autocomplete::{tastier_search, ForwardIndex, Trie};
use kwdb::qclean::keywordpp::{KeywordPlusPlus, Mapping};
use kwdb::qclean::rewrite::similar_values;
use kwdb::qclean::spell::SpellCorrector;
use kwdb::qclean::xclean::clean_with_guarantee;

fn corrector(db: &kwdb::relational::Database) -> SpellCorrector {
    let ix = db.text_index().expect("index built");
    SpellCorrector::from_vocab(ix.terms().map(|t| (t.to_string(), ix.doc_freq(t) as u64)))
}

#[test]
fn corrupted_vocabulary_words_are_recovered() {
    let (db, _) = generate_laptops(40, 5);
    let sc = corrector(&db);
    let ix = db.text_index().expect("index built");
    let mut recovered = 0;
    let mut total = 0;
    for (i, term) in ix.terms().enumerate().take(30) {
        if term.len() < 4 {
            continue;
        }
        total += 1;
        let bad = corrupt(term, i as u64);
        if let Some(c) = sc.correct(&bad, 2) {
            if c.word == term {
                recovered += 1;
            }
        }
    }
    assert!(
        recovered * 10 >= total * 7,
        "recovery rate too low: {recovered}/{total}"
    );
}

#[test]
fn xclean_guarantee_holds_against_the_real_database() {
    let (db, table) = generate_laptops(40, 5);
    let sc = corrector(&db);
    let oracle = |tokens: &[String]| -> bool {
        db.table(table).iter().any(|(rid, _)| {
            let toks = db.tuple_tokens(kwdb::relational::TupleId::new(table, rid));
            tokens.iter().all(|t| toks.iter().any(|x| x == t))
        })
    };
    let dirty: Vec<String> = vec!["lenvo".into(), "laptp".into()];
    let cleaned = clean_with_guarantee(&sc, &dirty, 2, oracle).expect("cleanable");
    assert!(oracle(&cleaned.tokens), "guarantee violated");
    assert_eq!(cleaned.tokens, vec!["lenovo", "laptop"]);
}

#[test]
fn autocomplete_prefix_query_over_products() {
    let (db, table) = generate_laptops(50, 9);
    let ix = db.text_index().expect("index built");
    let trie = Trie::build(ix.terms().map(|t| t.to_string()));
    let mut fwd = ForwardIndex::new();
    for (rid, _) in db.table(table).iter() {
        for tok in db.tuple_tokens(kwdb::relational::TupleId::new(table, rid)) {
            if let Some(id) = trie.token_id(&tok) {
                fwd.add(rid.0 as u64, id);
            }
        }
    }
    let (_, hp_gaming) = tastier_search(&trie, &fwd, &["pavil", "gam"]);
    assert!(
        !hp_gaming.is_empty(),
        "HP pavilion gaming laptops must match"
    );
    // all survivors really contain both prefixes
    for &e in &hp_gaming {
        let toks = db.tuple_tokens(kwdb::relational::TupleId::new(
            table,
            kwdb::relational::RowId(e as u32),
        ));
        assert!(toks.iter().any(|t| t.starts_with("pavil")));
        assert!(toks.iter().any(|t| t.starts_with("gam")));
    }
}

#[test]
fn keywordpp_learns_brand_alias_on_generated_data() {
    let (db, table) = generate_laptops(50, 11);
    let mut kpp = KeywordPlusPlus::new(&db, table, vec![1], vec![2, 3]);
    kpp.learn(&product_query_log(13, 40));
    match kpp.mapping("ibm") {
        Some(Mapping::Eq { value, .. }) => {
            assert_eq!(value.as_text(), Some("Lenovo"));
        }
        other => panic!("ibm should map to Brand=Lenovo, got {other:?}"),
    }
    match kpp.mapping("small") {
        Some(Mapping::OrderBy { ascending, .. }) => assert!(*ascending),
        other => panic!("small should map to ORDER BY screen ASC, got {other:?}"),
    }
}

#[test]
fn data_only_rewriting_finds_same_segment_products() {
    let (db, table) = generate_laptops(60, 21);
    // brands sharing screen/price profiles should be mutually similar;
    // just assert the mechanism produces ranked, non-self results
    let sims = similar_values(&db, table, 1, "Lenovo", 4);
    assert!(!sims.is_empty());
    assert!(sims.iter().all(|(v, _)| v != "Lenovo"));
    assert!(sims.windows(2).all(|w| w[0].1 >= w[1].1));
}
