//! Concurrency contract of the owned engines and the dispatcher.
//!
//! The ownership refactor promises: every engine is `Send + Sync` (checked
//! at compile time below), one shared engine instance serves many threads,
//! the CN plan cache generates each plan exactly once under a thundering
//! herd, per-query stats are race-free, and concurrent dispatch returns
//! results identical to serial execution.

use kwdb::common::{Budget, CacheConfig, QueryStats};
use kwdb::datasets::{self, generate_dblp, DblpConfig};
use kwdb::dispatch::{Catalog, Dispatcher};
use kwdb::engine::{
    Engine, GraphEngine, GraphSemantics, RelationalConfig, RelationalEngine, SearchRequest,
    XmlEngine,
};
use std::sync::Arc;

// ---- compile-time thread-safety contract --------------------------------

const _: () = {
    const fn assert_send_sync<T: Send + Sync + ?Sized>() {}
    assert_send_sync::<RelationalEngine>();
    assert_send_sync::<GraphEngine>();
    assert_send_sync::<XmlEngine>();
    assert_send_sync::<Arc<dyn Engine>>();
    assert_send_sync::<Catalog>();
    assert_send_sync::<Dispatcher>();
};

fn dblp() -> kwdb::relational::Database {
    generate_dblp(&DblpConfig {
        n_papers: 80,
        n_authors: 40,
        ..Default::default()
    })
}

fn catalog() -> Catalog {
    let mut c = Catalog::new();
    // One intra-query worker: the dispatch-equality test below replays
    // candidate-capped requests, and which CNs a multi-worker run reaches
    // before the cap is timing-dependent. Serial execution keeps truncated
    // hits and operator totals identical between serial and concurrent
    // dispatch (inter-query concurrency is what this suite exercises).
    c.register(
        "dblp",
        RelationalEngine::with_config(
            dblp(),
            RelationalConfig {
                intra_query_workers: 1,
                ..Default::default()
            },
        ),
    );
    c.register(
        "social",
        GraphEngine::new(datasets::graphs::generate_graph(&Default::default())),
    );
    c.register(
        "bib",
        XmlEngine::from_tree(datasets::generate_bib_xml(&Default::default())),
    );
    c
}

// ---- trait-object dispatch ----------------------------------------------

#[test]
fn catalog_dispatches_all_three_models_through_the_trait() {
    let c = catalog();
    let cases = [
        ("dblp", "data query", "relational"),
        ("social", "kw0 kw1", "graph"),
        ("bib", "data query", "xml"),
    ];
    for (name, query, kind) in cases {
        let resp = c.execute(name, &SearchRequest::new(query).k(3)).unwrap();
        assert!(!resp.hits.is_empty(), "{name}: no hits");
        assert!(resp.hits.iter().all(|h| h.kind() == kind), "{name}");
        assert!(
            resp.hits.windows(2).all(|w| w[0].score() >= w[1].score()),
            "{name}: hits must come back ranked through the trait too"
        );
    }
    let err = c
        .execute("missing", &SearchRequest::new("x"))
        .unwrap_err()
        .to_string();
    assert!(err.contains("missing"));
}

// ---- CN plan cache under a thundering herd ------------------------------

#[test]
fn cn_plan_cache_generates_exactly_once_under_contention() {
    // Result cache off: this herd must contend on the *plan* cache, not be
    // absorbed by the response cache one level up.
    let engine = Arc::new(RelationalEngine::with_config(
        dblp(),
        RelationalConfig {
            result_cache: CacheConfig::disabled(),
            ..Default::default()
        },
    ));
    let n_threads = 8;
    let responses: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..n_threads)
            .map(|i| {
                let engine = Arc::clone(&engine);
                // half the threads phrase the query in reverse order: the
                // cache key is the sorted term set, so they must share a plan
                let query = if i % 2 == 0 {
                    "data query"
                } else {
                    "query data"
                };
                scope.spawn(move || engine.execute(&SearchRequest::new(query).k(5)).unwrap())
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let misses: u64 = responses.iter().map(|r| r.stats.cache_misses).sum();
    let hits: u64 = responses.iter().map(|r| r.stats.cache_hits).sum();
    assert_eq!(misses, 1, "exactly one thread may generate the plan");
    assert_eq!(
        hits,
        n_threads as u64 - 1,
        "every other thread must reuse it"
    );

    // identical plans ⇒ identical CN counts and identical ranked results
    let first = &responses[0];
    for r in &responses[1..] {
        assert_eq!(
            r.stats.candidates_generated,
            first.stats.candidates_generated
        );
        assert_eq!(
            format!("{:?}", r.hits),
            format!("{:?}", first.hits),
            "all threads must see the same ranked hits"
        );
    }
}

// ---- per-query stats are race-free --------------------------------------

#[test]
fn graph_engine_counters_do_not_bleed_across_threads() {
    // Pre-refactor the BLINKS counters were engine-level `Cell`s; two
    // concurrent queries would have added into the same counters. Now each
    // query gets its own: N identical queries must report identical,
    // serial-equal counts.
    // Result cache off: every thread must actually run the search to
    // report its own counters.
    let engine = Arc::new(
        GraphEngine::new(datasets::graphs::generate_graph(&Default::default()))
            .with_result_cache(CacheConfig::disabled()),
    );
    let req = SearchRequest::new("kw0 kw1")
        .k(3)
        .semantics(GraphSemantics::DistinctRoot);
    // warm the shared BLINKS index so every thread measures only the search
    let serial = engine.execute(&req).unwrap();
    let responses: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let (engine, req) = (Arc::clone(&engine), req.clone());
                scope.spawn(move || engine.execute(&req).unwrap())
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for r in &responses {
        assert_eq!(
            r.stats.operators.sorted_accesses,
            serial.stats.operators.sorted_accesses
        );
        assert_eq!(
            r.stats.operators.random_accesses,
            serial.stats.operators.random_accesses
        );
        assert_eq!(format!("{:?}", r.hits), format!("{:?}", serial.hits));
    }
}

// ---- pre/post-refactor ground truth -------------------------------------

#[test]
fn blinks_stats_match_pre_refactor_values() {
    // Captured on the seeded default graph before the Cell → per-query
    // stats refactor: the counter totals are part of the observable
    // contract and must not drift.
    let engine = GraphEngine::new(datasets::graphs::generate_graph(&Default::default()));
    let resp = engine
        .execute(
            &SearchRequest::new("kw0 kw1")
                .k(3)
                .semantics(GraphSemantics::DistinctRoot),
        )
        .unwrap();
    assert_eq!(resp.stats.operators.sorted_accesses, 58);
    assert_eq!(resp.stats.operators.random_accesses, 116);
    let costs: Vec<f64> = resp.hits.iter().map(|t| t.cost).collect();
    assert_eq!(costs, vec![5.0, 5.0, 5.0]);

    let banks = engine
        .execute(
            &SearchRequest::new("kw0 kw1")
                .k(3)
                .semantics(GraphSemantics::Banks),
        )
        .unwrap();
    assert_eq!(banks.stats.operators.tuples_scanned, 172);
    let dpbf = engine
        .execute(
            &SearchRequest::new("kw0 kw1")
                .k(3)
                .semantics(GraphSemantics::SteinerExact),
        )
        .unwrap();
    assert_eq!(dpbf.stats.operators.tuples_scanned, 212);
}

// ---- the dispatcher stress test -----------------------------------------

/// A deterministic mixed batch: relational, graph (all three semantics),
/// and XML requests, some with candidate-cap budgets (deterministic, unlike
/// wall-clock deadlines), some against an unknown engine.
fn mixed_batch(n: usize) -> Vec<(String, SearchRequest)> {
    let rel_queries = ["data query", "query data", "xml search", "data", "xml data"];
    let graph_queries = ["kw0 kw1", "kw1 kw2", "kw0 kw2", "kw0 kw1 kw2"];
    let xml_queries = ["data query", "xml data", "search"];
    let mut batch = Vec::with_capacity(n);
    for i in 0..n {
        let budget = match i % 3 {
            0 => Budget::unlimited(),
            1 => Budget::unlimited().with_max_candidates(4),
            _ => Budget::unlimited().with_max_candidates(64),
        };
        let (name, req) = match i % 4 {
            0 => (
                "dblp",
                SearchRequest::new(rel_queries[i % rel_queries.len()]).k(1 + i % 7),
            ),
            1 => {
                let sem = match i % 3 {
                    0 => GraphSemantics::SteinerExact,
                    1 => GraphSemantics::Banks,
                    _ => GraphSemantics::DistinctRoot,
                };
                (
                    "social",
                    SearchRequest::new(graph_queries[i % graph_queries.len()])
                        .k(1 + i % 5)
                        .semantics(sem),
                )
            }
            2 => (
                "bib",
                SearchRequest::new(xml_queries[i % xml_queries.len()]).k(1 + i % 9),
            ),
            _ => {
                if i % 16 == 3 {
                    ("nope", SearchRequest::new("data"))
                } else {
                    (
                        "dblp",
                        SearchRequest::new(rel_queries[(i / 4) % rel_queries.len()]).k(3),
                    )
                }
            }
        };
        batch.push((name.to_string(), req.budget(budget)));
    }
    batch
}

#[test]
fn concurrent_dispatch_is_identical_to_serial() {
    // Result caching off fleet-wide: the serial pass would otherwise warm
    // the result caches and the concurrent pass would measure cache serving
    // instead of concurrent execution (operator totals would collapse).
    let dispatcher = Dispatcher::with_workers(catalog(), 8).with_result_caching(false);
    let batch = mixed_batch(64);

    let serial = dispatcher.execute_serial(&batch);
    let concurrent = dispatcher.execute_concurrent(&batch);

    assert_eq!(serial.responses.len(), concurrent.responses.len());
    for (i, (s, c)) in serial
        .responses
        .iter()
        .zip(concurrent.responses.iter())
        .enumerate()
    {
        match (s, c) {
            (Ok(s), Ok(c)) => {
                assert_eq!(
                    format!("{:?}", s.hits),
                    format!("{:?}", c.hits),
                    "request {i}: hits diverge between serial and concurrent"
                );
                assert_eq!(s.truncation, c.truncation, "request {i}");
            }
            (Err(se), Err(ce)) => assert_eq!(se.to_string(), ce.to_string(), "request {i}"),
            _ => panic!("request {i}: serial and concurrent disagree on success"),
        }
    }

    // deterministic operator counters must merge to the same totals
    // (cache hit/miss split differs: the serial run warms caches in order,
    // concurrent threads race for them — but hits + misses is invariant)
    assert_eq!(
        serial.totals.operators.tuples_scanned,
        concurrent.totals.operators.tuples_scanned
    );
    assert_eq!(
        serial.totals.operators.sorted_accesses,
        concurrent.totals.operators.sorted_accesses
    );
    assert_eq!(
        serial.totals.candidates_generated,
        concurrent.totals.candidates_generated
    );
    assert_eq!(
        serial.totals.cache_hits + serial.totals.cache_misses,
        concurrent.totals.cache_hits + concurrent.totals.cache_misses
    );
    assert_eq!(serial.responses.iter().filter(|r| r.is_err()).count(), 4);
}

#[test]
fn one_shared_engine_serves_eight_threads_times_fifty_queries() {
    // The headline stress case: a single relational engine instance,
    // shared, hammered by 8 workers × 50+ queries, checked hit-for-hit
    // against the serial run.
    // Both dispatchers share one database but get their own cold engine,
    // so the concurrent run can't coast on the serial run's warm plan cache.
    let db = Arc::new(dblp());
    // Caching off: every one of the 400 queries must reach the planner for
    // the plan-cache accounting below to be exhaustive.
    let dispatcher_for = |db: &Arc<kwdb::relational::Database>| {
        let mut c = Catalog::new();
        c.register("dblp", RelationalEngine::new(Arc::clone(db)));
        Dispatcher::with_workers(c, 8).with_result_caching(false)
    };

    let queries = [
        "data query",
        "xml search",
        "query data",
        "xml data",
        "search data",
    ];
    let batch: Vec<(String, SearchRequest)> = (0..400)
        .map(|i| {
            (
                "dblp".to_string(),
                SearchRequest::new(queries[i % queries.len()]).k(1 + i % 6),
            )
        })
        .collect();

    let serial = dispatcher_for(&db).execute_serial(&batch);
    let concurrent = dispatcher_for(&db).execute_concurrent(&batch);
    for (s, c) in serial.responses.iter().zip(concurrent.responses.iter()) {
        let (s, c) = (s.as_ref().unwrap(), c.as_ref().unwrap());
        assert_eq!(format!("{:?}", s.hits), format!("{:?}", c.hits));
        assert_eq!(s.truncation, c.truncation);
    }
    // 4 distinct term sets ("data query" and "query data" share a plan):
    // even with 8 threads racing on a cold cache, each plan must be
    // generated exactly once
    assert_eq!(serial.totals.cache_misses, 4);
    assert_eq!(concurrent.totals.cache_misses, 4);
    assert_eq!(
        concurrent.totals.cache_hits + concurrent.totals.cache_misses,
        400
    );
}

// ---- merged totals ------------------------------------------------------

#[test]
fn dispatch_totals_equal_sum_of_response_stats() {
    let dispatcher = Dispatcher::with_workers(catalog(), 4);
    let batch = mixed_batch(24);
    let out = dispatcher.execute_concurrent(&batch);
    let mut by_hand = QueryStats::new();
    for r in out.successes() {
        by_hand.merge(&r.stats);
    }
    assert_eq!(
        out.totals.operators.tuples_scanned,
        by_hand.operators.tuples_scanned
    );
    assert_eq!(
        out.totals.candidates_generated,
        by_hand.candidates_generated
    );
    assert_eq!(out.totals.cache_hits, by_hand.cache_hits);
    assert_eq!(out.totals.phases.total(), by_hand.phases.total());
}
