//! Integration: incremental ingest ≡ batch rebuild.
//!
//! The generational architecture's core promise is that the *incremental*
//! path — build an index over N rows, then `ingest` M more through the
//! engine and `commit` — answers every query exactly like a one-shot
//! build over all N+M rows. These tests state that as a property over a
//! deterministic pseudo-random DBLP workload and check it for top-k
//! results, facet distributions, and per-term statistics, across posting
//! layouts × intra-query worker counts — plus the seal/merge round-trip
//! on `SegmentedIndex` alone, tombstone visibility, generation counters,
//! plan-cache keying, and the typed stale-index errors.

use kwdb::engine::{
    DeleteKey, IngestRecord, MutableEngine, RelationalConfig, RelationalEngine, SearchRequest,
};
use kwdb::relational::database::dblp_schema;
use kwdb::relational::{Database, Row};
use kwdb_common::index::{Layout, SegmentedIndex};
use kwdb_common::{FacetSpec, KwdbError, Rng, Value};
use kwdb_graph::NodeId;
use std::collections::{BTreeMap, BTreeSet};

/// Deterministic workload: every row the test DB will ever hold, in
/// insertion order. FK targets always precede their referrers, so any
/// prefix is FK-closed and the suffix can be ingested incrementally.
fn workload(
    n_conf: usize,
    n_authors: usize,
    n_papers: usize,
    seed: u64,
) -> Vec<(&'static str, Row)> {
    const WORDS: &[&str] = &[
        "keyword",
        "search",
        "database",
        "graph",
        "xml",
        "ranking",
        "index",
        "join",
        "stream",
        "query",
        "top",
        "candidate",
        "network",
        "spark",
        "discover",
    ];
    let mut rng = Rng::seed_from_u64(seed);
    let mut rows: Vec<(&str, Row)> = Vec::new();
    for c in 0..n_conf {
        rows.push((
            "conference",
            vec![
                (c as i64).into(),
                format!("conf{} {}", c, WORDS[rng.gen_index(WORDS.len())]).into(),
                (2000 + (c % 10) as i64).into(),
            ],
        ));
    }
    for a in 0..n_authors {
        rows.push((
            "author",
            vec![
                (a as i64).into(),
                format!("author{} {}", a, WORDS[rng.gen_index(WORDS.len())]).into(),
            ],
        ));
    }
    for p in 0..n_papers {
        let title = format!(
            "{} {} {}",
            WORDS[rng.gen_index(WORDS.len())],
            WORDS[rng.gen_index(WORDS.len())],
            WORDS[rng.gen_index(WORDS.len())]
        );
        rows.push((
            "paper",
            vec![
                (p as i64).into(),
                title.into(),
                (rng.gen_index(n_conf) as i64).into(),
            ],
        ));
        rows.push((
            "write",
            vec![
                (p as i64).into(),
                (rng.gen_index(n_authors) as i64).into(),
                (p as i64).into(),
            ],
        ));
    }
    rows
}

/// One-shot reference: insert everything, batch-build the index.
fn build_once(rows: &[(&str, Row)]) -> Database {
    let mut db = Database::new();
    dblp_schema(&mut db).unwrap();
    for (table, row) in rows {
        db.insert(table, row.clone()).unwrap();
    }
    db.build_text_index();
    db
}

/// Incremental path: batch-build over the first `n_base` rows, then ingest
/// the rest through the engine's mutation surface and commit.
fn build_incremental(
    rows: &[(&str, Row)],
    n_base: usize,
    cfg: RelationalConfig,
) -> RelationalEngine {
    let mut db = Database::new();
    dblp_schema(&mut db).unwrap();
    for (table, row) in &rows[..n_base] {
        db.insert(table, row.clone()).unwrap();
    }
    db.build_text_index();
    let engine = RelationalEngine::with_config(db, cfg);
    for (table, row) in &rows[n_base..] {
        engine
            .ingest(IngestRecord::Tuple {
                table: table.to_string(),
                values: row.clone(),
            })
            .unwrap();
    }
    engine.commit().unwrap();
    engine
}

fn queries() -> Vec<SearchRequest> {
    ["keyword search", "graph ranking", "spark database", "xml"]
        .into_iter()
        .map(|q| {
            SearchRequest::new(q)
                .k(10)
                .facet(FacetSpec::terms("conference.name", 100))
        })
        .collect()
}

/// Hits compared by (score, rendered tree): identical trees at identical
/// scores, in identical rank order.
fn hit_key(
    resp: &kwdb::engine::SearchResponse<kwdb::engine::RelationalHit>,
) -> Vec<(String, String)> {
    resp.hits
        .iter()
        .map(|h| (format!("{:.9}", h.score), h.rendered.clone()))
        .collect()
}

#[test]
fn ingest_matches_rebuild_across_layouts_and_workers() {
    let rows = workload(4, 12, 40, 0xDB1);
    let n_base = rows.len() / 2;
    let reference = build_once(&rows);
    for layout in [Layout::Plain, Layout::Blocks] {
        for workers in [1usize, 8] {
            let cfg = RelationalConfig {
                posting_layout: layout,
                intra_query_workers: workers,
                ..Default::default()
            };
            let ref_engine = RelationalEngine::with_config(reference.clone(), cfg);
            let inc_engine = build_incremental(&rows, n_base, cfg);
            for req in queries() {
                let a = ref_engine.execute(&req).unwrap();
                let b = inc_engine.execute(&req).unwrap();
                assert_eq!(
                    hit_key(&a),
                    hit_key(&b),
                    "top-k parity broke: layout {layout:?}, workers {workers}, query {:?}",
                    req.query()
                );
                assert_eq!(
                    a.facets,
                    b.facets,
                    "facet parity broke: layout {layout:?}, workers {workers}, query {:?}",
                    req.query()
                );
            }
        }
    }
}

#[test]
fn term_stats_match_rebuild_exactly() {
    let rows = workload(3, 10, 30, 0x57A75);
    let reference = build_once(&rows);
    let engine = build_incremental(&rows, rows.len() / 3, RelationalConfig::default());
    let db = engine.database();
    let (ref_ix, inc_ix) = (reference.text_index().unwrap(), db.text_index().unwrap());
    assert_eq!(ref_ix.term_count(), inc_ix.term_count());
    for term in ref_ix.terms() {
        let (a, b) = (
            ref_ix.term_stats(ref_ix.sym(term).unwrap()),
            inc_ix.term_stats(inc_ix.sym(term).unwrap()),
        );
        assert_eq!(a, b, "TermStats diverged for {term:?}");
        assert_eq!(
            ref_ix.postings(term).to_vec(),
            inc_ix.postings(term).to_vec(),
            "posting lists diverged for {term:?}"
        );
    }
}

#[test]
fn delete_then_merge_matches_a_database_never_holding_the_rows() {
    let rows = workload(3, 10, 24, 0xDE1);
    // Reference: a database that never held the last 4 papers (and their
    // write rows — the tail of the workload, which is FK-closed).
    let keep = rows.len() - 8;
    let reference = build_once(&rows[..keep]);
    let ref_engine = RelationalEngine::new(reference);

    // Incremental: hold everything, then delete those papers through the
    // engine (write rows first: no cascade).
    let engine = RelationalEngine::new(build_once(&rows));
    for (table, row) in rows[keep..].iter().rev() {
        engine
            .delete(DeleteKey::TuplePk {
                table: table.to_string(),
                pk: row[0].clone(),
            })
            .unwrap();
    }
    for req in queries() {
        let a = ref_engine.execute(&req).unwrap();
        let b = engine.execute(&req).unwrap();
        assert_eq!(hit_key(&a), hit_key(&b), "tombstones leaked into results");
        assert_eq!(a.facets, b.facets, "tombstones leaked into facet counts");
    }
    // Merge compaction purges tombstones without changing any answer.
    engine.merge().unwrap();
    for req in queries() {
        assert_eq!(
            hit_key(&ref_engine.execute(&req).unwrap()),
            hit_key(&engine.execute(&req).unwrap()),
            "merge changed results"
        );
    }
    let segs = engine.segment_counts();
    assert!(segs.sealed <= 1, "merge leaves at most one sealed segment");
}

#[test]
fn segmented_index_seal_merge_round_trip() {
    // Property check on the index core alone: pseudo-random adds, deletes,
    // commits, merges — the visible postings always equal the model.
    let mut rng = Rng::seed_from_u64(0x5E9);
    let mut ix: SegmentedIndex<NodeId> = SegmentedIndex::new();
    let mut model: BTreeMap<String, BTreeSet<u32>> = BTreeMap::new();
    let mut dead: BTreeSet<u32> = BTreeSet::new();
    let check = |ix: &SegmentedIndex<NodeId>,
                 model: &BTreeMap<String, BTreeSet<u32>>,
                 dead: &BTreeSet<u32>| {
        for (term, ids) in model {
            let want: Vec<NodeId> = ids
                .iter()
                .filter(|id| !dead.contains(id))
                .map(|&id| NodeId(id))
                .collect();
            assert_eq!(ix.postings_str(term).to_vec(), want, "term {term:?}");
        }
    };
    for round in 0..200u32 {
        let term = format!("t{}", rng.gen_index(12));
        let id = rng.gen_index(64) as u32;
        // The engines' contract: a (term, key) pair is added at most once
        // while live (tuple ids / node ids are never reused), and a
        // tombstoned key is never resurrected before the purging merge.
        if !dead.contains(&id) && !model.get(&term).is_some_and(|ids| ids.contains(&id)) {
            ix.add(&term, NodeId(id));
            model.entry(term).or_default().insert(id);
        }
        if rng.gen_bool(0.15) {
            let victim = rng.gen_index(64) as u32;
            ix.delete_key(victim as u64);
            dead.insert(victim);
        }
        if rng.gen_bool(0.2) {
            ix.commit();
        }
        if rng.gen_bool(0.05) {
            let before = ix.merges();
            ix.merge();
            assert!(ix.merges() >= before, "merge counter is monotonic");
            assert!(ix.segment_counts().sealed <= 1, "merge fully compacts");
            assert!(ix.tombstones().is_empty(), "merge clears tombstones");
            // Deleted keys are physically gone; resurrect them in the model.
            for (term, ids) in &mut model {
                ids.retain(|id| !dead.contains(id));
                let _ = term;
            }
            dead.clear();
        }
        if round % 10 == 0 {
            check(&ix, &model, &dead);
        }
    }
    check(&ix, &model, &dead);
    // After a final merge, per-term stats are exact again.
    ix.merge();
    for (term, ids) in &model {
        let live = ids.iter().filter(|id| !dead.contains(id)).count() as u64;
        if let Some(sym) = ix.sym(term) {
            assert_eq!(
                ix.term_stats(sym).df,
                live,
                "df exact after merge: {term:?}"
            );
        } else {
            assert_eq!(live, 0);
        }
    }
}

#[test]
fn generation_keys_the_plan_cache() {
    let rows = workload(3, 8, 20, 0x9E4);
    // Result cache off: the repeat query below must reach the planner to
    // observe the plan cache's generation keying.
    let engine = build_incremental(
        &rows,
        rows.len() - 2,
        RelationalConfig {
            result_cache: kwdb_common::CacheConfig::disabled(),
            ..Default::default()
        },
    );
    let req = SearchRequest::new("keyword search").k(5);
    let g0 = MutableEngine::generation(&engine);
    let first = engine.execute(&req).unwrap();
    assert_eq!(first.stats.cache_misses, 1);
    let repeat = engine.execute(&req).unwrap();
    assert_eq!(
        repeat.stats.cache_hits, 1,
        "same generation reuses the plan"
    );
    // A mutation bumps the generation; the cached plan stops matching.
    engine
        .ingest(IngestRecord::Tuple {
            table: "author".into(),
            values: vec![(1000_i64).into(), "fresh keyword author".into()],
        })
        .unwrap();
    assert!(MutableEngine::generation(&engine) > g0);
    let after = engine.execute(&req).unwrap();
    assert_eq!(after.stats.cache_misses, 1, "new generation replans");
    assert_eq!(after.stats.cache_hits, 0);
}

#[test]
fn stale_and_unbuilt_indexes_surface_typed_errors() {
    // Never built: typed error, not a panic or empty result.
    let mut db = Database::new();
    dblp_schema(&mut db).unwrap();
    db.insert("author", vec![1.into(), "Widom".into()]).unwrap();
    let engine = RelationalEngine::new(db);
    assert_eq!(
        engine
            .execute(&SearchRequest::new("widom").k(3))
            .unwrap_err(),
        KwdbError::IndexNotBuilt
    );
    // Ingest through the engine requires a built index, too.
    assert!(matches!(
        engine.ingest(IngestRecord::Tuple {
            table: "author".into(),
            values: vec![2.into(), "Ullman".into()],
        }),
        Err(KwdbError::IndexNotBuilt)
    ));

    // Built, then mutated out-of-band (raw insert): stale, with both
    // generations named.
    let mut db = Database::new();
    dblp_schema(&mut db).unwrap();
    db.insert("author", vec![1.into(), "Widom".into()]).unwrap();
    db.build_text_index();
    let indexed = db.generation();
    db.insert("author", vec![2.into(), "Ullman".into()])
        .unwrap();
    let engine = RelationalEngine::new(db);
    match engine.execute(&SearchRequest::new("widom").k(3)) {
        Err(KwdbError::IndexStale {
            indexed: i,
            current,
        }) => {
            assert_eq!(i, indexed);
            assert_eq!(current, indexed + 1);
        }
        other => panic!("expected IndexStale, got {other:?}"),
    }
}

#[test]
fn commit_reports_generation_and_segments() {
    let rows = workload(2, 6, 10, 0xC0);
    let engine = build_incremental(&rows, rows.len() - 4, RelationalConfig::default());
    let outcome = engine.commit().unwrap();
    assert_eq!(outcome.generation, MutableEngine::generation(&engine));
    assert_eq!(outcome.segments.realtime, 0, "commit seals realtime");
    assert!(outcome.segments.sealed >= 1);
    assert_eq!(engine.segment_counts(), outcome.segments);
    // Deleting an unknown pk is a typed per-row error, not state damage.
    let err = engine
        .delete(DeleteKey::TuplePk {
            table: "author".into(),
            pk: Value::from(10_000_i64),
        })
        .unwrap_err();
    assert!(matches!(err, KwdbError::UnknownObject(_)));
    assert_eq!(outcome.generation, MutableEngine::generation(&engine));
}
