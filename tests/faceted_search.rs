//! Integration: faceted search through the engine API.
//!
//! Facet counts are a property of the *query*, not of the execution
//! strategy: the exact-subset tuple-set partition makes the full result
//! multiset duplicate-free, so the counts must come out identical for any
//! worker count and either posting layout, and must equal a naive per-hit
//! recomputation from the returned joining trees. Drill-down refinements
//! are deliberately outside the CN plan key, so a refined query hits the
//! plan cache.

use kwdb::datasets::{generate_dblp, DblpConfig};
use kwdb::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;

fn dblp(layout: Layout) -> Arc<kwdb::relational::Database> {
    let mut db = generate_dblp(&DblpConfig {
        n_papers: 60,
        n_authors: 30,
        ..Default::default()
    });
    db.set_posting_layout(layout);
    Arc::new(db)
}

fn faceted_request() -> SearchRequest {
    SearchRequest::new("data query")
        .k(5)
        .facet(FacetSpec::terms("conference.name", 1000))
        .facet(FacetSpec::range(
            "conference.year",
            (1970..2030)
                .step_by(10)
                .map(|y| RangeBucket::new(format!("{y}s"), y as f64, (y + 10) as f64))
                .collect(),
        ))
}

/// Recompute the facet distributions from returned hits by the counting
/// rule: every tuple of the facet's table in a result contributes its
/// column value once, values merged by rendered string, terms sorted by
/// descending count then ascending value, range buckets in request order.
fn naive_counts(
    db: &kwdb::relational::Database,
    hits: &[kwdb::engine::RelationalHit],
    specs: &[FacetSpec],
) -> Vec<FacetCounts> {
    specs
        .iter()
        .map(|spec| {
            let (tname, cname) = spec.attr().split_once('.').unwrap();
            let tid = db.table_id(tname).unwrap();
            let col = db
                .table(tid)
                .schema
                .columns
                .iter()
                .position(|c| c.name == cname)
                .unwrap();
            let mut raw: Vec<kwdb::common::Value> = Vec::new();
            for hit in hits {
                for t in &hit.tuples {
                    if t.table == tid && !db.table(tid).get(t.row, col).is_null() {
                        raw.push(db.table(tid).get(t.row, col).clone());
                    }
                }
            }
            let values = match spec {
                FacetSpec::Terms { top_n, .. } => {
                    let mut by_text: HashMap<String, u64> = HashMap::new();
                    for v in &raw {
                        *by_text.entry(v.to_string()).or_insert(0) += 1;
                    }
                    let mut values: Vec<FacetCount> = by_text
                        .into_iter()
                        .map(|(value, count)| FacetCount { value, count })
                        .collect();
                    values.sort_by(|a, b| b.count.cmp(&a.count).then(a.value.cmp(&b.value)));
                    values.truncate(*top_n);
                    values
                }
                FacetSpec::Range { buckets, .. } => buckets
                    .iter()
                    .map(|b| FacetCount {
                        value: b.label.clone(),
                        count: raw
                            .iter()
                            .filter(|v| v.as_f64().is_some_and(|x| b.contains(x)))
                            .count() as u64,
                    })
                    .collect(),
            };
            FacetCounts {
                attr: spec.attr().to_string(),
                values,
            }
        })
        .collect()
}

#[test]
fn facet_counts_are_invariant_and_match_naive_recomputation() {
    // Reference: the naive recomputation needs every result as a hit, so
    // ask for a k far above the result count.
    let all = faceted_request().k(100_000);
    let reference = {
        let engine = RelationalEngine::with_config(
            dblp(Layout::Plain),
            RelationalConfig {
                intra_query_workers: 1,
                ..Default::default()
            },
        );
        let resp = engine.execute(&all).unwrap();
        assert!(resp.facets_exact);
        assert!(!resp.hits.is_empty());
        assert!(
            resp.hits.len() < 100_000,
            "k must exceed the result count for the naive recount to be total"
        );
        let naive = naive_counts(&engine.database(), &resp.hits, all.facet_specs());
        assert_eq!(
            resp.facets, naive,
            "engine counts must equal per-hit recomputation"
        );
        assert!(
            resp.facets[0].total() > 0,
            "the workload must actually exercise the facets"
        );
        resp.facets
    };

    // The same counts for every layout × worker-count combination, at the
    // normal small k (counts cover the full multiset, not the top-k page).
    for layout in [Layout::Plain, Layout::Blocks] {
        let db = dblp(layout);
        for workers in [1usize, 2, 8] {
            let engine = RelationalEngine::with_config(
                Arc::clone(&db),
                RelationalConfig {
                    intra_query_workers: workers,
                    posting_layout: layout,
                    ..Default::default()
                },
            );
            let resp = engine.execute(&faceted_request()).unwrap();
            assert!(resp.facets_exact, "{layout:?}/{workers} must be exact");
            assert_eq!(
                resp.facets, reference,
                "{layout:?}/{workers}: facet counts depend on execution strategy"
            );
            assert_eq!(resp.hits.len(), 5);
        }
    }
}

#[test]
fn truncated_terms_facet_is_a_prefix_of_the_full_distribution() {
    let engine = RelationalEngine::new(dblp(Layout::Plain));
    let full = engine
        .execute(&SearchRequest::new("data query").facet(FacetSpec::terms("conference.name", 1000)))
        .unwrap();
    let top3 = engine
        .execute(&SearchRequest::new("data query").facet(FacetSpec::terms("conference.name", 3)))
        .unwrap();
    assert!(full.facets[0].values.len() > 3);
    assert_eq!(top3.facets[0].values, full.facets[0].values[..3]);
}

#[test]
fn drill_down_refinement_reuses_the_cached_plan() {
    let engine = RelationalEngine::new(dblp(Layout::Plain));
    let base = faceted_request();
    let first = engine.execute(&base).unwrap();
    assert_eq!(
        (first.stats.cache_hits, first.stats.cache_misses),
        (0, 1),
        "first faceted query plans from scratch"
    );
    let clicked = first.facets[0].values[0].clone();

    // Clicking a facet value refines the same query: same keywords, so the
    // CN plan must come from the cache, not a re-plan.
    let refined = engine
        .execute(&base.clone().refine(Refinement::Term {
            attr: "conference.name".into(),
            value: clicked.value.clone(),
        }))
        .unwrap();
    assert_eq!(
        (refined.stats.cache_hits, refined.stats.cache_misses),
        (1, 0),
        "drill-down must hit the CN plan cache"
    );
    assert!(refined.facets_exact);
    // The refined distribution collapses onto the clicked value with its
    // unrefined count: refinement keeps exactly the results that counted
    // toward it.
    assert_eq!(refined.facets[0].count_of(&clicked.value), clicked.count);
    assert!(refined.facets[0]
        .values
        .iter()
        .all(|v| v.value == clicked.value || v.count == 0));
    // Range refinements compose and also reuse the plan.
    let year_refined = engine
        .execute(
            &base
                .clone()
                .refine(Refinement::Term {
                    attr: "conference.name".into(),
                    value: clicked.value.clone(),
                })
                .refine(Refinement::Range {
                    attr: "conference.year".into(),
                    lo: 0.0,
                    hi: 10_000.0,
                }),
        )
        .unwrap();
    assert_eq!(year_refined.stats.cache_hits, 1);
    assert_eq!(
        year_refined.facets[0].count_of(&clicked.value),
        clicked.count,
        "an all-pass range refinement must not change the counts"
    );
}

#[test]
fn summaries_attach_rendered_context_to_hits() {
    let engine = RelationalEngine::new(dblp(Layout::Plain));
    let plain = engine
        .execute(&SearchRequest::new("data query").k(3))
        .unwrap();
    assert!(plain.hits.iter().all(|h| h.summary.is_empty()));
    let with_summaries = engine
        .execute(&SearchRequest::new("data query").k(3).summaries(4))
        .unwrap();
    for hit in &with_summaries.hits {
        assert!(!hit.summary.is_empty());
        assert!(hit.summary.len() <= 4);
        // the summary starts from the hit's own tuples
        assert!(
            hit.summary[0].contains('('),
            "rendered tuples: {:?}",
            hit.summary
        );
    }
}
