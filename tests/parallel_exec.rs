//! Parity and budget contract of the intra-query parallel CN executor.
//!
//! The parallel executor's headline promise is exactness: for any worker
//! count it returns the *same* top-k set and scores as the serial
//! global pipeline, because the shared threshold only ever prunes CNs
//! whose upper bound is strictly below the global k-th best. These tests
//! check that promise on seeded DBLP data across worker counts and k,
//! plus the deterministic budget verdicts (candidate cap, expired
//! deadline) and the engine-level default path.

use kwdb::common::{Budget, ScratchPool, TruncationReason};
use kwdb::datasets::{generate_dblp, DblpConfig};
use kwdb::engine::{RelationalConfig, RelationalEngine, SearchRequest};
use kwdb::relational::{Database, ExecStats};
use kwdb::relsearch::cn::MaskOracle;
use kwdb::relsearch::pexec::{parallel_topk_budgeted, EvalScratch};
use kwdb::relsearch::topk::{global_pipeline, naive, TopKQuery};
use kwdb::relsearch::{CandidateNetwork, CnGenConfig, CnGenerator, ResultScorer, TupleSets};
use std::sync::Arc;
use std::time::Duration;

fn dblp() -> Database {
    generate_dblp(&DblpConfig {
        n_papers: 80,
        n_authors: 40,
        ..Default::default()
    })
}

fn setup(db: &Database, keywords: &[&str]) -> (TupleSets, Vec<CandidateNetwork>) {
    let ts = TupleSets::build(db, keywords).unwrap();
    let oracle = MaskOracle::from_tuplesets(&ts);
    let mut generator = CnGenerator::new(
        db.schema_graph(),
        &oracle,
        CnGenConfig {
            max_size: 5,
            dedupe: true,
            max_cns: 0,
        },
    );
    (ts, generator.generate())
}

/// Key a ranked result by content so set comparisons ignore arrival order.
/// Scores are compared bitwise: every executor computes the same monotone
/// formula over the same tuples.
fn result_keys(results: &[kwdb::relsearch::topk::RankedResult]) -> Vec<(u64, usize, String)> {
    results
        .iter()
        .map(|r| (r.score.to_bits(), r.cn_index, format!("{:?}", r.result)))
        .collect()
}

/// Assert `got` is a correct top-k: same score vector as `want`, identical
/// result set strictly above the k-th score, and every k-th-score member
/// drawn from the true tie class (`truth_keys`, the full ranked result
/// list). Which tied results fill the last slots is executor-specific — any
/// choice from the tie class is a correct top-k.
fn assert_topk_equivalent(
    got: &[(u64, usize, String)],
    want: &[(u64, usize, String)],
    truth_keys: &[(u64, usize, String)],
    ctx: &str,
) {
    let got_scores: Vec<u64> = got.iter().map(|k| k.0).collect();
    let want_scores: Vec<u64> = want.iter().map(|k| k.0).collect();
    assert_eq!(got_scores, want_scores, "{ctx}: score vectors diverge");
    let Some(&(boundary, ..)) = want.last() else {
        assert!(got.is_empty(), "{ctx}");
        return;
    };
    let above = |keys: &[(u64, usize, String)]| -> std::collections::BTreeSet<_> {
        keys.iter()
            .filter(|k| f64::from_bits(k.0) > f64::from_bits(boundary))
            .cloned()
            .collect()
    };
    assert_eq!(
        above(got),
        above(want),
        "{ctx}: above-boundary sets diverge"
    );
    let tie_class: std::collections::BTreeSet<_> =
        truth_keys.iter().filter(|k| k.0 == boundary).collect();
    for key in got.iter().filter(|k| k.0 == boundary) {
        assert!(
            tie_class.contains(key),
            "{ctx}: boundary result not in the true tie class: {key:?}"
        );
    }
}

#[test]
fn parallel_matches_global_pipeline_across_worker_counts_and_k() {
    let db = dblp();
    let pool: ScratchPool<EvalScratch> = ScratchPool::new();
    for query in ["data query", "xml data", "search data"] {
        let keywords: Vec<&str> = query.split_whitespace().collect();
        let (ts, cns) = setup(&db, &keywords);
        assert!(cns.len() > 8, "{query}: want a multi-CN workload");
        let scorer = ResultScorer::new(&db);
        let q = TopKQuery {
            db: &db,
            ts: &ts,
            cns: &cns,
            scorer: &scorer,
            keywords: &keywords,
        };
        // naive with an effectively unbounded k keeps every result of every
        // CN: the full ground-truth ranking
        let truth_keys = result_keys(&naive(&q, 100_000, &ExecStats::new()));
        for k in [1, 5, 20] {
            let serial = global_pipeline(&q, k, &ExecStats::new());
            let serial_keys = result_keys(&serial);
            assert_topk_equivalent(
                &serial_keys,
                &truth_keys[..k.min(truth_keys.len())],
                &truth_keys,
                &format!("{query} k={k} serial-vs-naive"),
            );
            for workers in [1, 2, 8] {
                let out = parallel_topk_budgeted(
                    &q,
                    k,
                    &ExecStats::new(),
                    &Budget::unlimited(),
                    workers,
                    &pool,
                );
                assert_topk_equivalent(
                    &result_keys(&out.results),
                    &serial_keys,
                    &truth_keys,
                    &format!("{query} k={k} workers={workers}"),
                );
                assert!(out.truncation.is_none(), "{query} k={k} workers={workers}");
                assert_eq!(
                    out.cns_evaluated + out.cns_pruned,
                    cns.len() as u64,
                    "{query} k={k} workers={workers}: every CN must be accounted for"
                );
            }
        }
    }
}

#[test]
fn candidate_cap_verdict_is_deterministic_and_bounds_evaluation() {
    let db = dblp();
    let keywords = ["data", "query"];
    let (ts, cns) = setup(&db, &keywords);
    assert!(cns.len() > 5, "need more CNs than the cap");
    let scorer = ResultScorer::new(&db);
    let q = TopKQuery {
        db: &db,
        ts: &ts,
        cns: &cns,
        scorer: &scorer,
        keywords: &keywords,
    };
    let pool: ScratchPool<EvalScratch> = ScratchPool::new();
    let budget = Budget::unlimited().with_max_candidates(5);
    for workers in [1, 2, 8] {
        let out = parallel_topk_budgeted(&q, 10, &ExecStats::new(), &budget, workers, &pool);
        // One ticket per CN considered, drawn before the bound check: with
        // more CNs than the cap, the verdict is always the cap — no matter
        // how threads interleave.
        assert_eq!(
            out.truncation,
            Some(TruncationReason::CandidateCapReached),
            "workers={workers}"
        );
        assert!(
            out.cns_evaluated <= 5,
            "workers={workers}: evaluated {} CNs under a cap of 5",
            out.cns_evaluated
        );
        assert_eq!(out.cns_evaluated + out.cns_pruned, cns.len() as u64);
        assert!(
            out.results.windows(2).all(|w| w[0].score >= w[1].score),
            "workers={workers}: truncated results must stay sorted"
        );
    }
}

#[test]
fn expired_deadline_stops_every_worker_at_its_first_checkpoint() {
    let db = dblp();
    let keywords = ["data", "query"];
    let (ts, cns) = setup(&db, &keywords);
    let scorer = ResultScorer::new(&db);
    let q = TopKQuery {
        db: &db,
        ts: &ts,
        cns: &cns,
        scorer: &scorer,
        keywords: &keywords,
    };
    let pool: ScratchPool<EvalScratch> = ScratchPool::new();
    // A budget that expired before the executor started: every worker's
    // first ticket fails the deadline check, so nothing is evaluated —
    // workers stop within one checkpoint of expiry.
    let budget = Budget::unlimited().with_timeout(Duration::ZERO);
    for workers in [1, 4] {
        let out = parallel_topk_budgeted(&q, 5, &ExecStats::new(), &budget, workers, &pool);
        assert_eq!(
            out.truncation,
            Some(TruncationReason::DeadlineExceeded),
            "workers={workers}"
        );
        assert_eq!(out.cns_evaluated, 0, "workers={workers}");
        assert!(out.results.is_empty(), "workers={workers}");
        assert_eq!(out.cns_pruned, cns.len() as u64, "workers={workers}");
    }
}

#[test]
fn engine_results_are_identical_across_worker_configs() {
    let db = Arc::new(dblp());
    let engine_with = |workers: usize| {
        RelationalEngine::with_config(
            Arc::clone(&db),
            RelationalConfig {
                intra_query_workers: workers,
                ..Default::default()
            },
        )
    };
    let serial = engine_with(1);
    let parallel = engine_with(4);
    assert_eq!(serial.resolved_workers(), 1);
    assert_eq!(parallel.resolved_workers(), 4);
    for query in ["data query", "xml search", "xml data", "data"] {
        let req = SearchRequest::new(query).k(5);
        let s = serial.execute(&req).unwrap();
        let p = parallel.execute(&req).unwrap();
        // Identical score vectors, and identical hits wherever the score
        // uniquely determines membership. (When several results tie exactly
        // at the k-th score, which tied results fill the final slots is the
        // one executor-specific choice — any of them is a correct top-k.)
        let key = |h: &kwdb::engine::RelationalHit| (h.score.to_bits(), format!("{h:?}"));
        let (sk, pk): (Vec<_>, Vec<_>) = (
            s.hits.iter().map(key).collect(),
            p.hits.iter().map(key).collect(),
        );
        let scores = |v: &[(u64, String)]| v.iter().map(|x| x.0).collect::<Vec<_>>();
        assert_eq!(scores(&sk), scores(&pk), "{query}: score vectors diverge");
        let boundary = sk.last().map(|x| x.0);
        let above = |v: &[(u64, String)]| {
            v.iter()
                .filter(|x| Some(x.0) != boundary)
                .cloned()
                .collect::<std::collections::BTreeSet<_>>()
        };
        assert_eq!(
            above(&sk),
            above(&pk),
            "{query}: worker count must not change results"
        );
        assert!(s.truncation.is_none() && p.truncation.is_none(), "{query}");
        // both paths account for every generated CN
        for resp in [&s, &p] {
            assert_eq!(
                resp.stats.cns_evaluated + resp.stats.cns_pruned,
                resp.stats.candidates_generated,
                "{query}: evaluated + pruned must equal CNs generated"
            );
        }
        // the parallel path prunes with the same shared bound, so it must
        // never evaluate a CN the bound provably excludes; both paths do
        // real join work when there are hits
        if !s.hits.is_empty() {
            assert!(
                s.stats.cns_evaluated > 0 && p.stats.cns_evaluated > 0,
                "{query}"
            );
        }
    }
}
