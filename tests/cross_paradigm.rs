//! Integration: the same query answered through different paradigms must
//! tell one consistent story — CN evaluation over the relational engine,
//! graph search over the tuple-graph view, distinct-core communities, and
//! the RDBMS-powered formulation.

use kwdb::datasets::{generate_dblp, DblpConfig};
use kwdb::graph::graph::{from_database, EdgeWeighting};
use kwdb::graphsearch::{community, BanksI, Dpbf};
use kwdb::relational::ExecStats;
use kwdb::relsearch::cn::{CnGenConfig, CnGenerator, MaskOracle};
use kwdb::relsearch::rdbms_power;
use kwdb::relsearch::topk::{naive, TopKQuery};
use kwdb::relsearch::{ResultScorer, TupleSets};
use std::collections::HashSet;

fn db() -> kwdb::relational::Database {
    generate_dblp(&DblpConfig {
        n_authors: 40,
        n_papers: 100,
        n_conferences: 6,
        ..Default::default()
    })
}

#[test]
fn cn_results_appear_as_graph_answers() {
    let db = db();
    let query: Vec<String> = vec!["widom".into(), "xml".into()];
    // CN pipeline
    let ts = TupleSets::build(&db, &query).unwrap();
    if !ts.covers_all_keywords() {
        return; // seed produced no xml+widom pairing — nothing to compare
    }
    let oracle = MaskOracle::from_tuplesets(&ts);
    let mut generator = CnGenerator::new(
        db.schema_graph(),
        &oracle,
        CnGenConfig {
            max_size: 4,
            dedupe: true,
            max_cns: 500,
        },
    );
    let cns = generator.generate();
    let scorer = ResultScorer::new(&db);
    let q = TopKQuery {
        db: &db,
        ts: &ts,
        cns: &cns,
        scorer: &scorer,
        keywords: &query,
    };
    let stats = ExecStats::new();
    let rel_hits = naive(&q, 10, &stats);

    // graph search over the tuple graph
    let (g, by_tuple) = from_database(&db, EdgeWeighting::Uniform);
    let dpbf = Dpbf::new(&g);
    let graph_hits = dpbf.search(&query, 10);

    // The CN pipeline is size-bounded (Tmax = 4) and uses exact-partition
    // free sets, so it can legitimately miss answers the unbounded graph
    // search finds; the reverse cannot happen — any CN result is a connected
    // tuple tree, hence a graph answer exists.
    if rel_hits.is_empty() {
        return;
    }
    assert!(
        !graph_hits.is_empty(),
        "CN pipeline found answers but graph search did not"
    );
    // every relational joining tree corresponds to a connected node set in
    // the graph whose total keyword coverage matches; check the top hit's
    // tuples all map to graph nodes
    let top = &rel_hits[0];
    for t in &top.result.tuples {
        assert!(
            by_tuple.contains_key(t),
            "tuple {t:?} missing from the graph view"
        );
    }
    // the optimal graph answer can never be larger than the best CN result's
    // joining tree (graph search may also join through rows CN pruning skips)
    assert!(graph_hits[0].size() <= top.result.tuples.len());
}

#[test]
fn rdbms_power_agrees_with_graph_communities() {
    let db = db();
    let query = ["data", "query"];
    let d_max = 2u32;
    let (cores_sql, _) = rdbms_power::search(&db, &query, d_max, 200);
    let (g, by_tuple) = from_database(&db, EdgeWeighting::Uniform);
    let communities = community::search(&g, &query, d_max as f64, 200);

    // map graph cores back to tuples for comparison
    let node_to_tuple: std::collections::HashMap<_, _> =
        by_tuple.iter().map(|(&t, &n)| (n, t)).collect();
    let graph_cores: HashSet<Vec<kwdb::relational::TupleId>> = communities
        .iter()
        .map(|c| c.core.iter().map(|n| node_to_tuple[n]).collect())
        .collect();
    let sql_cores: HashSet<Vec<kwdb::relational::TupleId>> =
        cores_sql.iter().map(|c| c.core.clone()).collect();
    // both enumerate nearest-match cores over the same graph: same sets
    assert_eq!(sql_cores, graph_cores);
}

#[test]
fn banks_cost_never_beats_dpbf() {
    let db = db();
    let (g, _) = from_database(&db, EdgeWeighting::Uniform);
    for query in [
        vec!["data", "query"],
        vec!["widom", "data"],
        vec!["sigmod", "search"],
    ] {
        let dpbf = Dpbf::new(&g);
        let exact = dpbf.search(&query, 1);
        let banks = BanksI::new(&g);
        let approx = banks.search(&query, 1);
        match (exact.first(), approx.first()) {
            (Some(e), Some(a)) => {
                assert!(
                    a.cost + 1e-9 >= e.cost,
                    "BANKS {} beat DPBF {} on {query:?}",
                    a.cost,
                    e.cost
                );
                a.validate(&g, &query).unwrap();
                e.validate(&g, &query).unwrap();
            }
            (None, None) => {}
            (e, a) => panic!("feasibility mismatch on {query:?}: {e:?} vs {a:?}"),
        }
    }
}
