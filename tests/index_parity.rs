//! Index parity: all three substrate indexes live on the shared
//! `kwdb_common::index` core, so (a) the `Sym` fast path must return
//! exactly what the string convenience path returns, and (b) every stored
//! posting list must equal a naive from-scratch recomputation over the raw
//! substrate — term dictionary, sort order, coalescing, and stats included.

use kwdb::common::index::{kernels, Layout};
use kwdb::common::text::{normalize_term, tokenize};
use kwdb::datasets::graphs::{generate_graph, GraphConfig};
use kwdb::datasets::{generate_bib_xml, generate_dblp, DblpConfig};
use kwdb::engine::{GraphEngine, RelationalConfig, RelationalEngine, SearchRequest, XmlEngine};
use kwdb::graphsearch::blinks::Blinks;
use kwdb::xml::XmlIndex;
use std::collections::BTreeMap;

#[test]
fn relational_index_matches_naive_recomputation() {
    let db = generate_dblp(&DblpConfig {
        n_papers: 120,
        n_authors: 60,
        ..Default::default()
    });
    let ix = db.text_index().expect("index built");

    // Naive reference: term → tuple/column → tf, straight off the tables.
    type Key = (kwdb::relational::TableId, kwdb::relational::RowId, usize);
    let mut reference: BTreeMap<String, BTreeMap<Key, u32>> = BTreeMap::new();
    for t in db.tables() {
        let text_cols: Vec<usize> = t.schema.text_columns().collect();
        for (rid, row) in t.iter() {
            for &c in &text_cols {
                if let Some(text) = row[c].as_text() {
                    for tok in tokenize(text) {
                        *reference
                            .entry(tok)
                            .or_default()
                            .entry((t.id, rid, c))
                            .or_insert(0) += 1;
                    }
                }
            }
        }
    }

    assert_eq!(ix.term_count(), reference.len(), "same vocabulary size");
    for (term, occs) in &reference {
        let sym = ix.sym(term).expect("reference term is indexed");
        let postings = ix.postings(term);
        assert_eq!(postings, ix.postings_sym(sym), "string vs Sym parity");
        let got: Vec<(Key, u32)> = postings
            .iter()
            .map(|p| ((p.tuple.table, p.tuple.row, p.column), p.tf))
            .collect();
        let want: Vec<(Key, u32)> = occs.iter().map(|(&k, &tf)| (k, tf)).collect();
        assert_eq!(got, want, "postings for {term:?} (sorted + coalesced)");

        // df = distinct tuples; total_tf = total occurrences
        let distinct_tuples = occs
            .keys()
            .map(|&(t, r, _)| (t, r))
            .collect::<std::collections::BTreeSet<_>>()
            .len();
        assert_eq!(ix.doc_freq(term), distinct_tuples, "df for {term:?}");
        assert_eq!(
            ix.term_stats(sym).total_tf,
            occs.values().map(|&tf| tf as u64).sum::<u64>(),
            "total tf for {term:?}"
        );
    }
}

#[test]
fn relational_per_table_slices_match_full_lists() {
    let db = generate_dblp(&DblpConfig::default());
    let ix = db.text_index().expect("index built");
    for term in ix.terms().map(str::to_string).collect::<Vec<_>>() {
        let all = ix.postings(&term);
        let tables: std::collections::BTreeSet<_> = all.iter().map(|p| p.tuple.table).collect();
        let mut reassembled = Vec::new();
        for &t in &tables {
            let slice = ix.postings_in(&term, t);
            assert!(slice.iter().all(|p| p.tuple.table == t));
            assert_eq!(slice, ix.postings_in_sym(ix.sym(&term).unwrap(), t));
            reassembled.extend(slice);
        }
        assert_eq!(all, reassembled, "table slices partition {term:?}");
    }
}

#[test]
fn xml_index_matches_naive_recomputation() {
    let tree = generate_bib_xml(&Default::default());
    let ix = XmlIndex::build(&tree);

    let mut reference: BTreeMap<String, Vec<kwdb::xml::NodeId>> = BTreeMap::new();
    let mut push = |term: String, n| {
        let list = reference.entry(term).or_default();
        if list.last() != Some(&n) {
            list.push(n); // pre-order emits doc order; dedup adjacent
        }
    };
    for n in tree.iter() {
        let label = normalize_term(tree.label(n));
        if !label.is_empty() {
            push(label, n);
        }
        if let Some(text) = tree.text(n) {
            for tok in tokenize(text) {
                push(tok, n);
            }
        }
    }

    assert_eq!(ix.terms().count(), reference.len(), "same vocabulary size");
    for (term, want) in &reference {
        let sym = ix.sym(term).expect("reference term is indexed");
        assert_eq!(ix.nodes(term), ix.nodes_sym(sym), "string vs Sym parity");
        assert_eq!(ix.nodes(term), want.as_slice(), "node list for {term:?}");
        assert!(
            want.windows(2).all(|w| w[0] < w[1]),
            "document order, no duplicates"
        );
    }

    // lm/rm probes through the index equal probes on the reference lists.
    for (term, list) in reference.iter().take(50) {
        let stored = ix.nodes(term);
        for probe in tree.iter().step_by(7) {
            assert_eq!(stored.right_match(probe), kernels::right_match(list, probe));
            assert_eq!(stored.left_match(probe), kernels::left_match(list, probe));
        }
    }
}

#[test]
fn graph_keyword_index_matches_naive_recomputation() {
    let g = generate_graph(&GraphConfig::default());

    let mut reference: BTreeMap<String, Vec<kwdb::graph::NodeId>> = BTreeMap::new();
    for n in g.iter() {
        for term in g.terms(n) {
            let list = reference.entry(term.clone()).or_default();
            if list.last() != Some(&n) {
                list.push(n); // node ids ascend, so insertion order is sorted
            }
        }
    }

    let vocab: std::collections::BTreeSet<&str> = g.vocabulary().collect();
    assert_eq!(
        vocab,
        reference.keys().map(String::as_str).collect(),
        "same vocabulary"
    );
    for (term, want) in &reference {
        let sym = g.keyword_sym(term).expect("reference term is indexed");
        assert_eq!(
            g.keyword_nodes(term),
            g.keyword_nodes_sym(sym),
            "string vs Sym parity"
        );
        assert_eq!(g.keyword_nodes(term), want.as_slice(), "list for {term:?}");
    }
    assert!(g.keyword_sym("definitely-not-a-term").is_none());
}

#[test]
fn node2kw_index_sym_parity_over_full_vocabulary() {
    let g = generate_graph(&GraphConfig::default());
    let ix = Blinks::new(&g).build_full_index();
    for kw in g.vocabulary().map(str::to_string).collect::<Vec<_>>() {
        let sym = ix.sym(&kw).expect("vocabulary term is indexed");
        assert_eq!(ix.sorted_list(&kw), ix.sorted_list_sym(sym));
        for n in g.iter() {
            assert_eq!(ix.dist(n, &kw), ix.dist_sym(n, sym));
            assert_eq!(ix.nearest_match(n, &kw), ix.nearest_match_sym(n, sym));
        }
    }
}

#[test]
fn relational_layouts_store_identical_postings_in_less_space() {
    let db = generate_dblp(&DblpConfig {
        n_papers: 150,
        n_authors: 80,
        ..Default::default()
    });
    let mut blocks_db = generate_dblp(&DblpConfig {
        n_papers: 150,
        n_authors: 80,
        ..Default::default()
    });
    blocks_db.set_posting_layout(Layout::Blocks);
    let plain = db.text_index().expect("index built");
    let blocks = blocks_db.text_index().expect("index built");
    assert_eq!(plain.layout(), Layout::Plain);
    assert_eq!(blocks.layout(), Layout::Blocks);

    assert_eq!(plain.term_count(), blocks.term_count());
    for term in plain.terms().map(str::to_string).collect::<Vec<_>>() {
        assert_eq!(
            plain.postings(&term).to_vec(),
            blocks.postings(&term).to_vec(),
            "decoded postings differ for {term:?}"
        );
        assert_eq!(plain.doc_freq(&term), blocks.doc_freq(&term));
    }
    let (ps, bs) = (plain.index_stats(), blocks.index_stats());
    assert_eq!(ps.postings, bs.postings);
    // The per-list fallback keeps short lists plain, so blocks can never
    // cost more — and on a corpus this size they must cost strictly less.
    assert!(
        bs.posting_bytes < ps.posting_bytes,
        "blocks {} >= plain {}",
        bs.posting_bytes,
        ps.posting_bytes
    );
    assert!(bs.blocks > 0, "block layout stores block metadata");
}

/// The three query top keywords of the generated corpus, by descending
/// document frequency — guaranteed-non-empty queries with real overlap.
fn top_terms(db: &kwdb::relational::Database) -> Vec<String> {
    let ix = db.text_index().expect("index built");
    let mut terms: Vec<(String, usize)> = ix
        .terms()
        .map(|t| (t.to_string(), ix.doc_freq(t)))
        .collect();
    terms.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    terms.into_iter().take(3).map(|(t, _)| t).collect()
}

#[test]
fn relational_engine_topk_identical_across_layouts_and_workers() {
    let cfg = DblpConfig {
        n_papers: 150,
        n_authors: 80,
        ..Default::default()
    };
    let queries = {
        let db = generate_dblp(&cfg);
        let t = top_terms(&db);
        vec![
            t[0].clone(),
            format!("{} {}", t[0], t[1]),
            format!("{} {} {}", t[0], t[1], t[2]),
        ]
    };
    // Per query: ranked score bits plus renderings grouped by tie class
    // (order within a class is free, so each class is sorted).
    type QueryOutcome = (Vec<u64>, Vec<Vec<String>>);
    // (layout × worker-count) grid; every cell must produce the same
    // ranked scores and, tie-class aware, the same result sets.
    let mut baseline: Option<Vec<QueryOutcome>> = None;
    for layout in [Layout::Plain, Layout::Blocks] {
        for workers in [1usize, 8] {
            let engine = RelationalEngine::with_config(
                generate_dblp(&cfg),
                RelationalConfig {
                    intra_query_workers: workers,
                    posting_layout: layout,
                    ..Default::default()
                },
            );
            assert_eq!(
                engine
                    .database()
                    .text_index()
                    .expect("index built")
                    .layout(),
                layout
            );
            let per_query: Vec<QueryOutcome> = queries
                .iter()
                .map(|q| {
                    let resp = engine
                        .execute(&SearchRequest::new(q.clone()).k(10))
                        .unwrap();
                    let scores: Vec<u64> = resp.hits.iter().map(|h| h.score.to_bits()).collect();
                    // group hit renderings by score (tie class), each
                    // class sorted — order within a tie class is free
                    let mut classes: Vec<Vec<String>> = Vec::new();
                    let mut last: Option<u64> = None;
                    for h in &resp.hits {
                        if last != Some(h.score.to_bits()) {
                            classes.push(Vec::new());
                            last = Some(h.score.to_bits());
                        }
                        classes.last_mut().unwrap().push(h.rendered.clone());
                    }
                    for c in &mut classes {
                        c.sort();
                    }
                    (scores, classes)
                })
                .collect();
            match &baseline {
                None => baseline = Some(per_query),
                Some(b) => assert_eq!(
                    *b, per_query,
                    "top-k diverged at layout={layout:?} workers={workers}"
                ),
            }
        }
    }
}

#[test]
fn xml_engine_hits_identical_across_layouts() {
    let tree_cfg = Default::default();
    let queries = {
        let tree = generate_bib_xml(&tree_cfg);
        let ix = XmlIndex::build(&tree);
        let mut terms: Vec<(String, usize)> = ix
            .terms()
            .map(|t| (t.to_string(), ix.nodes(t).len()))
            .collect();
        terms.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        vec![terms[0].0.clone(), format!("{} {}", terms[0].0, terms[1].0)]
    };
    let run = |layout| {
        let engine = XmlEngine::from_tree_with(generate_bib_xml(&tree_cfg), layout);
        queries
            .iter()
            .map(|q| {
                let resp = engine
                    .execute(&SearchRequest::new(q.clone()).k(10))
                    .unwrap();
                resp.hits
                    .iter()
                    .map(|h| (h.root, h.score.to_bits(), h.label_path.clone()))
                    .collect::<Vec<_>>()
            })
            .collect::<Vec<_>>()
    };
    assert_eq!(run(Layout::Plain), run(Layout::Blocks));
}

#[test]
fn graph_engine_hits_identical_across_layouts() {
    let queries = {
        let g = generate_graph(&GraphConfig::default());
        let mut vocab: Vec<String> = g.vocabulary().map(str::to_string).collect();
        vocab.sort();
        vec![vocab[0].clone(), format!("{} {}", vocab[0], vocab[1])]
    };
    let run = |layout| {
        let engine =
            GraphEngine::new(generate_graph(&GraphConfig::default())).with_posting_layout(layout);
        assert_eq!(engine.graph().keyword_index_layout(), layout);
        queries
            .iter()
            .map(|q| {
                let resp = engine.execute(&SearchRequest::new(q.clone()).k(5)).unwrap();
                format!("{:?}", resp.hits)
            })
            .collect::<Vec<_>>()
    };
    assert_eq!(run(Layout::Plain), run(Layout::Blocks));
}

#[test]
fn index_stats_consistent_across_substrates() {
    let db = generate_dblp(&DblpConfig::default());
    let tree = generate_bib_xml(&Default::default());
    let xix = XmlIndex::build(&tree);
    let g = generate_graph(&GraphConfig::default());
    for stats in [
        db.text_index().expect("index built").index_stats(),
        xix.index_stats(),
        g.keyword_index_stats(),
    ] {
        assert!(stats.terms > 0);
        assert!(stats.postings >= stats.terms);
        assert!(stats.posting_bytes > 0);
    }
    // batch builds are timed; the graph's incremental index is not
    assert!(db
        .text_index()
        .expect("index built")
        .index_stats()
        .build
        .is_some());
    assert!(xix.index_stats().build.is_some());
    assert!(g.keyword_index_stats().build.is_none());
}
