//! Integration tests for the unified budgeted/instrumented search API:
//! budget exhaustion must return partial, sorted, truncated results on all
//! three engines; repeated queries must hit the CN plan cache; empty and
//! unmatched queries must come back empty through the new API.

use kwdb::common::Budget;
use kwdb::datasets::{self, generate_dblp, DblpConfig};
use kwdb::engine::{GraphEngine, GraphSemantics, RelationalEngine, SearchRequest, XmlEngine};
use kwdb::xml::XmlIndex;
use std::time::Duration;

fn dblp() -> kwdb::relational::Database {
    generate_dblp(&DblpConfig {
        n_papers: 80,
        n_authors: 40,
        ..Default::default()
    })
}

#[test]
fn relational_budget_exhaustion_truncates_sorted() {
    let engine = RelationalEngine::new(dblp());
    let req = SearchRequest::new("data query")
        .k(5)
        .budget(Budget::unlimited().with_timeout(Duration::ZERO));
    let resp = engine.execute(&req).unwrap();
    assert!(resp.truncated(), "zero deadline must truncate");
    assert!(
        resp.hits.windows(2).all(|w| w[0].score >= w[1].score),
        "truncated hits must still be sorted"
    );

    // candidate cap: a handful of slices yields partial-but-sorted results
    let req = SearchRequest::new("data query")
        .k(5)
        .budget(Budget::unlimited().with_max_candidates(3));
    let resp = engine.execute(&req).unwrap();
    assert!(resp.truncated());
    assert!(resp.hits.windows(2).all(|w| w[0].score >= w[1].score));

    // an unconstrained run of the same query is a superset-or-equal
    let full = engine
        .execute(&SearchRequest::new("data query").k(5))
        .unwrap();
    assert!(!full.truncated());
    assert!(full.hits.len() >= resp.hits.len());
}

#[test]
fn graph_budget_exhaustion_truncates_all_semantics() {
    let engine = GraphEngine::new(datasets::graphs::generate_graph(&Default::default()));
    for sem in [
        GraphSemantics::SteinerExact,
        GraphSemantics::Banks,
        GraphSemantics::DistinctRoot,
    ] {
        let req = SearchRequest::new("kw0 kw1")
            .k(3)
            .semantics(sem)
            .budget(Budget::unlimited().with_timeout(Duration::ZERO));
        let resp = engine.execute(&req).unwrap();
        assert!(resp.truncated(), "{sem:?}: zero deadline must truncate");
        assert!(
            resp.hits.windows(2).all(|w| w[0].cost <= w[1].cost),
            "{sem:?}: truncated hits must stay cost-sorted"
        );
        // must not panic, and an unlimited run still works afterwards
        let full = engine
            .execute(&SearchRequest::new("kw0 kw1").k(3).semantics(sem))
            .unwrap();
        assert!(!full.truncated());
        assert!(!full.hits.is_empty());
    }
}

#[test]
fn xml_budget_exhaustion_truncates_sorted() {
    let tree = datasets::generate_bib_xml(&Default::default());
    let ix = XmlIndex::build(&tree);
    let engine = XmlEngine::new(tree, ix);
    let req = SearchRequest::new("data query")
        .k(10)
        .budget(Budget::unlimited().with_timeout(Duration::ZERO));
    let resp = engine.execute(&req).unwrap();
    assert!(resp.truncated(), "zero deadline must truncate");
    assert!(resp.hits.windows(2).all(|w| w[0].score >= w[1].score));

    let full = engine
        .execute(&SearchRequest::new("data query").k(10))
        .unwrap();
    assert!(!full.truncated());
}

#[test]
fn repeated_query_hits_cn_cache_and_is_faster_to_plan() {
    // Result cache off: the repeat must re-execute to time the cached-plan
    // phase rather than skip the planner entirely.
    let engine = RelationalEngine::with_config(
        dblp(),
        kwdb::engine::RelationalConfig {
            result_cache: kwdb::common::CacheConfig::disabled(),
            ..Default::default()
        },
    );
    let req = SearchRequest::new("data query").k(5);
    let first = engine.execute(&req).unwrap();
    let second = engine.execute(&req).unwrap();
    assert_eq!(first.stats.cache_misses, 1);
    assert_eq!(first.stats.cache_hits, 0);
    assert_eq!(second.stats.cache_hits, 1);
    assert_eq!(second.stats.cache_misses, 0);
    assert_eq!(
        first.stats.candidates_generated,
        second.stats.candidates_generated
    );
    // identical results either way
    let s1: Vec<f64> = first.hits.iter().map(|h| h.score).collect();
    let s2: Vec<f64> = second.hits.iter().map(|h| h.score).collect();
    assert_eq!(s1, s2);
    // the cached plan phase must not be slower than generation by more
    // than a trivial margin (it does no CN generation work at all)
    assert!(
        second.stats.phases.plan <= first.stats.phases.plan + Duration::from_millis(1),
        "cached plan {:?} vs generated {:?}",
        second.stats.phases.plan,
        first.stats.phases.plan
    );
}

#[test]
fn empty_and_unmatched_queries_are_empty_through_new_api() {
    let engine = RelationalEngine::new(dblp());
    for q in ["", "   ", "zzzzqqqxw"] {
        let resp = engine.execute(&SearchRequest::new(q).k(5)).unwrap();
        assert!(resp.hits.is_empty(), "query {q:?}");
        assert!(!resp.truncated(), "query {q:?}");
    }

    let gengine = GraphEngine::new(datasets::graphs::generate_graph(&Default::default()));
    for q in ["", "zzzzqqqxw kw0"] {
        let resp = gengine.execute(&SearchRequest::new(q).k(3)).unwrap();
        assert!(resp.hits.is_empty(), "query {q:?}");
    }

    let tree = datasets::generate_bib_xml(&Default::default());
    let ix = XmlIndex::build(&tree);
    let xengine = XmlEngine::new(tree, ix);
    for q in ["", "zzzzqqqxw data"] {
        let resp = xengine.execute(&SearchRequest::new(q).k(5)).unwrap();
        assert!(resp.hits.is_empty(), "query {q:?}");
    }
}

#[test]
fn stats_phases_are_populated() {
    let engine = RelationalEngine::new(dblp());
    let resp = engine
        .execute(&SearchRequest::new("data query").k(5))
        .unwrap();
    let p = resp.stats.phases;
    assert!(p.total() >= p.evaluate);
    assert!(p.total() == p.parse + p.build + p.plan + p.evaluate + p.facets);
    assert!(resp.stats.candidates_generated > 0);
}
