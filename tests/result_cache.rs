//! Contract of the generation-keyed result cache across all three engines.
//!
//! The guarantees under test: a cache-on engine returns bit-identical hits
//! to a cache-off engine for every posting layout × worker count; a
//! mutation (ingest, delete, commit) makes the next identical query
//! recompute with zero explicit invalidation; a thundering herd on a cold
//! key computes exactly once; truncated (budget-constrained) responses
//! never enter or consult the cache; and per-query stats label every
//! response with the consult outcome.

use kwdb::common::{Budget, CacheConfig, FacetSpec};
use kwdb::datasets::{self, generate_dblp, DblpConfig};
use kwdb::engine::{
    GraphEngine, IngestRecord, MutableEngine, RelationalConfig, RelationalEngine, SearchRequest,
    XmlEngine,
};
use kwdb::obs::TraceLevel;
use kwdb_common::index::Layout;
use std::sync::Arc;

fn dblp() -> kwdb::relational::Database {
    generate_dblp(&DblpConfig {
        n_papers: 60,
        n_authors: 30,
        ..Default::default()
    })
}

fn engine_with(layout: Layout, workers: usize, cache: CacheConfig) -> RelationalEngine {
    RelationalEngine::with_config(
        dblp(),
        RelationalConfig {
            posting_layout: layout,
            intra_query_workers: workers,
            result_cache: cache,
            ..Default::default()
        },
    )
}

fn faceted(q: &str) -> SearchRequest {
    SearchRequest::new(q)
        .k(5)
        .facet(FacetSpec::terms("conference.name", 10))
}

/// Render hits in a comparable form (scores + rendered trees).
fn fingerprint(resp: &kwdb::engine::SearchResponse<kwdb::engine::RelationalHit>) -> String {
    resp.hits
        .iter()
        .map(|h| format!("{:.6}|{}", h.score, h.rendered))
        .collect::<Vec<_>>()
        .join("\n")
}

// ---- parity: cached results are the computed results ---------------------

#[test]
fn cache_on_equals_cache_off_across_layouts_and_workers() {
    let queries = ["data query", "xml search data", "query"];
    for layout in [Layout::Plain, Layout::Blocks] {
        for workers in [1, 4] {
            let cold = engine_with(layout, workers, CacheConfig::disabled());
            let warm = engine_with(layout, workers, CacheConfig::default());
            for q in queries {
                let req = faceted(q);
                let reference = cold.execute(&req).unwrap();
                let miss = warm.execute(&req).unwrap();
                let hit = warm.execute(&req).unwrap();
                assert_eq!(
                    (miss.stats.result_cache_hits, miss.stats.result_cache_misses),
                    (0, 1),
                    "{layout:?}/{workers}w {q:?}: first consult is a miss"
                );
                assert_eq!(
                    (hit.stats.result_cache_hits, hit.stats.result_cache_misses),
                    (1, 0),
                    "{layout:?}/{workers}w {q:?}: repeat is a hit"
                );
                assert_eq!(
                    (
                        reference.stats.result_cache_hits,
                        reference.stats.result_cache_misses
                    ),
                    (0, 0),
                    "disabled cache reports no consult"
                );
                for (label, resp) in [("miss", &miss), ("hit", &hit)] {
                    assert_eq!(
                        fingerprint(resp),
                        fingerprint(&reference),
                        "{layout:?}/{workers}w {q:?}: {label} response must equal cache-off"
                    );
                    assert_eq!(resp.facets, reference.facets, "{label} facets");
                    assert_eq!(resp.facets_exact, reference.facets_exact);
                    assert!(resp.truncation.is_none());
                }
            }
        }
    }
}

#[test]
fn keyword_order_does_not_defeat_the_cache() {
    let engine = engine_with(Layout::Plain, 1, CacheConfig::default());
    engine
        .execute(&SearchRequest::new("data query").k(5))
        .unwrap();
    let reordered = engine
        .execute(&SearchRequest::new("query data").k(5))
        .unwrap();
    assert_eq!(reordered.stats.result_cache_hits, 1);
    // …but a different k is a different entry
    let other_k = engine
        .execute(&SearchRequest::new("data query").k(3))
        .unwrap();
    assert_eq!(other_k.stats.result_cache_misses, 1);
}

#[test]
fn refinements_and_facets_key_separate_entries() {
    let engine = engine_with(Layout::Plain, 1, CacheConfig::default());
    let base = faceted("data query");
    let overview = engine.execute(&base).unwrap();
    assert_eq!(overview.stats.result_cache_misses, 1);
    let top = overview.facets[0]
        .values
        .first()
        .expect("dblp queries produce conference counts")
        .value
        .clone();
    let drilled = engine
        .execute(&base.clone().refine(kwdb::relsearch::Refinement::Term {
            attr: "conference.name".into(),
            value: top,
        }))
        .unwrap();
    assert_eq!(
        drilled.stats.result_cache_misses, 1,
        "a drill-down is a distinct cached response"
    );
    // The drill-down replans nothing: refinements are outside the plan
    // cache key, so the planner reports a hit even on a result-cache miss.
    assert_eq!(drilled.stats.cache_hits, 1);
    let plain = engine
        .execute(&SearchRequest::new("data query").k(5))
        .unwrap();
    assert_eq!(
        plain.stats.result_cache_misses, 1,
        "dropping the facet list keys a third entry"
    );
}

// ---- staleness: mutation is the only invalidation protocol ---------------

#[test]
fn ingest_delete_and_commit_invalidate_immediately() {
    let mut db = kwdb::relational::Database::new();
    kwdb::relational::database::dblp_schema(&mut db).unwrap();
    db.insert("author", vec![1.into(), "Jennifer Widom".into()])
        .unwrap();
    db.build_text_index();
    let engine = RelationalEngine::new(db);
    let req = SearchRequest::new("widom").k(10);

    let before = engine.execute(&req).unwrap();
    assert_eq!(before.hits.len(), 1);
    assert_eq!(engine.execute(&req).unwrap().stats.result_cache_hits, 1);

    // Ingest: the next identical query recomputes and sees the new row.
    engine
        .ingest(IngestRecord::Tuple {
            table: "author".into(),
            values: vec![2.into(), "Widom Junior".into()],
        })
        .unwrap();
    let after_ingest = engine.execute(&req).unwrap();
    assert_eq!(
        after_ingest.stats.result_cache_misses, 1,
        "generation bump must invalidate without any explicit call"
    );
    assert_eq!(after_ingest.hits.len(), 2, "new row visible immediately");

    // Commit bumps the generation too: sealing must never serve a
    // response computed over the pre-seal index.
    engine.execute(&req).unwrap(); // warm the post-ingest entry
    MutableEngine::commit(&engine).unwrap();
    let after_commit = engine.execute(&req).unwrap();
    assert_eq!(after_commit.stats.result_cache_misses, 1);
    assert_eq!(after_commit.hits.len(), 2);

    // Delete: the tombstoned row disappears from the very next query.
    engine
        .delete_tuple("author", &kwdb::common::Value::from(2))
        .unwrap();
    let after_delete = engine.execute(&req).unwrap();
    assert_eq!(after_delete.stats.result_cache_misses, 1);
    assert_eq!(after_delete.hits.len(), 1, "deleted row gone immediately");
}

#[test]
fn graph_mutation_invalidates_cached_responses() {
    let engine = GraphEngine::new(datasets::graphs::generate_graph(&Default::default()))
        .with_staleness_bound(1_000);
    let req = SearchRequest::new("kw0 kw1").k(3);
    engine.execute(&req).unwrap();
    assert_eq!(engine.execute(&req).unwrap().stats.result_cache_hits, 1);
    engine.add_node("person", "kw0 kw1 fresh");
    let after = engine.execute(&req).unwrap();
    // The *result* cache is strictly generation-keyed even though the
    // BLINKS index may serve stale within its bound.
    assert_eq!(after.stats.result_cache_misses, 1);
}

#[test]
fn xml_engine_caches_repeat_queries() {
    let engine = XmlEngine::from_tree(datasets::generate_bib_xml(&Default::default()));
    let req = SearchRequest::new("data query").k(10);
    let first = engine.execute(&req).unwrap();
    assert_eq!(first.stats.result_cache_misses, 1);
    let second = engine.execute(&req).unwrap();
    assert_eq!(second.stats.result_cache_hits, 1);
    assert_eq!(
        format!("{:?}", first.hits),
        format!("{:?}", second.hits),
        "cached XML hits identical"
    );
}

// ---- singleflight --------------------------------------------------------

#[test]
fn thundering_herd_on_a_cold_key_computes_exactly_once() {
    let engine = Arc::new(engine_with(Layout::Plain, 1, CacheConfig::default()));
    let n_threads = 8;
    let barrier = Arc::new(std::sync::Barrier::new(n_threads));
    let responses: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..n_threads)
            .map(|_| {
                let engine = Arc::clone(&engine);
                let barrier = Arc::clone(&barrier);
                scope.spawn(move || {
                    barrier.wait();
                    engine
                        .execute(&SearchRequest::new("data query").k(5))
                        .unwrap()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let misses: u64 = responses.iter().map(|r| r.stats.result_cache_misses).sum();
    let hits: u64 = responses.iter().map(|r| r.stats.result_cache_hits).sum();
    assert_eq!(misses, 1, "exactly one thread computes");
    assert_eq!(hits, n_threads as u64 - 1, "everyone else is served");
    let first = &responses[0];
    for r in &responses[1..] {
        assert_eq!(fingerprint(r), fingerprint(first));
    }
}

// ---- bypasses ------------------------------------------------------------

#[test]
fn constrained_budgets_bypass_the_cache_entirely() {
    let engine = engine_with(Layout::Plain, 1, CacheConfig::default());
    let req = SearchRequest::new("data query").k(5);
    engine.execute(&req).unwrap(); // warm the unlimited-budget entry

    // A candidate-capped twin must not be handed the complete cached
    // answer — and must not overwrite the entry with a truncated one.
    let capped = engine
        .execute(
            &req.clone()
                .budget(Budget::unlimited().with_max_candidates(1)),
        )
        .unwrap();
    assert_eq!(
        (
            capped.stats.result_cache_hits,
            capped.stats.result_cache_misses
        ),
        (0, 0),
        "constrained budget never consults"
    );
    assert!(capped.truncated());

    // Zero-deadline: same story for wall-clock budgets.
    let deadline = engine
        .execute(
            &req.clone()
                .budget(Budget::unlimited().with_timeout(std::time::Duration::ZERO)),
        )
        .unwrap();
    assert_eq!(
        (
            deadline.stats.result_cache_hits,
            deadline.stats.result_cache_misses
        ),
        (0, 0)
    );
    assert!(deadline.truncated());

    // The unlimited entry survived both bypasses intact.
    let again = engine.execute(&req).unwrap();
    assert_eq!(again.stats.result_cache_hits, 1);
    assert!(!again.truncated());
}

#[test]
fn traced_requests_bypass_and_keep_their_trace() {
    let engine = engine_with(Layout::Plain, 1, CacheConfig::default());
    let req = SearchRequest::new("data query").k(5);
    engine.execute(&req).unwrap(); // warm
    let traced = engine
        .execute(&req.clone().trace(TraceLevel::Phases))
        .unwrap();
    assert_eq!(
        (
            traced.stats.result_cache_hits,
            traced.stats.result_cache_misses
        ),
        (0, 0),
        "a traced query must actually execute to produce its trace"
    );
    assert!(traced.trace.is_some());
    // And a cached hit never carries a trace.
    let hit = engine.execute(&req).unwrap();
    assert_eq!(hit.stats.result_cache_hits, 1);
    assert!(hit.trace.is_none());
}

#[test]
fn per_request_opt_out_skips_the_cache() {
    let engine = engine_with(Layout::Plain, 1, CacheConfig::default());
    let req = SearchRequest::new("data query").k(5);
    engine.execute(&req).unwrap(); // warm
    let opted_out = engine.execute(&req.clone().caching(false)).unwrap();
    assert_eq!(
        (
            opted_out.stats.result_cache_hits,
            opted_out.stats.result_cache_misses
        ),
        (0, 0)
    );
    assert_eq!(engine.execute(&req).unwrap().stats.result_cache_hits, 1);
}

// ---- budgets bound the cache itself --------------------------------------

#[test]
fn byte_budget_bounds_the_cache_under_many_distinct_queries() {
    // A deliberately tiny budget: distinct queries must evict rather than
    // grow the cache without bound.
    let engine = engine_with(
        Layout::Plain,
        1,
        CacheConfig {
            max_bytes: 4 << 10,
            max_entries: 16,
            ..Default::default()
        },
    );
    let queries = ["data", "query", "xml", "search", "data query", "xml data"];
    for round in 0..3 {
        for (i, q) in queries.iter().enumerate() {
            let k = 1 + (round + i) % 9;
            engine.execute(&SearchRequest::new(*q).k(k)).unwrap();
        }
    }
    // Nothing to assert beyond liveness here — the strict bound is proven
    // at the cache-unit level — but a warmed small cache must still serve.
    let resp = engine
        .execute(&SearchRequest::new("data query").k(1))
        .unwrap();
    assert_eq!(
        resp.stats.result_cache_hits + resp.stats.result_cache_misses,
        1,
        "cache still consulted after heavy eviction traffic"
    );
}
