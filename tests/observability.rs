//! Contract of the observability layer end to end.
//!
//! The headline guarantee: with a registry attached, every execute path —
//! serial or concurrent, early-return or full pipeline — records exactly
//! once, so fleet-wide registry totals always equal the sum of the
//! per-query `QueryStats` the caller already holds. On top of that the
//! exporters must round-trip losslessly, traces must render only when
//! asked for, and truncation must carry its reason into both the response
//! and the `kwdb_queries_truncated_total` counter.

use kwdb::common::{Budget, CacheConfig, TruncationReason};
use kwdb::datasets::{self, generate_dblp, DblpConfig};
use kwdb::dispatch::{Catalog, Dispatcher};
use kwdb::engine::{
    GraphEngine, GraphSemantics, RelationalConfig, RelationalEngine, SearchRequest, XmlEngine,
};
use kwdb::obs::{export, families, MetricsRegistry, TraceLevel};
use std::sync::Arc;

fn dblp() -> kwdb::relational::Database {
    generate_dblp(&DblpConfig {
        n_papers: 80,
        n_authors: 40,
        ..Default::default()
    })
}

/// All three data models, every engine wired to the same registry.
///
/// The relational engine is pinned to one intra-query worker: this suite
/// compares hits and operator totals between serial and concurrent runs
/// under *truncating* budgets, where which CNs a parallel run reached
/// before the cut is timing-dependent. One worker keeps every request
/// bit-for-bit reproducible (the parallel path's untruncated results are
/// identical anyway — see tests/parallel_exec.rs). Result caches are
/// pinned off for the same reason: this suite asserts exact per-query
/// counter and truncation totals, which must not depend on what an
/// earlier request happened to leave in a cache.
fn catalog(registry: &Arc<MetricsRegistry>) -> Catalog {
    let mut c = Catalog::new();
    c.register(
        "dblp",
        RelationalEngine::with_config(
            dblp(),
            RelationalConfig {
                intra_query_workers: 1,
                result_cache: CacheConfig::disabled(),
                ..Default::default()
            },
        )
        .with_registry(Arc::clone(registry)),
    );
    c.register(
        "social",
        GraphEngine::new(datasets::graphs::generate_graph(&Default::default()))
            .with_result_cache(CacheConfig::disabled())
            .with_registry(Arc::clone(registry)),
    );
    c.register(
        "bib",
        XmlEngine::from_tree(datasets::generate_bib_xml(&Default::default()))
            .with_result_cache(CacheConfig::disabled())
            .with_registry(Arc::clone(registry)),
    );
    c
}

/// ≥100 mixed requests cycling engines, semantics, k, and candidate-cap
/// budgets. Deadlines are deliberately absent: candidate caps are checked
/// before the clock, so every request is deterministic and serial and
/// concurrent runs must agree hit for hit.
fn mixed_batch() -> Vec<(String, SearchRequest)> {
    let mut batch = Vec::new();
    for i in 0..120usize {
        let k = 1 + i % 5;
        let req = match i % 6 {
            0 => ("dblp", SearchRequest::new("data query").k(k)),
            1 => (
                "social",
                SearchRequest::new("kw0 kw1")
                    .k(k)
                    .semantics(GraphSemantics::SteinerExact),
            ),
            2 => (
                "social",
                SearchRequest::new("kw0 kw1")
                    .k(k)
                    .semantics(GraphSemantics::DistinctRoot),
            ),
            3 => (
                "social",
                SearchRequest::new("kw1 kw2")
                    .k(k)
                    .semantics(GraphSemantics::Banks),
            ),
            4 => ("bib", SearchRequest::new("data query").k(k)),
            // a capped request per cycle keeps the truncation families live
            _ => (
                "dblp",
                SearchRequest::new("query data")
                    .k(k)
                    .budget(Budget::unlimited().with_max_candidates(1 + (i % 3) as u64)),
            ),
        };
        batch.push((req.0.to_string(), req.1));
    }
    batch
}

/// Sum of one operator-counter's worth of work across responses.
fn operator_work(stats: &kwdb::common::QueryStats) -> u64 {
    let o = &stats.operators;
    o.tuples_scanned
        + o.join_probes
        + o.joins_executed
        + o.rows_output
        + o.sorted_accesses
        + o.random_accesses
}

#[test]
fn concurrent_registry_totals_equal_per_query_stat_sums_and_match_serial() {
    let batch = mixed_batch();
    assert!(batch.len() >= 100);

    let reg_serial = Arc::new(MetricsRegistry::new());
    let serial = Dispatcher::new(catalog(&reg_serial))
        .with_registry(Arc::clone(&reg_serial))
        .execute_serial(&batch);

    let reg_conc = Arc::new(MetricsRegistry::new());
    let concurrent = Dispatcher::with_workers(catalog(&reg_conc), 8)
        .with_registry(Arc::clone(&reg_conc))
        .execute_concurrent(&batch);

    // Every request succeeds, and concurrent output is hit-for-hit
    // identical to serial (same hits, same truncation verdicts).
    assert_eq!(serial.responses.len(), batch.len());
    assert_eq!(concurrent.responses.len(), batch.len());
    for (i, (s, c)) in serial
        .responses
        .iter()
        .zip(concurrent.responses.iter())
        .enumerate()
    {
        let (s, c) = (s.as_ref().unwrap(), c.as_ref().unwrap());
        assert_eq!(
            format!("{:?}", s.hits),
            format!("{:?}", c.hits),
            "request {i}: serial and concurrent hits diverge"
        );
        assert_eq!(
            s.truncation, c.truncation,
            "request {i}: truncation diverges"
        );
    }

    // Registry totals == sum of per-query QueryStats, for both runs.
    for (mode, reg, outcome) in [
        ("serial", &reg_serial, &serial),
        ("concurrent", &reg_conc, &concurrent),
    ] {
        let stats: Vec<_> = outcome.successes().map(|r| r.stats.clone()).collect();
        assert_eq!(
            reg.counter_family_total(families::QUERIES),
            stats.len() as u64,
            "{mode}: query count"
        );
        assert_eq!(
            reg.counter_family_total(families::OPERATORS),
            stats.iter().map(operator_work).sum::<u64>(),
            "{mode}: operator work"
        );
        assert_eq!(
            reg.counter_family_total(families::CANDIDATES),
            stats
                .iter()
                .map(|s| s.candidates_generated + s.candidates_pruned)
                .sum::<u64>(),
            "{mode}: candidates"
        );
        assert_eq!(
            reg.counter_family_total(families::PLAN_CACHE),
            stats
                .iter()
                .map(|s| s.cache_hits + s.cache_misses)
                .sum::<u64>(),
            "{mode}: plan-cache lookups"
        );
        let truncated = outcome
            .successes()
            .filter(|r| r.truncation.is_some())
            .count() as u64;
        assert!(truncated > 0, "{mode}: batch must exercise truncation");
        assert_eq!(
            reg.counter_family_total(families::TRUNCATED),
            truncated,
            "{mode}: truncated queries"
        );
        // every capped dblp request must report the candidate cap, not the
        // (unlimited) deadline
        for r in outcome.successes() {
            if let Some(reason) = r.truncation {
                assert_eq!(reason, TruncationReason::CandidateCapReached);
            }
        }
        // plan generations are cache misses seen by the relational engine
        assert_eq!(
            reg.counter_value(
                families::PLAN_CACHE_GENERATIONS,
                &[("engine", "relational")]
            ),
            reg.counter_value(
                families::PLAN_CACHE,
                &[("engine", "relational"), ("outcome", "miss")]
            ),
            "{mode}: one generation per miss"
        );
        // dispatcher-side accounting
        assert_eq!(
            reg.counter_family_total(families::DISPATCH_REQUESTS),
            batch.len() as u64,
            "{mode}: dispatched requests"
        );
        assert_eq!(
            reg.counter_value(families::DISPATCH_REQUESTS, &[("outcome", "ok")]),
            batch.len() as u64,
            "{mode}: all ok"
        );
        assert_eq!(
            reg.counter_family_total(families::DISPATCH_WORKER_REQUESTS),
            batch.len() as u64,
            "{mode}: per-worker counts sum to the batch"
        );
    }

    // Both registries agree on every deterministic counter: the same work
    // was done, only the interleaving differed.
    assert_eq!(
        reg_serial.counter_family_total(families::OPERATORS),
        reg_conc.counter_family_total(families::OPERATORS)
    );
    assert_eq!(
        reg_serial.counter_family_total(families::CANDIDATES),
        reg_conc.counter_family_total(families::CANDIDATES)
    );
    assert_eq!(
        reg_serial.counter_family_total(families::TRUNCATED),
        reg_conc.counter_family_total(families::TRUNCATED)
    );

    // in-flight gauge must return to zero once the batch drains
    assert_eq!(
        reg_conc.gauge(families::DISPATCH_INFLIGHT, &[]).get(),
        0,
        "inflight gauge must drain"
    );

    // concurrent run actually spread work over >1 worker
    let snap = reg_conc.snapshot();
    let workers_used = snap
        .counters
        .iter()
        .filter(|(id, v)| id.name == families::DISPATCH_WORKER_REQUESTS && *v > 0)
        .count();
    assert!(workers_used > 1, "expected >1 worker, got {workers_used}");
}

#[test]
fn prometheus_export_lists_every_live_family_with_labels() {
    let reg = Arc::new(MetricsRegistry::new());
    let catalog = catalog(&reg);
    let batch = mixed_batch();
    let out = Dispatcher::with_workers(catalog, 4)
        .with_registry(Arc::clone(&reg))
        .execute_concurrent(&batch[..12]);
    assert!(out.responses.iter().all(|r| r.is_ok()));

    let text = export::to_prometheus(&reg.snapshot());
    for family in [
        families::QUERIES,
        families::QUERY_LATENCY,
        families::PHASE_LATENCY,
        families::OPERATORS,
        families::CANDIDATES,
        families::PLAN_CACHE,
        families::DISPATCH_QUEUE_WAIT,
        families::DISPATCH_INFLIGHT,
        families::DISPATCH_REQUESTS,
        families::DISPATCH_WORKER_REQUESTS,
    ] {
        assert!(text.contains(family), "missing family {family}");
        assert!(
            text.contains(&format!("# TYPE {family}")),
            "missing TYPE for {family}"
        );
    }
    assert!(text.contains(r#"engine="relational""#));
    assert!(text.contains(r#"algorithm="dpbf""#) || text.contains(r#"algorithm="banks""#));
    assert!(text.contains(&format!("{}_bucket", families::QUERY_LATENCY)));
    assert!(text.contains(&format!("{}_count", families::QUERY_LATENCY)));
}

#[test]
fn json_snapshot_round_trips_exactly() {
    let reg = Arc::new(MetricsRegistry::new());
    let catalog = catalog(&reg);
    let batch = mixed_batch();
    let out = Dispatcher::new(catalog)
        .with_registry(Arc::clone(&reg))
        .execute_serial(&batch[..12]);
    assert!(out.responses.iter().all(|r| r.is_ok()));

    let snap = reg.snapshot();
    let rt = export::from_json(&export::to_json(&snap)).expect("round-trip parse");
    assert_eq!(rt, snap, "JSON export must round-trip losslessly");
}

#[test]
fn trace_off_is_absent_and_results_are_identical_across_levels() {
    let engine = RelationalEngine::new(dblp());
    let base = SearchRequest::new("data query").k(5);

    let off = engine
        .execute(&base.clone().trace(TraceLevel::Off))
        .unwrap();
    assert!(off.trace.is_none(), "TraceLevel::Off must attach no trace");

    let full = engine
        .execute(&base.clone().trace(TraceLevel::Full))
        .unwrap();
    assert!(full.trace.is_some());
    assert_eq!(
        format!("{:?}", off.hits),
        format!("{:?}", full.hits),
        "tracing must not change results"
    );

    let phases = engine
        .execute(&base.trace(TraceLevel::Phases))
        .unwrap()
        .trace
        .expect("Phases level attaches a trace");
    let full = full.trace.unwrap();
    // Full adds events on top of the phase spans Phases already has.
    assert!(full.render_text().len() >= phases.render_text().len());
}

#[test]
fn relational_and_graph_traces_render_phases_and_events() {
    let rel = RelationalEngine::new(dblp());
    let resp = rel
        .execute(
            &SearchRequest::new("data query")
                .k(3)
                .trace(TraceLevel::Full),
        )
        .unwrap();
    let trace = resp.trace.expect("full trace");
    let text = trace.render_text();
    for needle in ["parse", "plan", "evaluate", "plan cache"] {
        assert!(
            text.contains(needle),
            "relational trace missing {needle:?}:\n{text}"
        );
    }
    let json = trace.to_json();
    assert!(
        json.trim_start().starts_with('{'),
        "trace JSON must be an object"
    );
    assert!(json.contains("plan"), "trace JSON must carry the spans");

    let graph = GraphEngine::new(datasets::graphs::generate_graph(&Default::default()));
    let resp = graph
        .execute(
            &SearchRequest::new("kw0 kw1")
                .k(3)
                .semantics(GraphSemantics::SteinerExact)
                .trace(TraceLevel::Full),
        )
        .unwrap();
    let text = resp.trace.expect("graph trace").render_text();
    assert!(
        text.contains("evaluate"),
        "graph trace missing evaluate:\n{text}"
    );
}

#[test]
fn candidate_cap_truncation_reports_reason_and_counts_in_registry() {
    let reg = Arc::new(MetricsRegistry::new());
    // one worker → the "global_pipeline" algorithm label, machine-independent
    let engine = RelationalEngine::with_config(
        dblp(),
        RelationalConfig {
            intra_query_workers: 1,
            ..Default::default()
        },
    )
    .with_registry(Arc::clone(&reg));
    let resp = engine
        .execute(
            &SearchRequest::new("data query")
                .k(5)
                .budget(Budget::unlimited().with_max_candidates(1)),
        )
        .unwrap();
    assert!(resp.truncated());
    assert_eq!(resp.truncation, Some(TruncationReason::CandidateCapReached));
    assert_eq!(
        reg.counter_value(
            families::TRUNCATED,
            &[
                ("engine", "relational"),
                ("algorithm", "global_pipeline"),
                ("reason", "candidate_cap"),
            ]
        ),
        1
    );
}

#[test]
fn tiny_plan_cache_evicts_and_reports_size() {
    let reg = Arc::new(MetricsRegistry::new());
    let engine = RelationalEngine::with_config(
        dblp(),
        RelationalConfig {
            max_cache_entries: 1,
            ..Default::default()
        },
    )
    .with_registry(Arc::clone(&reg));

    engine
        .execute(&SearchRequest::new("data query").k(3))
        .unwrap();
    engine
        .execute(&SearchRequest::new("data search").k(3))
        .unwrap();

    assert_eq!(
        reg.counter_value(
            families::PLAN_CACHE_GENERATIONS,
            &[("engine", "relational")]
        ),
        2,
        "two distinct term sets, two generations"
    );
    assert_eq!(
        reg.counter_value(families::PLAN_CACHE_EVICTIONS, &[("engine", "relational")]),
        1,
        "second insert must evict the first plan"
    );
    assert_eq!(
        reg.gauge(families::PLAN_CACHE_SIZE, &[("engine", "relational")])
            .get(),
        1,
        "cache stays at its cap"
    );
}
