//! Integration: the XML stack on generated documents — LCA-family
//! containments, inference, snippets and the axioms, together.

use kwdb::datasets::xmlgen::{
    generate_bib_xml, generate_movies, generate_slca_workload, BibConfig,
};
use kwdb::eval::axioms::{
    check_data_consistency, check_data_monotonicity, check_query_consistency,
    check_query_monotonicity, SlcaEngine,
};
use kwdb::xml::{PathStats, XmlIndex};
use kwdb::xmlsearch::elca::{elca, elca_brute_force};
use kwdb::xmlsearch::slca::{
    multiway_slca, slca_brute_force, slca_indexed_lookup_eager, slca_scan_eager,
};
use kwdb::xmlsearch::{snippet, xreal};

#[test]
fn lca_family_containments_on_generated_bib() {
    let tree = generate_bib_xml(&BibConfig::default());
    let ix = XmlIndex::build(&tree);
    for query in [
        vec!["data", "query"],
        vec!["xml", "widom"],
        vec!["paper", "data"],
    ] {
        let brute_s = slca_brute_force(&tree, &ix, &query);
        let (ile, _) = slca_indexed_lookup_eager(&tree, &ix, &query).unwrap();
        let (scan, _) = slca_scan_eager(&tree, &ix, &query).unwrap();
        let (multi, _) = multiway_slca(&tree, &ix, &query).unwrap();
        assert_eq!(ile, brute_s, "{query:?}");
        assert_eq!(scan, brute_s, "{query:?}");
        assert_eq!(multi, brute_s, "{query:?}");
        let (e, _) = elca(&tree, &ix, &query).unwrap();
        assert_eq!(e, elca_brute_force(&tree, &ix, &query), "{query:?}");
        // SLCA ⊆ ELCA
        for n in &ile {
            assert!(e.contains(n), "SLCA {n:?} missing from ELCA for {query:?}");
        }
    }
}

#[test]
fn slca_work_scales_with_smallest_list() {
    // |S_max| fixed, |S_min| swept: ILE's anchor count tracks |S_min|.
    let mut anchor_counts = Vec::new();
    for n_rare in [5usize, 50, 200] {
        let tree = generate_slca_workload(20, 2000, n_rare, 7);
        let ix = XmlIndex::build(&tree);
        let (_, stats) = slca_indexed_lookup_eager(&tree, &ix, &["common", "rare"]).unwrap();
        assert_eq!(stats.anchors, n_rare, "driver must be the smallest list");
        anchor_counts.push(stats.anchors);
    }
    assert!(anchor_counts.windows(2).all(|w| w[0] < w[1]));
}

#[test]
fn xreal_prefers_the_populated_branch() {
    let tree = generate_bib_xml(&BibConfig {
        n_conferences: 6,
        n_journals: 1,
        papers_per_venue: 15,
        ..Default::default()
    });
    let stats = PathStats::build(&tree);
    let ranked = xreal::infer_return_types(&stats, &["data", "query"]);
    assert!(!ranked.is_empty());
    let conf_pos = ranked.iter().position(|t| t.path == "/bib/conf/paper");
    let journal_pos = ranked.iter().position(|t| t.path == "/bib/journal/paper");
    if let (Some(c), Some(j)) = (conf_pos, journal_pos) {
        assert!(c < j, "six conferences of papers must outrank one journal");
    }
}

#[test]
fn snippets_fit_budget_and_witness_keywords() {
    let tree = generate_movies(10, 3);
    let ix = XmlIndex::build(&tree);
    let query = ["shining"];
    let (results, _) = slca_indexed_lookup_eager(&tree, &ix, &query).unwrap();
    assert!(!results.is_empty());
    for &r in &results {
        // snip at the movie level for context
        let root = if tree.label(r) == "movie" {
            r
        } else {
            tree.parent(r).unwrap_or(r)
        };
        let snip = snippet::generate(&tree, root, &query, 6);
        assert!(snip.nodes.len() <= 6);
        assert!(snip.render(&tree).to_lowercase().contains("shining"));
    }
}

#[test]
fn axioms_hold_for_the_slca_engine_on_generated_data() {
    let tree = generate_bib_xml(&BibConfig {
        n_conferences: 2,
        n_journals: 1,
        papers_per_venue: 5,
        ..Default::default()
    });
    let engine = SlcaEngine;
    let q: Vec<String> = vec!["data".into()];
    assert!(check_query_monotonicity(&engine, &tree, &q, "query").is_satisfied());
    assert!(check_query_consistency(&engine, &tree, &q, "query").is_satisfied());
    // pick some paper node to extend
    let paper = tree.iter().find(|&n| tree.label(n) == "paper").unwrap();
    assert!(
        check_data_monotonicity(&engine, &tree, &q, paper, "note", "fresh data").is_satisfied()
    );
    assert!(check_data_consistency(&engine, &tree, &q, paper, "note", "fresh data").is_satisfied());
}
