//! Structural ambiguity, resolved four ways (tutorial slides 10–11, 37,
//! 44–48, 54–58): the same keyword query interpreted through query forms,
//! SUITS/IQP keyword binding, XReal type inference, and probabilistic XPath
//! generation.
//!
//! ```sh
//! cargo run --example structure_inference
//! ```

use kwdb::datasets::{generate_bib_xml, BibConfig};
use kwdb::forms::generate::{FormGenConfig, FormGenerator};
use kwdb::forms::iqp::Interpreter;
use kwdb::forms::FormIndex;
use kwdb::relational::database::dblp_schema;
use kwdb::relational::Database;
use kwdb::xml::PathStats;
use kwdb::xmlsearch::{xpath_infer, xreal};

fn main() {
    let mut db = Database::new();
    dblp_schema(&mut db).unwrap();
    db.insert("conference", vec![1.into(), "SIGMOD".into(), 2007.into()])
        .unwrap();
    db.insert("author", vec![1.into(), "John Smith".into()])
        .unwrap();
    db.insert("author", vec![2.into(), "Jane Widom".into()])
        .unwrap();
    db.insert(
        "paper",
        vec![1.into(), "XML keyword search".into(), 1.into()],
    )
    .unwrap();
    db.insert(
        "paper",
        vec![2.into(), "XML views maintenance".into(), 1.into()],
    )
    .unwrap();
    db.insert("write", vec![1.into(), 1.into(), 1.into()])
        .unwrap();
    db.insert("write", vec![2.into(), 2.into(), 2.into()])
        .unwrap();
    db.build_text_index();

    let query = ["john", "xml"];
    println!("ambiguous query: {query:?}\n");

    // 1. query forms (Chu et al.): rank pre-generated forms
    let forms = FormGenerator::new(&db, FormGenConfig::default()).generate();
    let index = FormIndex::build(&db, forms.clone());
    println!("— query forms —");
    for r in index.select(&db, &query, 2) {
        println!(
            "  [{:.2}] {}",
            r.score,
            index.forms()[r.form_index].display(&db)
        );
    }

    // 2. SUITS/IQP: probabilistic keyword binding
    let interp = Interpreter::new(&db, forms, &[]);
    println!("\n— IQP keyword bindings —");
    for i in interp.interpret(&query, 3) {
        println!(
            "  [{:.4}] {}  (SUITS heuristic {:.2})",
            i.score,
            i.display(&db, interp.templates()),
            interp.suits_score(&i)
        );
    }

    // 3. XReal: which node type is being searched for in XML?
    let tree = generate_bib_xml(&BibConfig::default());
    let stats = PathStats::build(&tree);
    println!("\n— XReal search-for types (query {{widom, data}}) —");
    for t in xreal::infer_return_types(&stats, &["widom", "data"])
        .iter()
        .take(3)
    {
        println!("  [{:.3}] {}", t.score, t.path);
    }

    // 4. probabilistic XPath inference
    println!("\n— inferred XPath queries (query {{widom, data}}) —");
    for q in xpath_infer::infer(&stats, &["widom", "data"], 3) {
        println!("  [{:.3}] {}", q.prob, q.xpath);
    }
}
