//! The keyword-ambiguity pipeline of tutorial slide 12 on one shopping
//! session: a misspelled, unfinished, non-quantitative query is cleaned,
//! completed, translated and executed.
//!
//! ```sh
//! cargo run --example dirty_queries
//! ```

use kwdb::datasets::products::{generate_laptops, product_query_log};
use kwdb::qclean::autocomplete::{tastier_search, ForwardIndex, Trie};
use kwdb::qclean::keywordpp::KeywordPlusPlus;
use kwdb::qclean::segment::{clean_query, ValuePhraseModel};
use kwdb::qclean::spell::SpellCorrector;

fn main() {
    let (db, table) = generate_laptops(40, 7);
    let ix = db.text_index().expect("index built above");

    // spelling model from the database vocabulary
    let corrector =
        SpellCorrector::from_vocab(ix.terms().map(|t| (t.to_string(), ix.doc_freq(t) as u64)));
    let values: Vec<String> = db
        .table(table)
        .iter()
        .map(|(_, row)| row[0].to_string())
        .collect();
    let phrase_model = ValuePhraseModel::from_values(&values);

    // 1. spelling correction + segmentation
    let dirty: Vec<String> = ["lenvo", "carbn", "laptp"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    println!("dirty query: {dirty:?}");
    if let Some(cleaned) = clean_query(&corrector, &phrase_model, &dirty, 2) {
        println!("cleaned:     {}", cleaned.display());
    }

    // 2. auto-completion with per-keyword prefix semantics
    let trie = Trie::build(ix.terms().map(|t| t.to_string()));
    let mut fwd = ForwardIndex::new();
    for (rid, _) in db.table(table).iter() {
        let tid = kwdb::relational::TupleId::new(table, rid);
        for tok in db.tuple_tokens(tid) {
            if let Some(id) = trie.token_id(&tok) {
                fwd.add(rid.0 as u64, id);
            }
        }
    }
    let (examined, survivors) = tastier_search(&trie, &fwd, &["len", "lap"]);
    println!(
        "\ntype-ahead {{len, lap}}: {} candidates examined, {} products match",
        examined,
        survivors.len()
    );

    // 3. Keyword++: learn what "ibm" and "small" mean, then execute
    let mut kpp = KeywordPlusPlus::new(&db, table, vec![1], vec![2, 3]);
    kpp.learn(&product_query_log(11, 30));
    let query = ["small", "ibm", "laptop"];
    let literal = kpp.keyword_results(&query);
    let translated = kpp.translate(&query);
    let rows = kpp.execute(&translated);
    println!("\nquery {query:?}:");
    println!("  literal LIKE matching: {} rows", literal.len());
    println!(
        "  Keyword++ translation: {} predicates + {:?} residual → {} rows",
        translated.predicates.len(),
        translated.residual,
        rows.len()
    );
    for r in rows.iter().take(3) {
        println!(
            "    {}",
            db.format_tuple(kwdb::relational::TupleId::new(table, *r))
        );
    }
}
