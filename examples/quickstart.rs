//! Quickstart: keyword search over a relational database in a dozen lines.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use kwdb::common::Budget;
use kwdb::datasets::{generate_dblp, DblpConfig};
use kwdb::engine::{RelationalEngine, SearchRequest};
use std::time::Duration;

fn main() -> kwdb::Result<()> {
    // A DBLP-like database: conferences, authors, papers, authorship, citations.
    let db = generate_dblp(&DblpConfig {
        n_conferences: 8,
        n_authors: 150,
        n_papers: 400,
        ..Default::default()
    });
    println!(
        "database: {} tables, {} tuples, {} FK edges",
        db.table_count(),
        db.tuple_count(),
        db.schema_graph().edges().len()
    );

    // The engine takes ownership (an Arc<Database> internally), so it is
    // Send + Sync — store it in a registry, share it across threads.
    let engine = RelationalEngine::new(db);
    for query in ["widom xml", "keyword search", "widom stonebraker"] {
        println!("\nquery: {query:?}");
        let req = SearchRequest::new(query)
            .k(3)
            .budget(Budget::unlimited().with_timeout(Duration::from_secs(2)));
        let resp = engine.execute(&req)?;
        if resp.hits.is_empty() {
            println!(
                "  (no results{})",
                if resp.truncated() { ", truncated" } else { "" }
            );
        }
        for (i, hit) in resp.hits.iter().enumerate() {
            println!("  {}. [{:.3}] {}", i + 1, hit.score, hit.rendered);
        }
        println!(
            "  stats: {} CNs ({} cache hit), {} tuples scanned, {:?} total{}",
            resp.stats.candidates_generated,
            resp.stats.cache_hits,
            resp.stats.operators.tuples_scanned,
            resp.stats.phases.total(),
            if resp.truncated() { ", TRUNCATED" } else { "" }
        );
    }
    Ok(())
}
