//! Quickstart: keyword search over a relational database in a dozen lines.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use kwdb::datasets::{generate_dblp, DblpConfig};
use kwdb::engine::RelationalEngine;

fn main() -> kwdb::Result<()> {
    // A DBLP-like database: conferences, authors, papers, authorship, citations.
    let db = generate_dblp(&DblpConfig {
        n_conferences: 8,
        n_authors: 150,
        n_papers: 400,
        ..Default::default()
    });
    println!(
        "database: {} tables, {} tuples, {} FK edges",
        db.table_count(),
        db.tuple_count(),
        db.schema_graph().edges().len()
    );

    let engine = RelationalEngine::new(&db);
    for query in ["widom xml", "keyword search", "widom stonebraker"] {
        println!("\nquery: {query:?}");
        let hits = engine.search(query, 3)?;
        if hits.is_empty() {
            println!("  (no results)");
        }
        for (i, hit) in hits.iter().enumerate() {
            println!("  {}. [{:.3}] {}", i + 1, hit.score, hit.rendered);
        }
    }
    Ok(())
}
