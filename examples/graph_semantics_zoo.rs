//! The answer-semantics zoo of tutorial slide 29: run every graph search
//! engine on one database's tuple graph and compare what each considers an
//! answer (experiment E34's interactive sibling).
//!
//! ```sh
//! cargo run --example graph_semantics_zoo
//! ```

use kwdb::datasets::{generate_dblp, DblpConfig};
use kwdb::graph::graph::{from_database, EdgeWeighting};
use kwdb::graphsearch::{approx, blinks::Blinks, community, dpbf::Dpbf, ease, BanksI, BanksII};

fn main() {
    let db = generate_dblp(&DblpConfig {
        n_authors: 60,
        n_papers: 150,
        ..Default::default()
    });
    let (g, _) = from_database(&db, EdgeWeighting::Uniform);
    println!(
        "tuple graph: {} nodes, {} edges",
        g.node_count(),
        g.edge_count()
    );
    let kws = ["abiteboul", "query"];
    println!("query: {kws:?}\n");

    let dpbf = Dpbf::new(&g);
    let (exact, _, dpbf_work) = dpbf.search_budgeted(&kws, 3, &kwdb::common::Budget::unlimited());
    println!(
        "DPBF (exact group Steiner trees), {} states popped:",
        dpbf_work.states_popped
    );
    for t in &exact {
        println!("  {}", t.display(&g));
    }

    let b1 = BanksI::new(&g);
    let (banks1, _, b1_work) = b1.search_budgeted(&kws, 3, &kwdb::common::Budget::unlimited());
    println!(
        "\nBANKS I (backward search), {} nodes expanded:",
        b1_work.nodes_expanded
    );
    for t in &banks1 {
        println!("  {}", t.display(&g));
    }

    let mut b2 = BanksII::new(&g);
    let banks2 = b2.search(&kws, 3);
    println!(
        "\nBANKS II (activation), {} nodes expanded:",
        b2.nodes_expanded
    );
    for t in &banks2 {
        println!("  {}", t.display(&g));
    }

    let bl = Blinks::new(&g);
    let ix = bl.build_index(&kws);
    let (blinks, _, bl_work) = bl.search_budgeted(&ix, &kws, 3, &kwdb::common::Budget::unlimited());
    println!(
        "\nBLINKS (distinct root + TA), {} sorted / {} random accesses:",
        bl_work.sorted_accesses, bl_work.random_accesses
    );
    for t in &blinks {
        println!("  {}", t.display(&g));
    }

    if let Some(t) = approx::spt_heuristic(&g, &kws) {
        println!(
            "\nSPT heuristic (≤{}× optimal): {}",
            approx::approximation_factor(kws.len()),
            t.display(&g)
        );
    }

    let communities = community::search(&g, &kws, 3.0, 3);
    println!("\ndistinct-core communities (Dmax = 3):");
    for c in &communities {
        println!(
            "  core {:?} via center {} (cost {})",
            c.core, c.center.0, c.cost
        );
    }

    let subgraphs = ease::search(&g, &kws, 2, 3);
    println!("\nEASE r-radius Steiner subgraphs (r = 2):");
    for s in &subgraphs {
        println!(
            "  center {} — {} nodes, {} edges, score {:.3}",
            s.center.0,
            s.nodes.len(),
            s.edges.len(),
            s.score
        );
    }
}
