//! XML keyword search end to end: SLCA/ELCA answers, XReal return-type
//! inference, XSeek return nodes, snippets, and clustering — the tutorial's
//! XML track on one generated bibliography.
//!
//! ```sh
//! cargo run --example xml_explorer
//! ```

use kwdb::datasets::{generate_bib_xml, BibConfig};
use kwdb::explore::cluster::cluster_by_context;
use kwdb::xml::{PathStats, XmlIndex};
use kwdb::xmlsearch::{elca::elca, slca_indexed_lookup_eager, snippet, xreal, xseek};

fn main() -> kwdb::Result<()> {
    let tree = generate_bib_xml(&BibConfig {
        n_conferences: 4,
        n_journals: 2,
        papers_per_venue: 12,
        ..Default::default()
    });
    let index = XmlIndex::build(&tree);
    let stats = PathStats::build(&tree);
    let query = ["data", "query"];
    println!("document: {} nodes; query: {query:?}", tree.len());

    // 1. structure inference: what node type is the user looking for?
    let types = xreal::infer_return_types(&stats, &query);
    println!("\nXReal search-for types:");
    for t in types.iter().take(3) {
        println!("  {:<28} {:.3}", t.path, t.score);
    }

    // 2. SLCA and ELCA answers
    let (slcas, st) = slca_indexed_lookup_eager(&tree, &index, &query)?;
    let (elcas, _) = elca(&tree, &index, &query)?;
    println!(
        "\n{} SLCA results ({} anchors, {} probes); {} ELCA results",
        slcas.len(),
        st.anchors,
        st.probes,
        elcas.len()
    );

    // 3. XSeek: what should be *returned* for each result?
    let specs = xseek::infer_return(&tree, &index, &stats, &query)?;
    if let Some(spec) = specs.first() {
        println!("XSeek return inference for the first result: {spec:?}");
    }

    // 4. snippets for the top results
    println!("\nsnippets:");
    for &root in slcas.iter().take(3) {
        let snip = snippet::generate(&tree, root, &query, 8);
        println!("  {}", snip.render(&tree));
    }

    // 5. cluster results by context (conference vs journal papers)
    let scored: Vec<_> = slcas
        .iter()
        .map(|&n| (n, 1.0 / (1.0 + tree.subtree_size(n) as f64)))
        .collect();
    println!("\nclusters by root context:");
    for c in cluster_by_context(&tree, &scored) {
        println!(
            "  {:<28} {} results (score {:.3})",
            c.description,
            c.members.len(),
            c.score
        );
    }
    Ok(())
}
