//! Exploring a result set: comparison tables, data clouds, faceted
//! navigation and aggregate answers — the tutorial's "result analysis"
//! track on the slide-16 events scenario.
//!
//! ```sh
//! cargo run --example result_exploration
//! ```

use kwdb::common::text::tokenize;
use kwdb::explore::clouds::{co_occurring_terms, top_terms_popularity};
use kwdb::explore::diff::{differentiate, Feature};
use kwdb::explore::facets::{build_greedy, FacetTable, LogModel, LogQuery};
use kwdb::explore::tableagg::{aggregate_search, AggTable};

fn main() {
    // the slide-16 events table
    let events: Vec<(&str, &str, &str, &str)> = vec![
        ("dec", "tx", "houston", "US Open Pool Best of 19 ranking"),
        ("dec", "tx", "dallas", "Cowboy dream run motorcycle beer"),
        (
            "dec",
            "tx",
            "austin",
            "SPAM museum party classical american food",
        ),
        (
            "oct",
            "mi",
            "detroit",
            "Motorcycle rallies tournament round robin",
        ),
        ("oct", "mi", "flint", "Michigan pool exhibition non-ranking"),
        (
            "sep",
            "mi",
            "lansing",
            "American food history best food from usa",
        ),
    ];

    // 1. aggregate keyword query: where can I get all three together?
    let agg = AggTable {
        attributes: vec!["month".into(), "state".into()],
        values: events
            .iter()
            .map(|(m, s, _, _)| vec![m.to_string(), s.to_string()])
            .collect(),
        text: events.iter().map(|(_, _, _, d)| tokenize(d)).collect(),
    };
    let phrases = vec![
        tokenize("motorcycle"),
        tokenize("pool"),
        tokenize("american food"),
    ];
    println!("aggregate answers for {{motorcycle, pool, american food}}:");
    for c in aggregate_search(&agg, &phrases) {
        println!("  {:<10} rows {:?}", c.display(), c.rows);
    }

    // 2. faceted navigation over the same rows
    let table = FacetTable::new(
        vec!["month".into(), "state".into(), "city".into()],
        events
            .iter()
            .map(|(m, s, c, _)| vec![m.to_string(), s.to_string(), c.to_string()])
            .collect(),
    );
    let log: Vec<LogQuery> = vec![
        vec![("state".into(), "tx".into())],
        vec![("state".into(), "mi".into())],
        vec![("month".into(), "dec".into())],
        vec![("state".into(), "tx".into())],
    ];
    let model = LogModel::new(&log);
    let tree = build_greedy(&table, &model, (0..events.len()).collect(), 2);
    println!(
        "\nfaceted navigation: expected cost {:.2} (flat list would cost {:.2})",
        tree.expected_cost(&model),
        events.len() as f64
    );

    // 3. data clouds: what other terms do the motorcycle events mention?
    let docs: Vec<Vec<String>> = events.iter().map(|(_, _, _, d)| tokenize(d)).collect();
    println!("\ntop co-occurring terms with 'motorcycle':");
    for (t, f) in co_occurring_terms(&docs, &["motorcycle"], 4) {
        println!("  {t} ({f})");
    }
    println!("\ntop terms across all events:");
    for (t, f) in top_terms_popularity(&docs, &[] as &[&str], 4) {
        println!("  {t} ({f})");
    }

    // 4. compare the two aggregate answers with a differentiation table
    let results: Vec<Vec<Feature>> = vec![
        vec![
            Feature::new("month", "december"),
            Feature::new("state", "texas"),
            Feature::new("events", "pool, motorcycle, food"),
        ],
        vec![
            Feature::new("month", "sep-oct"),
            Feature::new("state", "michigan"),
            Feature::new("events", "pool, motorcycle, food"),
        ],
    ];
    let cmp = differentiate(&results, 2);
    println!("\ncomparison table (DoD = {}):", cmp.dod);
    for (i, sel) in cmp.selections.iter().enumerate() {
        let cells: Vec<String> = sel
            .iter()
            .map(|f| format!("{}={}", f.ftype, f.value))
            .collect();
        println!("  answer {}: {}", i + 1, cells.join(", "));
    }
}
