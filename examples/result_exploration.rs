//! Exploring a result set: engine-side facets with drill-down, comparison
//! tables, data clouds, faceted navigation and aggregate answers — the
//! tutorial's "result analysis" track on the slide-16 events scenario,
//! rebuilt on the engine API.
//!
//! ```sh
//! cargo run --example result_exploration
//! ```

use kwdb::common::text::tokenize;
use kwdb::explore::clouds::{co_occurring_terms, top_terms_popularity};
use kwdb::explore::diff::{differentiate, Feature};
use kwdb::explore::facets::{build_greedy, FacetTable, LogModel, LogQuery};
use kwdb::explore::tableagg::{aggregate_search, AggTable};
use kwdb::prelude::*;
use kwdb::relational::{ColumnType, Database, TableBuilder, TupleId};

fn events_db() -> Database {
    let mut db = Database::new();
    db.create_table(
        TableBuilder::new("event")
            .column("id", ColumnType::Int)
            .column_no_index("month", ColumnType::Text)
            .column_no_index("state", ColumnType::Text)
            .column_no_index("city", ColumnType::Text)
            .column("description", ColumnType::Text)
            .primary_key("id"),
    )
    .unwrap();
    let events: Vec<(&str, &str, &str, &str)> = vec![
        ("dec", "tx", "houston", "US Open Pool Best of 19 ranking"),
        ("dec", "tx", "dallas", "Cowboy dream run motorcycle beer"),
        (
            "dec",
            "tx",
            "austin",
            "SPAM museum party classical american food",
        ),
        (
            "oct",
            "mi",
            "detroit",
            "Motorcycle rallies tournament round robin",
        ),
        ("oct", "mi", "flint", "Michigan pool exhibition non-ranking"),
        (
            "sep",
            "mi",
            "lansing",
            "American food history best food from usa",
        ),
    ];
    for (i, (m, s, c, d)) in events.iter().enumerate() {
        db.insert(
            "event",
            vec![
                (i as i64 + 1).into(),
                (*m).into(),
                (*s).into(),
                (*c).into(),
                (*d).into(),
            ],
        )
        .unwrap();
    }
    db.build_text_index();
    db
}

fn main() -> kwdb::Result<()> {
    let engine = RelationalEngine::new(events_db());

    // 1. a faceted keyword query: which months/states hold pool events?
    let req = SearchRequest::new("pool")
        .k(10)
        .facet(FacetSpec::terms("event.month", 5))
        .facet(FacetSpec::terms("event.state", 5))
        .summaries(2);
    let resp = engine.execute(&req)?;
    println!(
        "faceted query \"pool\": {} hits, exact counts: {}",
        resp.hits.len(),
        resp.facets_exact
    );
    for facet in &resp.facets {
        let rendered: Vec<String> = facet
            .values
            .iter()
            .map(|v| format!("{}({})", v.value, v.count))
            .collect();
        println!("  {:<14} {}", facet.attr, rendered.join("  "));
    }
    for hit in &resp.hits {
        println!("  [{:.2}] {}", hit.score, hit.summary.join(" | "));
    }

    // 2. drill down on a facet click — same keywords, so the candidate
    // network plan comes straight from the cache
    let drilled = engine.execute(&req.clone().refine(Refinement::Term {
        attr: "event.state".into(),
        value: "mi".into(),
    }))?;
    println!(
        "\ndrill-down state=mi: {} hit(s), plan cache hits {}",
        drilled.hits.len(),
        drilled.stats.cache_hits
    );
    for hit in &drilled.hits {
        println!("  {}", hit.rendered);
    }

    // 3. aggregate keyword query straight off the stored table: where can
    // I get all three together?
    let db = engine.database();
    let db = &*db;
    let agg = AggTable::from_database(db, "event", &["month", "state"])?;
    let phrases = vec![
        tokenize("motorcycle"),
        tokenize("pool"),
        tokenize("american food"),
    ];
    println!("\naggregate answers for {{motorcycle, pool, american food}}:");
    for c in aggregate_search(&agg, &phrases) {
        println!("  {:<10} rows {:?}", c.display(), c.rows);
    }

    // 4. faceted navigation over the full result multiset, projected from
    // engine tuple IDs rather than a hand-maintained copy
    let event = db.table_id("event")?;
    let all_events: Vec<Vec<TupleId>> = db
        .table(event)
        .iter()
        .map(|(rid, _)| vec![TupleId::new(event, rid)])
        .collect();
    let table = FacetTable::from_results(
        db,
        &["event.month", "event.state", "event.city"],
        &all_events,
    )?;
    let log: Vec<LogQuery> = vec![
        vec![("event.state".into(), "tx".into())],
        vec![("event.state".into(), "mi".into())],
        vec![("event.month".into(), "dec".into())],
        vec![("event.state".into(), "tx".into())],
    ];
    let model = LogModel::new(&log);
    let tree = build_greedy(&table, &model, (0..table.rows.len()).collect(), 2);
    println!(
        "\nfaceted navigation: expected cost {:.2} (flat list would cost {:.2})",
        tree.expected_cost(&model),
        table.rows.len() as f64
    );
    let months: Vec<String> = table
        .value_counts("event.month")
        .into_iter()
        .map(|(v, n)| format!("{v}({n})"))
        .collect();
    println!("  month distribution: {}", months.join("  "));

    // 5. data clouds: what other terms do the motorcycle events mention?
    let docs: Vec<Vec<String>> = db
        .table(event)
        .iter()
        .map(|(rid, _)| db.tuple_tokens(TupleId::new(event, rid)))
        .collect();
    println!("\ntop co-occurring terms with 'motorcycle':");
    for (t, f) in co_occurring_terms(&docs, &["motorcycle"], 4) {
        println!("  {t} ({f})");
    }
    println!("\ntop terms across all events:");
    for (t, f) in top_terms_popularity(&docs, &[] as &[&str], 4) {
        println!("  {t} ({f})");
    }

    // 6. compare the two aggregate answers with a differentiation table
    let results: Vec<Vec<Feature>> = vec![
        vec![
            Feature::new("month", "december"),
            Feature::new("state", "texas"),
            Feature::new("events", "pool, motorcycle, food"),
        ],
        vec![
            Feature::new("month", "sep-oct"),
            Feature::new("state", "michigan"),
            Feature::new("events", "pool, motorcycle, food"),
        ],
    ];
    let cmp = differentiate(&results, 2);
    println!("\ncomparison table (DoD = {}):", cmp.dod);
    for (i, sel) in cmp.selections.iter().enumerate() {
        let cells: Vec<String> = sel
            .iter()
            .map(|f| format!("{}={}", f.ftype, f.value))
            .collect();
        println!("  answer {}: {}", i + 1, cells.join(", "));
    }
    Ok(())
}
