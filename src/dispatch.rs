//! Concurrent dispatch over a catalog of heterogeneous engines.
//!
//! A [`Catalog`] maps engine names to `Arc<dyn Engine>` — one relational
//! database, three data graphs, an XML corpus, whatever mix the deployment
//! serves. A [`Dispatcher`] then fans a batch of `(engine name, request)`
//! pairs out over a bounded pool of scoped worker threads, preserves input
//! order in the output, and merges every response's [`QueryStats`] into one
//! batch-level total.
//!
//! This is what the ownership refactor buys: engines are `Send + Sync` and
//! hold their data behind `Arc`s, so the same engine instance can serve
//! requests from many worker threads at once with no cloning and no
//! serialization beyond its own read-mostly caches.
//!
//! ```
//! use kwdb::dispatch::{Catalog, Dispatcher};
//! use kwdb::engine::{GraphEngine, RelationalEngine, SearchRequest};
//! use kwdb::datasets::{generate_dblp, DblpConfig};
//!
//! let mut catalog = Catalog::new();
//! catalog.register(
//!     "dblp",
//!     RelationalEngine::new(generate_dblp(&DblpConfig::default())),
//! );
//! catalog.register(
//!     "social",
//!     GraphEngine::new(kwdb::datasets::graphs::generate_graph(&Default::default())),
//! );
//!
//! let batch = vec![
//!     ("dblp".to_string(), SearchRequest::new("data query").k(3)),
//!     ("social".to_string(), SearchRequest::new("kw0 kw1").k(3)),
//! ];
//! let outcome = Dispatcher::new(catalog).execute_concurrent(&batch);
//! assert_eq!(outcome.responses.len(), 2);
//! ```

use crate::engine::{
    CommitOutcome, DeleteKey, Engine, Hit, IngestRecord, MutableEngine, SearchRequest,
    SearchResponse,
};
use kwdb_common::{KwdbError, QueryStats, Result};
use kwdb_obs::{families, MetricsRegistry};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// A name → engine registry.
///
/// Engines are stored as `Arc<dyn Engine>`, so one engine instance can be
/// registered under several names, shared with callers outside the catalog,
/// and queried from any number of threads.
#[derive(Default, Clone)]
pub struct Catalog {
    engines: BTreeMap<String, Arc<dyn Engine>>,
    /// The subset of engines that also accept mutations. Entries here are
    /// always mirrored in `engines` (upcast), so every mutable engine is
    /// queryable under the same name.
    mutable: BTreeMap<String, Arc<dyn MutableEngine>>,
}

impl Catalog {
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Register `engine` under `name`, replacing any previous entry. Accepts
    /// a concrete engine (moved in) or an `Arc<dyn Engine>` handle.
    pub fn register(&mut self, name: impl Into<String>, engine: impl IntoEngineHandle) {
        self.engines.insert(name.into(), engine.into_handle());
    }

    /// Register a mutable engine under `name`: queryable through the usual
    /// read surface *and* reachable by [`Catalog::ingest`] /
    /// [`Catalog::delete`] / [`Catalog::commit`]. Replaces any previous
    /// entry under the name.
    pub fn register_mutable(
        &mut self,
        name: impl Into<String>,
        engine: impl IntoMutableEngineHandle,
    ) {
        let name = name.into();
        let handle = engine.into_mutable_handle();
        self.engines
            .insert(name.clone(), Arc::clone(&handle) as Arc<dyn Engine>);
        self.mutable.insert(name, handle);
    }

    /// Look up an engine by name.
    pub fn get(&self, name: &str) -> Option<&Arc<dyn Engine>> {
        self.engines.get(name)
    }

    /// Look up an engine's mutation surface by name.
    pub fn get_mutable(&self, name: &str) -> Option<&Arc<dyn MutableEngine>> {
        self.mutable.get(name)
    }

    /// Resolve `name` to its mutation surface, with typed errors: a name
    /// absent from the whole catalog is [`KwdbError::UnknownObject`]; a name
    /// registered read-only is [`KwdbError::ReadOnly`].
    fn mutable_engine(&self, name: &str) -> Result<&Arc<dyn MutableEngine>> {
        match self.mutable.get(name) {
            Some(engine) => Ok(engine),
            None if self.engines.contains_key(name) => {
                Err(KwdbError::ReadOnly(format!("{name:?}")))
            }
            None => Err(KwdbError::UnknownObject(format!(
                "no engine named {name:?} in catalog (have: {:?})",
                self.names().collect::<Vec<_>>()
            ))),
        }
    }

    /// Ingest one record into the named engine's realtime segment.
    pub fn ingest(&self, name: &str, record: IngestRecord) -> Result<()> {
        self.mutable_engine(name)?.ingest(record)
    }

    /// Tombstone one document in the named engine.
    pub fn delete(&self, name: &str, key: DeleteKey) -> Result<()> {
        self.mutable_engine(name)?.delete(key)
    }

    /// Seal the named engine's realtime segment into an immutable one.
    pub fn commit(&self, name: &str) -> Result<CommitOutcome> {
        self.mutable_engine(name)?.commit()
    }

    /// Registered names, sorted.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.engines.keys().map(String::as_str)
    }

    pub fn len(&self) -> usize {
        self.engines.len()
    }

    pub fn is_empty(&self) -> bool {
        self.engines.is_empty()
    }

    /// Execute one request against the named engine.
    pub fn execute(&self, name: &str, req: &SearchRequest) -> Result<SearchResponse<Hit>> {
        match self.engines.get(name) {
            Some(engine) => engine.execute(req),
            None => Err(KwdbError::UnknownObject(format!(
                "no engine named {name:?} in catalog (have: {:?})",
                self.names().collect::<Vec<_>>()
            ))),
        }
    }
}

/// Everything `Catalog::register` accepts as an engine.
pub trait IntoEngineHandle {
    fn into_handle(self) -> Arc<dyn Engine>;
}

impl<E: Engine + 'static> IntoEngineHandle for E {
    fn into_handle(self) -> Arc<dyn Engine> {
        Arc::new(self)
    }
}

impl IntoEngineHandle for Arc<dyn Engine> {
    fn into_handle(self) -> Arc<dyn Engine> {
        self
    }
}

/// Everything `Catalog::register_mutable` accepts.
pub trait IntoMutableEngineHandle {
    fn into_mutable_handle(self) -> Arc<dyn MutableEngine>;
}

impl<E: MutableEngine + 'static> IntoMutableEngineHandle for E {
    fn into_mutable_handle(self) -> Arc<dyn MutableEngine> {
        Arc::new(self)
    }
}

impl IntoMutableEngineHandle for Arc<dyn MutableEngine> {
    fn into_mutable_handle(self) -> Arc<dyn MutableEngine> {
        self
    }
}

/// The outcome of a dispatched batch.
#[derive(Debug)]
pub struct DispatchOutcome {
    /// One entry per input request, in input order. `Err` entries are
    /// per-request failures (unknown engine name, parse errors …) — they
    /// never abort the rest of the batch.
    pub responses: Vec<Result<SearchResponse<Hit>>>,
    /// Every successful response's [`QueryStats`] merged into one total.
    pub totals: QueryStats,
}

impl DispatchOutcome {
    /// Successful responses, in input order, skipping failures.
    pub fn successes(&self) -> impl Iterator<Item = &SearchResponse<Hit>> {
        self.responses.iter().filter_map(|r| r.as_ref().ok())
    }
}

/// Fans batches of requests out over scoped worker threads.
///
/// With a [`MetricsRegistry`] attached ([`Dispatcher::with_registry`]),
/// every dispatched request is also recorded fleet-wide: queue wait
/// (`kwdb_dispatch_queue_wait_ns`), in-flight gauge
/// (`kwdb_dispatch_inflight`), outcome counts
/// (`kwdb_dispatch_requests_total`), and per-worker request counts
/// (`kwdb_dispatch_worker_requests_total`).
pub struct Dispatcher {
    catalog: Catalog,
    workers: usize,
    registry: Option<Arc<MetricsRegistry>>,
    /// When `false`, every dispatched request is opted out of the engines'
    /// result caches ([`SearchRequest::caching`]).
    result_caching: bool,
}

impl Dispatcher {
    /// A dispatcher over `catalog` with one worker per available CPU
    /// (capped at 8).
    pub fn new(catalog: Catalog) -> Self {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
            .min(8);
        Self::with_workers(catalog, workers)
    }

    /// A dispatcher with an explicit worker count (clamped to ≥ 1).
    pub fn with_workers(catalog: Catalog, workers: usize) -> Self {
        Dispatcher {
            catalog,
            workers: workers.max(1),
            registry: None,
            result_caching: true,
        }
    }

    /// Fleet-wide result-cache switch for dispatched requests: with `false`
    /// every request is cloned with [`SearchRequest::caching`] off before it
    /// reaches an engine, so a whole dispatcher can be made cache-free
    /// (determinism suites, benchmarks) without touching engine configs.
    /// Default `true`: each engine's own [`kwdb_common::CacheConfig`] rules.
    pub fn with_result_caching(mut self, on: bool) -> Self {
        self.result_caching = on;
        self
    }

    /// Record dispatch-level metrics into `registry`. This is independent
    /// of the engines' own registries: attach the same `Arc` to both to get
    /// one unified snapshot.
    pub fn with_registry(mut self, registry: Arc<MetricsRegistry>) -> Self {
        self.registry = Some(registry);
        self
    }

    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Ingest one record into the named engine (see [`Catalog::ingest`]).
    /// Concurrent with query dispatch: engines snapshot their state per
    /// query, so in-flight requests see a consistent generation.
    pub fn ingest(&self, name: &str, record: IngestRecord) -> Result<()> {
        self.catalog.ingest(name, record)
    }

    /// Tombstone one document in the named engine.
    pub fn delete(&self, name: &str, key: DeleteKey) -> Result<()> {
        self.catalog.delete(name, key)
    }

    /// Seal the named engine's realtime segment.
    pub fn commit(&self, name: &str) -> Result<CommitOutcome> {
        self.catalog.commit(name)
    }

    /// Execute one request, honoring the dispatcher's result-cache switch.
    fn execute_one(&self, name: &str, req: &SearchRequest) -> Result<SearchResponse<Hit>> {
        if self.result_caching {
            self.catalog.execute(name, req)
        } else {
            self.catalog.execute(name, &req.clone().caching(false))
        }
    }

    /// Execute the whole batch on the calling thread. The reference
    /// behavior `execute_concurrent` is tested against.
    pub fn execute_serial(&self, batch: &[(String, SearchRequest)]) -> DispatchOutcome {
        let started = Instant::now();
        let responses: Vec<_> = batch
            .iter()
            .map(|(name, req)| {
                let wait = started.elapsed();
                let mut resp = self.execute_one(name, req);
                Self::splice_queue_wait(&mut resp, wait);
                self.record_request("serial", 0, wait, resp.is_ok());
                resp
            })
            .collect();
        Self::outcome(responses)
    }

    /// Execute the batch across scoped worker threads.
    ///
    /// Work is claimed from a shared atomic cursor, so long-running
    /// requests don't stall the queue behind them. Output order matches
    /// input order regardless of completion order, and per-request failures
    /// are reported in place rather than aborting the batch. With
    /// deterministic budgets (candidate caps, not wall-clock deadlines) the
    /// hits are identical to [`Dispatcher::execute_serial`].
    pub fn execute_concurrent(&self, batch: &[(String, SearchRequest)]) -> DispatchOutcome {
        if batch.is_empty() {
            return Self::outcome(Vec::new());
        }
        let workers = self.workers.min(batch.len());
        if workers == 1 {
            return self.execute_serial(batch);
        }
        let started = Instant::now();
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<Result<SearchResponse<Hit>>>>> =
            batch.iter().map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            let next = &next;
            let slots = &slots;
            for worker in 0..workers {
                scope.spawn(move || loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some((name, req)) = batch.get(i) else {
                        break;
                    };
                    let wait = started.elapsed();
                    let inflight = self
                        .registry
                        .as_ref()
                        .map(|reg| reg.gauge(families::DISPATCH_INFLIGHT, &[]));
                    if let Some(g) = &inflight {
                        g.inc();
                    }
                    let mut resp = self.execute_one(name, req);
                    if let Some(g) = &inflight {
                        g.dec();
                    }
                    Self::splice_queue_wait(&mut resp, wait);
                    self.record_request("concurrent", worker, wait, resp.is_ok());
                    *slots[i].lock().expect("result slot poisoned") = Some(resp);
                });
            }
        });
        let responses: Vec<_> = slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("result slot poisoned")
                    .expect("every slot filled before scope ends")
            })
            .collect();
        Self::outcome(responses)
    }

    /// Splice the time a request sat in the dispatch queue into its trace
    /// as a synthetic leading `queue_wait` span, so a traced query's span
    /// tree covers the full dispatch-to-response interval, not just engine
    /// time. No-op for untraced or failed requests.
    fn splice_queue_wait(resp: &mut Result<SearchResponse<Hit>>, wait: Duration) {
        if let Ok(r) = resp {
            if let Some(trace) = &mut r.trace {
                trace.prepend_span("queue_wait", wait);
            }
        }
    }

    /// Fold one dispatched request into the registry, if one is attached.
    fn record_request(&self, mode: &str, worker: usize, wait: Duration, ok: bool) {
        let Some(reg) = &self.registry else { return };
        reg.histogram(families::DISPATCH_QUEUE_WAIT, &[("mode", mode)])
            .record_duration(wait);
        reg.counter(
            families::DISPATCH_REQUESTS,
            &[("outcome", if ok { "ok" } else { "error" })],
        )
        .inc();
        let w = worker.to_string();
        reg.counter(families::DISPATCH_WORKER_REQUESTS, &[("worker", &w)])
            .inc();
    }

    fn outcome(responses: Vec<Result<SearchResponse<Hit>>>) -> DispatchOutcome {
        let mut totals = QueryStats::new();
        for resp in responses.iter().filter_map(|r| r.as_ref().ok()) {
            totals.merge(&resp.stats);
        }
        DispatchOutcome { responses, totals }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{GraphEngine, GraphSemantics, RelationalEngine, XmlEngine};
    use kwdb_datasets::{generate_dblp, DblpConfig};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.register(
            "dblp",
            RelationalEngine::new(generate_dblp(&DblpConfig {
                n_papers: 60,
                n_authors: 30,
                ..Default::default()
            })),
        );
        c.register(
            "social",
            GraphEngine::new(kwdb_datasets::graphs::generate_graph(&Default::default())),
        );
        c.register(
            "bib",
            XmlEngine::from_tree(kwdb_datasets::generate_bib_xml(&Default::default())),
        );
        c
    }

    #[test]
    fn unknown_engine_is_a_per_request_error() {
        let d = Dispatcher::with_workers(catalog(), 4);
        let batch = vec![
            ("dblp".to_string(), SearchRequest::new("data query").k(2)),
            ("nope".to_string(), SearchRequest::new("data").k(2)),
        ];
        let out = d.execute_concurrent(&batch);
        assert_eq!(out.responses.len(), 2);
        assert!(out.responses[0].is_ok());
        let err = out.responses[1].as_ref().unwrap_err().to_string();
        assert!(
            err.contains("nope"),
            "error names the missing engine: {err}"
        );
        assert_eq!(out.successes().count(), 1);
    }

    #[test]
    fn totals_merge_across_models() {
        let d = Dispatcher::with_workers(catalog(), 4);
        let batch = vec![
            ("dblp".to_string(), SearchRequest::new("data query").k(2)),
            (
                "social".to_string(),
                SearchRequest::new("kw0 kw1")
                    .k(2)
                    .semantics(GraphSemantics::DistinctRoot),
            ),
            ("bib".to_string(), SearchRequest::new("data query").k(2)),
        ];
        let out = d.execute_concurrent(&batch);
        assert!(out.responses.iter().all(|r| r.is_ok()));
        let by_hand = out
            .successes()
            .map(|r| r.stats.operators.tuples_scanned)
            .sum::<u64>();
        assert_eq!(out.totals.operators.tuples_scanned, by_hand);
        assert!(
            out.totals.operators.sorted_accesses > 0,
            "blinks + slca counted"
        );
    }

    #[test]
    fn queue_wait_span_leads_traced_responses() {
        let d = Dispatcher::with_workers(catalog(), 2);
        let batch = vec![
            (
                "dblp".to_string(),
                SearchRequest::new("data query")
                    .k(2)
                    .trace(kwdb_obs::TraceLevel::Phases),
            ),
            ("bib".to_string(), SearchRequest::new("data query").k(2)),
        ];
        let out = d.execute_concurrent(&batch);
        let trace = out.responses[0]
            .as_ref()
            .unwrap()
            .trace
            .as_ref()
            .expect("traced request keeps its trace through dispatch");
        assert_eq!(trace.phases[0].name, "queue_wait");
        assert_eq!(trace.phases[0].start, Duration::ZERO);
        assert!(
            trace.total >= trace.phases[0].duration,
            "queue wait counted into the trace total"
        );
        assert!(
            out.responses[1].as_ref().unwrap().trace.is_none(),
            "untraced requests stay untraced"
        );
    }

    #[test]
    fn empty_batch() {
        let d = Dispatcher::new(catalog());
        let out = d.execute_concurrent(&[]);
        assert!(out.responses.is_empty());
        assert_eq!(out.totals.operators.tuples_scanned, 0);
        assert_eq!(out.totals.cache_misses, 0);
    }

    #[test]
    fn mutations_route_through_the_catalog() {
        use crate::engine::IngestRecord;
        let mut c = Catalog::new();
        let mut db = kwdb_relational::Database::new();
        kwdb_relational::database::dblp_schema(&mut db).unwrap();
        db.build_text_index();
        c.register_mutable("live", RelationalEngine::new(db));
        c.register(
            "frozen",
            XmlEngine::from_tree(kwdb_datasets::generate_bib_xml(&Default::default())),
        );
        let d = Dispatcher::with_workers(c, 2);

        // Ingest, then query the same name: the row is immediately visible.
        d.ingest(
            "live",
            IngestRecord::Tuple {
                table: "author".into(),
                values: vec![1.into(), "Jennifer Widom".into()],
            },
        )
        .unwrap();
        let out = d.execute_concurrent(&[("live".to_string(), SearchRequest::new("widom").k(3))]);
        assert_eq!(out.responses[0].as_ref().unwrap().hits.len(), 1);
        let outcome = d.commit("live").unwrap();
        assert_eq!(outcome.segments.realtime, 0);

        // Typed errors: read-only engine vs unknown name.
        let ro = d
            .ingest(
                "frozen",
                IngestRecord::Tuple {
                    table: "author".into(),
                    values: vec![2.into(), "X".into()],
                },
            )
            .unwrap_err();
        assert!(matches!(ro, KwdbError::ReadOnly(_)), "got {ro:?}");
        assert!(matches!(
            d.commit("nope").unwrap_err(),
            KwdbError::UnknownObject(_)
        ));

        // The mutable handle is the same engine the read path serves.
        assert!(d.catalog().get("live").is_some());
        assert_eq!(
            d.catalog().get_mutable("live").unwrap().generation(),
            outcome.generation
        );
    }

    #[test]
    fn shared_engine_under_two_names() {
        let engine: Arc<dyn Engine> = Arc::new(RelationalEngine::new(generate_dblp(&DblpConfig {
            n_papers: 40,
            n_authors: 20,
            ..Default::default()
        })));
        let mut c = Catalog::new();
        c.register("a", Arc::clone(&engine));
        c.register("b", engine);
        assert_eq!(c.len(), 2);
        let d = Dispatcher::with_workers(c, 2);
        let batch = vec![
            ("a".to_string(), SearchRequest::new("data query").k(2)),
            ("b".to_string(), SearchRequest::new("data query").k(2)),
        ];
        let out = d.execute_concurrent(&batch);
        assert!(out.responses.iter().all(|r| r.is_ok()));
        // Same engine ⇒ the second query is answered by the shared result
        // cache: exactly one execution computed (and planned — one plan
        // miss, no plan hit, because the cached query never reaches the
        // planner), the other was a result-cache hit whether it raced the
        // leader (singleflight follower) or arrived after it.
        assert_eq!(out.totals.result_cache_misses, 1);
        assert_eq!(out.totals.result_cache_hits, 1);
        assert_eq!(out.totals.cache_misses, 1);
        assert_eq!(out.totals.cache_hits, 0);
        let a = &out.responses[0].as_ref().unwrap().hits;
        let b = &out.responses[1].as_ref().unwrap().hits;
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.score(), y.score());
        }
    }

    #[test]
    fn dispatcher_result_caching_switch_opts_every_request_out() {
        let mut c = Catalog::new();
        c.register(
            "dblp",
            RelationalEngine::new(generate_dblp(&DblpConfig {
                n_papers: 40,
                n_authors: 20,
                ..Default::default()
            })),
        );
        let d = Dispatcher::with_workers(c, 2).with_result_caching(false);
        let batch = vec![
            ("dblp".to_string(), SearchRequest::new("data query").k(2)),
            ("dblp".to_string(), SearchRequest::new("data query").k(2)),
        ];
        let out = d.execute_concurrent(&batch);
        assert!(out.responses.iter().all(|r| r.is_ok()));
        assert_eq!(
            (out.totals.result_cache_hits, out.totals.result_cache_misses),
            (0, 0),
            "caching off ⇒ the result cache is never consulted"
        );
        // Both queries reach the planner: one plan miss and one plan hit,
        // in either arrival order.
        assert_eq!(out.totals.cache_misses, 1);
        assert_eq!(out.totals.cache_hits, 1);
    }
}
