//! # kwdb — keyword-based search and exploration on databases
//!
//! A comprehensive Rust implementation of the technique families surveyed
//! in the ICDE 2011 tutorial *Keyword-based Search and Exploration on
//! Databases* (Chen, Wang & Liu): relational keyword search via candidate
//! networks (DISCOVER/SPARK), graph search (BANKS, DPBF, BLINKS, EASE),
//! XML search (SLCA/ELCA, XSeek, XReal), keyword-ambiguity handling
//! (cleaning, completion, rewriting), query forms, result exploration
//! (differentiation, clustering, facets), and an evaluation kit.
//!
//! ## Quickstart
//!
//! ```
//! use kwdb::engine::{RelationalEngine, SearchRequest};
//! use kwdb::datasets::{generate_dblp, DblpConfig};
//!
//! let db = generate_dblp(&DblpConfig { n_papers: 100, ..Default::default() });
//! let engine = RelationalEngine::new(db); // engine owns the data: Send + Sync
//! let resp = engine.execute(&SearchRequest::new("widom data").k(5)).unwrap();
//! for hit in &resp.hits {
//!     println!("{:.3}  {}", hit.score, hit.rendered);
//! }
//! println!(
//!     "{} candidate networks in {:?}{}",
//!     resp.stats.candidates_generated,
//!     resp.stats.phases.total(),
//!     if resp.truncated() { " (truncated)" } else { "" },
//! );
//! ```
//!
//! Each sub-crate is re-exported under a short module name; the
//! [`engine`] module offers one-call entry points per data model, and the
//! [`dispatch`] module runs heterogeneous engines concurrently behind a
//! name → `Arc<dyn Engine>` catalog. The [`obs`] module is the
//! observability layer: a shared metrics registry with latency histograms,
//! structured `EXPLAIN ANALYZE`-style query traces, and Prometheus/JSON
//! exporters.

pub use kwdb_common as common;
pub use kwdb_datasets as datasets;
pub use kwdb_eval as eval;
pub use kwdb_explore as explore;
pub use kwdb_forms as forms;
pub use kwdb_graph as graph;
pub use kwdb_graphsearch as graphsearch;
pub use kwdb_obs as obs;
pub use kwdb_qclean as qclean;
pub use kwdb_rank as rank;
pub use kwdb_relational as relational;
pub use kwdb_relsearch as relsearch;
pub use kwdb_xml as xml;
pub use kwdb_xmlsearch as xmlsearch;

pub mod dispatch;
pub mod engine;
pub mod prelude;

pub use common::{KwdbError, Result};
pub use engine::{CommitOutcome, DeleteKey, Engine, IngestRecord, MutableEngine};
