//! Unified one-call engines over the three data models.
//!
//! These wrap the full pipelines so an application can go from a query
//! string to ranked, rendered results in one call, while everything stays
//! overridable by dropping down to the underlying crates.

use kwdb_common::text::parse_query;
use kwdb_common::Result;
use kwdb_graph::DataGraph;
use kwdb_graphsearch::{blinks::Blinks, AnswerTree, BanksI, Dpbf};
use kwdb_relational::{Database, ExecStats};
use kwdb_relsearch::cn::{CnGenConfig, CnGenerator, MaskOracle};
use kwdb_relsearch::spark::skyline_sweep;
use kwdb_relsearch::topk::{global_pipeline, TopKQuery};
use kwdb_relsearch::{ResultScorer, TupleSets};
use kwdb_xml::{XmlIndex, XmlTree};

/// A rendered relational hit.
#[derive(Debug, Clone)]
pub struct RelationalHit {
    pub score: f64,
    /// The joining tree of tuples, rendered `table(v, …) ⋈ table(v, …)`.
    pub rendered: String,
    pub tuples: Vec<kwdb_relational::TupleId>,
}

/// Which scoring model the relational engine ranks with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scoring {
    /// DISCOVER2's monotone tf·idf-per-tuple model (Global Pipeline).
    #[default]
    Monotone,
    /// SPARK's non-monotonic virtual-document model (Skyline-Sweep).
    Spark,
}

/// Configuration for the relational pipeline.
#[derive(Debug, Clone, Copy)]
pub struct RelationalConfig {
    /// Maximum candidate-network size.
    pub max_cn_size: usize,
    /// Safety cap on generated CNs (0 = unlimited).
    pub max_cns: usize,
    pub scoring: Scoring,
}

impl Default for RelationalConfig {
    fn default() -> Self {
        RelationalConfig {
            max_cn_size: 5,
            max_cns: 2000,
            scoring: Scoring::Monotone,
        }
    }
}

/// DISCOVER-style keyword search over a relational database: tuple sets →
/// candidate networks → bound-driven top-k evaluation.
pub struct RelationalEngine<'db> {
    db: &'db Database,
    scorer: ResultScorer<'db>,
    cfg: RelationalConfig,
}

impl<'db> RelationalEngine<'db> {
    pub fn new(db: &'db Database) -> Self {
        Self::with_config(db, RelationalConfig::default())
    }

    pub fn with_config(db: &'db Database, cfg: RelationalConfig) -> Self {
        RelationalEngine {
            db,
            scorer: ResultScorer::new(db),
            cfg,
        }
    }

    /// Top-k joining trees of tuples for a free-text query string.
    pub fn search(&self, query: &str, k: usize) -> Result<Vec<RelationalHit>> {
        let keywords = parse_query(query);
        if keywords.is_empty() {
            return Ok(Vec::new());
        }
        let ts = TupleSets::build(self.db, &keywords);
        if !ts.covers_all_keywords() {
            return Ok(Vec::new());
        }
        let oracle = MaskOracle::from_tuplesets(&ts);
        let mut generator = CnGenerator::new(
            self.db.schema_graph(),
            &oracle,
            CnGenConfig {
                max_size: self.cfg.max_cn_size,
                dedupe: true,
                max_cns: self.cfg.max_cns,
            },
        );
        let cns = generator.generate();
        let q = TopKQuery {
            db: self.db,
            ts: &ts,
            cns: &cns,
            scorer: &self.scorer,
            keywords: &keywords,
        };
        let stats = ExecStats::new();
        let ranked = match self.cfg.scoring {
            Scoring::Monotone => global_pipeline(&q, k, &stats),
            Scoring::Spark => skyline_sweep(&q, k, &stats),
        };
        Ok(ranked
            .into_iter()
            .map(|r| RelationalHit {
                score: r.score,
                rendered: r
                    .result
                    .tuples
                    .iter()
                    .map(|&t| self.db.format_tuple(t))
                    .collect::<Vec<_>>()
                    .join(" ⋈ "),
                tuples: r.result.tuples,
            })
            .collect())
    }
}

/// Graph answer semantics selectable on [`graph_search`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GraphSemantics {
    /// Exact group Steiner trees (DPBF).
    SteinerExact,
    /// BANKS backward search (distinct-root, approximate Steiner).
    Banks,
    /// BLINKS: distinct-root via the node→keyword index and TA.
    DistinctRoot,
}

/// Keyword search on a data graph under the chosen semantics.
pub fn graph_search(
    g: &DataGraph,
    query: &str,
    k: usize,
    semantics: GraphSemantics,
) -> Vec<AnswerTree> {
    let keywords = parse_query(query);
    if keywords.is_empty() {
        return Vec::new();
    }
    match semantics {
        GraphSemantics::SteinerExact => Dpbf::new(g).search(&keywords, k),
        GraphSemantics::Banks => BanksI::new(g).search(&keywords, k),
        GraphSemantics::DistinctRoot => {
            let mut bl = Blinks::new(g);
            let ix = bl.build_index(&keywords);
            bl.search(&ix, &keywords, k)
        }
    }
}

/// A ranked XML hit: a result subtree root.
#[derive(Debug, Clone)]
pub struct XmlHit {
    pub root: kwdb_xml::NodeId,
    pub score: f64,
    pub label_path: String,
}

/// SLCA keyword search over an XML tree, ranked by XBridge-style keyword
/// proximity: the root-to-match paths of all keywords, with shared prefix
/// segments charged once and over-long paths discounted
/// ([`kwdb_rank::proximity`], tutorial slides 158–160).
pub fn xml_search(tree: &XmlTree, index: &XmlIndex, query: &str, k: usize) -> Result<Vec<XmlHit>> {
    let keywords = parse_query(query);
    if keywords.is_empty() {
        return Ok(Vec::new());
    }
    let (roots, _) = kwdb_xmlsearch::slca_indexed_lookup_eager(tree, index, &keywords)?;
    let sizes = tree.subtree_sizes();
    let avg_depth = tree.avg_leaf_depth();
    let mut hits: Vec<XmlHit> = roots
        .into_iter()
        .map(|r| {
            // root→match path (node ids) for each keyword's first match
            // inside the result subtree
            let end = kwdb_xml::NodeId(r.0 + sizes[r.0 as usize]);
            let paths: Vec<Vec<u64>> = keywords
                .iter()
                .filter_map(|kw| {
                    let list = index.nodes(kw);
                    let lo = list.partition_point(|&x| x < r);
                    let m = *list.get(lo).filter(|&&m| m < end)?;
                    let mut path = vec![m.0 as u64];
                    let mut cur = m;
                    while cur != r {
                        cur = tree.parent(cur).expect("r is an ancestor");
                        path.push(cur.0 as u64);
                    }
                    path.reverse();
                    Some(path)
                })
                .collect();
            XmlHit {
                score: kwdb_rank::proximity::proximity_score(&paths, avg_depth),
                label_path: tree.label_path(r),
                root: r,
            }
        })
        .collect();
    hits.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap()
            .then(a.root.cmp(&b.root))
    });
    hits.truncate(k);
    Ok(hits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kwdb_datasets::{generate_dblp, DblpConfig};

    #[test]
    fn relational_engine_end_to_end() {
        let db = generate_dblp(&DblpConfig {
            n_papers: 60,
            n_authors: 30,
            ..Default::default()
        });
        let engine = RelationalEngine::new(&db);
        let hits = engine.search("data query", 5).unwrap();
        assert!(!hits.is_empty());
        assert!(hits.windows(2).all(|w| w[0].score >= w[1].score));
        assert!(hits[0].rendered.contains('('));
    }

    #[test]
    fn relational_engine_empty_and_unmatched() {
        let db = generate_dblp(&DblpConfig::default());
        let engine = RelationalEngine::new(&db);
        assert!(engine.search("", 5).unwrap().is_empty());
        assert!(engine.search("zzzzqqq data", 5).unwrap().is_empty());
    }

    #[test]
    fn graph_search_all_semantics() {
        let g = kwdb_datasets::graphs::generate_graph(&Default::default());
        let exact = graph_search(&g, "kw0 kw1", 3, GraphSemantics::SteinerExact);
        let banks = graph_search(&g, "kw0 kw1", 3, GraphSemantics::Banks);
        let droot = graph_search(&g, "kw0 kw1", 3, GraphSemantics::DistinctRoot);
        assert!(!exact.is_empty());
        assert!(!banks.is_empty());
        assert!(!droot.is_empty());
        assert!(banks[0].cost >= exact[0].cost - 1e-9, "DPBF is optimal");
        assert!(droot[0].cost >= exact[0].cost - 1e-9);
    }

    #[test]
    fn spark_scoring_mode_works() {
        let db = generate_dblp(&DblpConfig {
            n_papers: 60,
            n_authors: 30,
            ..Default::default()
        });
        let engine = RelationalEngine::with_config(
            &db,
            RelationalConfig {
                scoring: Scoring::Spark,
                ..Default::default()
            },
        );
        let hits = engine.search("data query", 5).unwrap();
        assert!(!hits.is_empty());
        assert!(hits.windows(2).all(|w| w[0].score >= w[1].score));
    }

    #[test]
    fn xml_search_ranks_small_results_first() {
        let tree = kwdb_datasets::generate_bib_xml(&Default::default());
        let ix = XmlIndex::build(&tree);
        let hits = xml_search(&tree, &ix, "data query", 10).unwrap();
        if hits.len() >= 2 {
            assert!(hits[0].score >= hits[1].score);
        }
    }
}
