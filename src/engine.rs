//! Unified one-call engines over the three data models.
//!
//! Every engine answers the same shape of request: a [`SearchRequest`]
//! (query string, `k`, an execution [`Budget`], a [`TraceLevel`], and
//! per-model knobs) goes in, a [`SearchResponse`] comes out — ranked hits,
//! the [`QueryStats`] observability record (per-phase timings, operator
//! counters, cache counters), a typed [`TruncationReason`] when the budget
//! cut the query short (so callers can tell a deadline from a candidate
//! cap), and a structured [`QueryTrace`] when the request asked for one.
//!
//! Engines optionally carry a shared [`MetricsRegistry`]
//! (`with_registry`): every query then also folds its stats into the
//! fleet-wide counters and latency histograms under
//! `engine × algorithm` labels — see [`kwdb_obs`].
//!
//! * [`RelationalEngine::execute`] — DISCOVER/SPARK candidate-network
//!   search, with a per-engine CN plan cache keyed by schema fingerprint,
//!   keyword term set, and generator configuration.
//! * [`GraphEngine::execute`] — DPBF / BANKS / BLINKS on a data graph; the
//!   BLINKS node→keyword index is built once per engine and reused.
//! * [`XmlEngine::execute`] — SLCA with XBridge-style proximity ranking.
//!
//! # Threading model
//!
//! Engines **own** their data behind an [`Arc`] (`Arc<Database>`,
//! `Arc<DataGraph>`, `Arc<(XmlTree, XmlIndex)>`), so every engine is
//! `'static`, `Send + Sync`, and can be stored in a long-lived registry and
//! queried from many threads at once — `execute` takes `&self` and all
//! per-query state (counters, heaps, cursors) lives on the query's own
//! stack. Shared mutable state is read-mostly and lock-guarded: the
//! relational engine's generational state (database handle + corpus
//! statistics), its CN plan cache, and the graph engine's generation-tagged
//! BLINKS index all live behind `RwLock`s.
//!
//! # Generations and mutation
//!
//! Mutable engines implement [`MutableEngine`]: `ingest`/`delete` apply a
//! change *and* maintain the index incrementally (realtime segment,
//! tombstones, corpus statistics), `commit` seals the realtime segment into
//! a compressed sealed segment. Every successful mutation bumps a
//! monotonic **generation counter** which keys the CN plan cache and the
//! flight-recorder records, so cached plans and diagnostics can never
//! silently describe an older database. A query holds the engine state's
//! read lock end to end and therefore always sees one consistent
//! generation; mutations copy-on-write when the data is shared
//! ([`Arc::make_mut`]), so handles returned earlier keep their snapshot.
//!
//! The [`Engine`] trait erases the per-model hit types into the [`Hit`]
//! enum so heterogeneous engines can live behind `Arc<dyn Engine>` in one
//! [`crate::dispatch::Catalog`] and be fanned out over threads by
//! [`crate::dispatch::Dispatcher`].
//!
//! The per-paradigm crates (`kwdb_graphsearch`, `kwdb_relsearch`,
//! `kwdb_xmlsearch`) stay borrow-based — the zero-copy escape hatch when
//! you hold the data on the stack and don't need to share the engine.

use kwdb_common::index::{Layout, SegmentCounts};
use kwdb_common::text::parse_query;
use kwdb_common::{
    Budget, CacheConfig, FacetCounts, FacetSpec, Looked, QueryStats, Result, ScratchPool,
    ShardedCache, Stopwatch, TruncationReason, Value,
};
use kwdb_explore::summary::{object_summary, render_summary};
use kwdb_graph::{DataGraph, NodeId};
use kwdb_graphsearch::{blinks::Blinks, AnswerTree, BanksI, Dpbf};
use kwdb_obs::{
    families, record_facets, record_generation, record_index_stats, record_query, MetricsRegistry,
    QueryRecord, QueryTrace, TraceBuilder, TraceLevel,
};
use kwdb_qclean::segment::{clean_query, ValuePhraseModel};
use kwdb_qclean::SpellCorrector;
use kwdb_rank::CorpusStats;
use kwdb_relational::{Database, ExecStats, Row, TupleId};
use kwdb_relsearch::cn::{CandidateNetwork, CnGenConfig, CnGenerator, MaskOracle};
use kwdb_relsearch::facets::{resolve_facets, resolve_refinements, FacetAccum, FacetRequest};
use kwdb_relsearch::pexec::{parallel_topk_faceted, EvalScratch};
use kwdb_relsearch::spark::skyline_sweep_budgeted;
use kwdb_relsearch::topk::{global_pipeline_faceted, CnExecOutcome, TopKQuery};
use kwdb_relsearch::tupleset::TermCache;
use kwdb_relsearch::{corpus_stats, Refinement, ResultScorer, TupleSets};
use kwdb_xml::{XmlIndex, XmlTree};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

/// A uniform search request accepted by all three engines.
///
/// Built fluently; every field has a sensible default:
///
/// ```
/// use kwdb::engine::SearchRequest;
/// use kwdb::common::Budget;
/// use std::time::Duration;
///
/// let req = SearchRequest::new("widom xml")
///     .k(5)
///     .budget(Budget::unlimited().with_timeout(Duration::from_millis(50)));
/// assert_eq!(req.query(), "widom xml");
/// ```
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct SearchRequest {
    query: String,
    k: usize,
    budget: Budget,
    scoring: Option<Scoring>,
    semantics: Option<GraphSemantics>,
    trace: TraceLevel,
    facets: Vec<FacetSpec>,
    refinements: Vec<Refinement>,
    summaries: usize,
    use_cache: bool,
}

impl SearchRequest {
    /// A request for `query` with `k = 10`, an unlimited budget, tracing
    /// off, no facets or refinements, and the engine's default
    /// scoring/semantics.
    pub fn new(query: impl Into<String>) -> Self {
        SearchRequest {
            query: query.into(),
            k: 10,
            budget: Budget::unlimited(),
            scoring: None,
            semantics: None,
            trace: TraceLevel::Off,
            facets: Vec::new(),
            refinements: Vec::new(),
            summaries: 0,
            use_cache: true,
        }
    }

    /// Number of hits to return.
    pub fn k(mut self, k: usize) -> Self {
        self.k = k;
        self
    }

    /// Execution budget (deadline and/or candidate cap).
    pub fn budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Override the relational scoring model (default: the engine's
    /// configured [`Scoring`]).
    pub fn scoring(mut self, scoring: Scoring) -> Self {
        self.scoring = Some(scoring);
        self
    }

    /// Override the graph answer semantics (default:
    /// [`GraphSemantics::Banks`]).
    pub fn semantics(mut self, semantics: GraphSemantics) -> Self {
        self.semantics = Some(semantics);
        self
    }

    /// Ask for a structured [`QueryTrace`] on the response. The default
    /// [`TraceLevel::Off`] records nothing and costs nothing.
    pub fn trace(mut self, level: TraceLevel) -> Self {
        self.trace = level;
        self
    }

    /// Add one facet to count over the result multiset (relational engine;
    /// graph/XML engines ignore facets). Attributes are `"table.column"`;
    /// an unknown attribute fails the whole request with a typed error.
    pub fn facet(mut self, spec: FacetSpec) -> Self {
        self.facets.push(spec);
        self
    }

    /// Replace the full facet list (see [`facet`](Self::facet)).
    pub fn facets(mut self, specs: Vec<FacetSpec>) -> Self {
        self.facets = specs;
        self
    }

    /// Drill down: keep only results where some tuple of the refined table
    /// matches. Refinements compose as AND and are applied *before* ranking
    /// and facet counting — and they are deliberately not part of the CN
    /// plan-cache key, so a drill-down of a cached query replans nothing.
    pub fn refine(mut self, refinement: Refinement) -> Self {
        self.refinements.push(refinement);
        self
    }

    /// Attach a size-`l` object summary to every relational hit: the hit's
    /// tuples plus breadth-first FK-neighborhood context, `l` tuples total
    /// (`0`, the default, disables summaries).
    pub fn summaries(mut self, l: usize) -> Self {
        self.summaries = l;
        self
    }

    pub fn query(&self) -> &str {
        &self.query
    }

    pub fn k_value(&self) -> usize {
        self.k
    }

    pub fn budget_value(&self) -> &Budget {
        &self.budget
    }

    pub fn trace_level(&self) -> TraceLevel {
        self.trace
    }

    pub fn facet_specs(&self) -> &[FacetSpec] {
        &self.facets
    }

    pub fn refinement_list(&self) -> &[Refinement] {
        &self.refinements
    }

    /// The requested per-hit summary size (`0` = summaries off).
    pub fn summary_size(&self) -> usize {
        self.summaries
    }

    /// Opt this one request in or out of the engines' result caches
    /// (default `true`). A request with caching off neither reads nor
    /// writes the cache — its stats report `result_cache` 0/0, exactly
    /// like a query against an engine whose cache is disabled.
    pub fn caching(mut self, on: bool) -> Self {
        self.use_cache = on;
        self
    }

    /// Whether this request participates in the engines' result caches.
    pub fn caching_enabled(&self) -> bool {
        self.use_cache
    }
}

/// The uniform response: ranked hits plus the execution record.
///
/// `#[non_exhaustive]`: construct one via an engine's `execute` (or
/// [`SearchResponse::from_hits`] in tests/adapters) so response fields can
/// grow without breaking downstream code.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct SearchResponse<H> {
    /// Ranked hits, best first. Sorted even when truncated.
    pub hits: Vec<H>,
    /// Per-phase timings, operator counters, candidate and cache counters.
    pub stats: QueryStats,
    /// Why the budget cut the query short — `None` when it ran to
    /// completion, otherwise `hits` is best-so-far.
    pub truncation: Option<TruncationReason>,
    /// The structured trace, when the request asked for one
    /// ([`SearchRequest::trace`]).
    pub trace: Option<QueryTrace>,
    /// One [`FacetCounts`] per requested facet, in request order — empty
    /// when the request carried no facets (or the engine has no facet
    /// support, i.e. graph/XML).
    pub facets: Vec<FacetCounts>,
    /// Whether `facets` covers the *full* result multiset exactly. `false`
    /// when the budget truncated evaluation or the scoring model counts
    /// only the returned hits (SPARK); vacuously `true` for non-faceted
    /// queries.
    pub facets_exact: bool,
}

impl<H> SearchResponse<H> {
    /// A bare completed response: `hits` with default stats, no truncation,
    /// no trace, no facets — for tests and adapters that wrap non-kwdb
    /// sources.
    pub fn from_hits(hits: Vec<H>) -> Self {
        SearchResponse {
            hits,
            stats: QueryStats::new(),
            truncation: None,
            trace: None,
            facets: Vec::new(),
            facets_exact: true,
        }
    }

    /// `true` when the budget was exhausted and `hits` is best-so-far.
    pub fn truncated(&self) -> bool {
        self.truncation.is_some()
    }

    /// Map every hit through `f`, keeping stats, truncation, and trace.
    /// This is how the typed per-engine responses become the erased
    /// [`SearchResponse<Hit>`] of the [`Engine`] trait.
    pub fn map<T>(self, f: impl FnMut(H) -> T) -> SearchResponse<T> {
        SearchResponse {
            hits: self.hits.into_iter().map(f).collect(),
            stats: self.stats,
            truncation: self.truncation,
            trace: self.trace,
            facets: self.facets,
            facets_exact: self.facets_exact,
        }
    }
}

/// Seal a response: fold the stats into the registry (when the engine
/// carries one), append the query's flight record, and close the trace.
/// Every execute path — early return or full pipeline — goes through here,
/// so registry totals always equal the sum of the per-query `QueryStats`
/// handed back to callers, and the flight recorder sees every query.
#[allow(clippy::too_many_arguments)]
fn finish_response<H>(
    registry: Option<&MetricsRegistry>,
    engine: &'static str,
    algorithm: &'static str,
    req: &SearchRequest,
    workers: usize,
    generation: u64,
    segments: SegmentCounts,
    sampled: bool,
    hits: Vec<H>,
    stats: QueryStats,
    truncation: Option<TruncationReason>,
    trace: TraceBuilder,
) -> SearchResponse<H> {
    let trace = trace.finish();
    if let Some(reg) = registry {
        // Flight record first: an AutoP99 slow threshold then compares this
        // query against the traffic recorded *before* it.
        reg.record_flight(
            QueryRecord::new(
                engine,
                algorithm,
                &req.query,
                req.k,
                workers,
                &stats,
                truncation,
                sampled,
                trace.clone(),
            )
            .with_generation(generation, segments.realtime, segments.sealed),
        );
        record_query(reg, engine, algorithm, &stats, truncation);
    }
    SearchResponse {
        hits,
        stats,
        truncation,
        trace,
        facets: Vec::new(),
        facets_exact: true,
    }
}

/// The effective trace level for one arriving query: the requested level,
/// possibly upgraded by the registry's sampling policy. Returns
/// `(level, sampled)`; engines without a registry never promote.
fn effective_trace(
    registry: Option<&MetricsRegistry>,
    engine: &str,
    algorithm: &str,
    requested: TraceLevel,
) -> (TraceLevel, bool) {
    match registry {
        Some(reg) => reg.sample_trace_level(engine, algorithm, requested),
        None => (requested, false),
    }
}

/// Key of one result-cache entry. The **generation** component makes
/// mutation the only invalidation protocol: a successful
/// ingest/delete/commit bumps the engine's generation, stale entries stop
/// matching, and the byte-budgeted LRU ages them out. `terms` is the
/// normalized keyword **multiset** (sorted, duplicates kept) *after* query
/// cleaning, so `"query data"`, `"data query"`, and a misspelling the
/// cleaner maps onto the same terms all share one entry. Facet specs and
/// refinements are canonicalized through their `Debug` rendering — they
/// are plain data enums, so the rendering is total and injective enough
/// for a cache key.
#[derive(Clone, PartialEq, Eq, Hash)]
struct ResultKey {
    generation: u64,
    terms: Vec<String>,
    algorithm: &'static str,
    k: usize,
    layout: Layout,
    facets: String,
    refinements: String,
    summaries: usize,
}

impl ResultKey {
    fn new(
        generation: u64,
        keywords: &[String],
        algorithm: &'static str,
        layout: Layout,
        req: &SearchRequest,
    ) -> Self {
        let mut terms = keywords.to_vec();
        terms.sort();
        ResultKey {
            generation,
            terms,
            algorithm,
            k: req.k,
            layout,
            facets: format!("{:?}", req.facets),
            refinements: format!("{:?}", req.refinements),
            summaries: req.summaries,
        }
    }
}

/// The cached portion of a sealed [`SearchResponse`]: the ranked hits and
/// the facet verdict. Stats, truncation, and trace are *per-execution*
/// observations and are never cached — a hit re-stamps fresh
/// [`QueryStats`] (near-zero phase timings, `result_cache_hits = 1`).
/// Only untruncated responses are stored, so `truncation` needs no slot.
struct CachedSearch<H> {
    hits: Vec<H>,
    facets: Vec<FacetCounts>,
    facets_exact: bool,
}

/// One engine's result cache: the sharded singleflight LRU plus the
/// eviction high-water already published to the registry (so the eviction
/// counter advances by exact deltas under concurrent queries).
struct ResultCache<H> {
    cache: ShardedCache<ResultKey, Arc<CachedSearch<H>>>,
    evictions_seen: AtomicU64,
}

impl<H> ResultCache<H> {
    fn new(cfg: CacheConfig) -> Self {
        ResultCache {
            cache: ShardedCache::new(cfg),
            evictions_seen: AtomicU64::new(0),
        }
    }

    fn enabled(&self) -> bool {
        self.cache.config().enabled
    }

    /// Whether this request may be answered from (and written to) the
    /// cache. Traced or trace-sampled queries bypass — a cached response
    /// carries no trace, and serving one would silently drop the
    /// observability the caller (or the sampling policy) asked for.
    /// Budget-constrained queries bypass too: a deadline or candidate cap
    /// makes the response a property of *this* execution's race against
    /// the clock, not of the data, and a capped request must not be handed
    /// a complete answer some uncapped twin computed.
    fn admits(&self, req: &SearchRequest, level: TraceLevel) -> bool {
        self.enabled() && req.use_cache && level == TraceLevel::Off && req.budget.is_unlimited()
    }

    /// Push the entries/bytes gauges and the eviction-counter delta after
    /// a consult.
    fn publish(&self, registry: Option<&MetricsRegistry>, engine: &'static str) {
        let Some(reg) = registry else { return };
        let stats = self.cache.stats();
        let labels = [("engine", engine)];
        reg.gauge(families::RESULT_CACHE_ENTRIES, &labels)
            .set(stats.entries as i64);
        reg.gauge(families::RESULT_CACHE_BYTES, &labels)
            .set(stats.bytes as i64);
        let seen = self.evictions_seen.swap(stats.evictions, Ordering::Relaxed);
        reg.counter(families::RESULT_CACHE_EVICTIONS, &labels)
            .add(stats.evictions.saturating_sub(seen));
    }
}

/// Approximate heap footprint of a cached response, for the cache's byte
/// budget. Estimates lean high-side: over-counting shrinks the effective
/// cache, under-counting would overrun the budget.
fn cached_bytes<H>(hits: &[H], per_hit: impl Fn(&H) -> usize, facets: &[FacetCounts]) -> usize {
    let hit_bytes: usize = hits.iter().map(per_hit).sum();
    let facet_bytes: usize = facets
        .iter()
        .map(|f| f.values.iter().map(|v| v.value.len() + 24).sum::<usize>() + 48)
        .sum();
    hit_bytes + facet_bytes + 96
}

fn relational_hit_bytes(h: &RelationalHit) -> usize {
    h.rendered.len()
        + h.summary.iter().map(|s| s.len() + 24).sum::<usize>()
        + h.tuples.len() * 8
        + 64
}

fn graph_hit_bytes(t: &AnswerTree) -> usize {
    t.edges.len() * 8 + t.matches.len() * 4 + 48
}

fn xml_hit_bytes(h: &XmlHit) -> usize {
    h.label_path.len() + 40
}

/// A hit from *some* engine: the erased result type of [`Engine::execute`].
///
/// Each variant preserves the engine's full typed payload, so nothing is
/// lost by going through the trait — match to get it back.
#[derive(Debug, Clone)]
pub enum Hit {
    /// A joining tree of tuples from the relational engine.
    Relational(RelationalHit),
    /// An answer tree from the graph engine.
    Graph(AnswerTree),
    /// A ranked result subtree from the XML engine.
    Xml(XmlHit),
}

impl Hit {
    /// A uniform "higher is better" ranking value: the hit's score for
    /// relational/XML hits, the *negated* tree cost for graph hits (graph
    /// engines minimize cost).
    pub fn score(&self) -> f64 {
        match self {
            Hit::Relational(h) => h.score,
            Hit::Graph(t) => -t.cost,
            Hit::Xml(h) => h.score,
        }
    }

    /// Which data model produced this hit: `"relational"`, `"graph"`, or
    /// `"xml"`.
    pub fn kind(&self) -> &'static str {
        match self {
            Hit::Relational(_) => "relational",
            Hit::Graph(_) => "graph",
            Hit::Xml(_) => "xml",
        }
    }
}

/// A dynamically dispatchable search engine.
///
/// All three unified engines implement it, so heterogeneous engines can be
/// stored as `Arc<dyn Engine>` in a [`crate::dispatch::Catalog`] and
/// queried concurrently — the `Send + Sync` supertrait bound makes the
/// shareability requirement part of the contract, enforced at compile time.
pub trait Engine: Send + Sync {
    /// Execute a budgeted, instrumented search; hits come back erased as
    /// [`Hit`]s.
    fn execute(&self, req: &SearchRequest) -> Result<SearchResponse<Hit>>;
}

/// A record accepted by [`MutableEngine::ingest`] — the erased counterpart
/// of the typed per-engine ingest methods, so mutation can be driven
/// through `Arc<dyn MutableEngine>` in a catalog.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum IngestRecord {
    /// One relational tuple: column values for a row of `table`.
    Tuple { table: String, values: Row },
}

/// What [`MutableEngine::delete`] removes.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum DeleteKey {
    /// The row of `table` whose primary key equals `pk`.
    TuplePk { table: String, pk: Value },
}

/// Report of a [`MutableEngine::commit`]: the engine's generation after the
/// seal and the index's segment census.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommitOutcome {
    /// The engine's data generation at commit time.
    pub generation: u64,
    /// Realtime/sealed segment counts after the seal.
    pub segments: SegmentCounts,
}

/// An engine that supports incremental mutation over its generational
/// index: `ingest`/`delete` apply a change *and* maintain the index (no
/// rebuild), `commit` seals the realtime segment. Every successful
/// mutation bumps the engine's monotonic [`generation`](Self::generation).
pub trait MutableEngine: Engine {
    /// Ingest one record through the incremental path. Fails with a typed
    /// error when the record's shape doesn't fit this engine, when
    /// integrity checks (FKs, arity, types) reject it, or when the index
    /// was never built / has gone stale behind out-of-band mutations.
    fn ingest(&self, record: IngestRecord) -> Result<()>;

    /// Delete by key: tombstone the data and drop it from the index.
    fn delete(&self, key: DeleteKey) -> Result<()>;

    /// Seal the realtime segment into an immutable compressed segment.
    fn commit(&self) -> Result<CommitOutcome>;

    /// The monotonic data generation: bumped by every successful mutation.
    fn generation(&self) -> u64;
}

// Compile-time proof that every engine (and a trait object of them) can be
// shared across threads.
const _: () = {
    const fn assert_send_sync<T: Send + Sync + ?Sized>() {}
    assert_send_sync::<RelationalEngine>();
    assert_send_sync::<GraphEngine>();
    assert_send_sync::<XmlEngine>();
    assert_send_sync::<Arc<dyn Engine>>();
};

/// A rendered relational hit.
#[derive(Debug, Clone)]
pub struct RelationalHit {
    pub score: f64,
    /// The joining tree of tuples, rendered `table(v, …) ⋈ table(v, …)`.
    pub rendered: String,
    pub tuples: Vec<kwdb_relational::TupleId>,
    /// The size-`l` object summary, one rendered tuple per line, when the
    /// request asked for one ([`SearchRequest::summaries`]); empty
    /// otherwise.
    pub summary: Vec<String>,
}

/// Which scoring model the relational engine ranks with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scoring {
    /// DISCOVER2's monotone tf·idf-per-tuple model (Global Pipeline).
    #[default]
    Monotone,
    /// SPARK's non-monotonic virtual-document model (Skyline-Sweep).
    Spark,
}

/// Configuration for the relational pipeline.
#[derive(Debug, Clone, Copy)]
pub struct RelationalConfig {
    /// Maximum candidate-network size.
    pub max_cn_size: usize,
    /// Safety cap on generated CNs (0 = unlimited).
    pub max_cns: usize,
    pub scoring: Scoring,
    /// Cap on cached CN plans; inserting past it evicts an arbitrary entry
    /// (0 = unbounded cache).
    pub max_cache_entries: usize,
    /// Worker threads evaluating one query's candidate networks.
    /// `0` = available parallelism (capped at 8); `1` = the serial global
    /// pipeline. Either way the returned top-k is identical — the score
    /// model is monotone and the parallel merge is content-ordered.
    pub intra_query_workers: usize,
    /// Physical layout of the full-text posting lists:
    /// [`Layout::Plain`] (sorted arrays) or [`Layout::Blocks`]
    /// (delta-encoded bit-packed blocks with skip + block-max metadata —
    /// several-fold smaller, and the WAND fast path can skip whole blocks).
    /// The returned top-k is identical either way. Applied at engine
    /// construction when the engine is the database's sole owner; a shared
    /// database keeps its current layout (re-encode it yourself via
    /// [`Database::set_posting_layout`] before sharing).
    pub posting_layout: Layout,
    /// Opt-in query cleaning at the term-dictionary boundary: when a parsed
    /// keyword has no entry in the text index, run the noisy-channel
    /// spell/segmentation pass ([`kwdb_qclean`]) over the whole query and
    /// search the cleaned keywords instead. The corrector and phrase model
    /// are built once per engine, lazily, from the index vocabulary and the
    /// full-text column values. Default `false`: unknown keywords simply
    /// match nothing, as before.
    pub clean_queries: bool,
    /// The engine's generation-keyed query caches: one [`CacheConfig`]
    /// sizes both the **result cache** (whole sealed responses, keyed by
    /// generation + normalized terms + algorithm/k/layout/facets) and the
    /// **tuple-set term cache** (per-term sorted tuple-key lists). Enabled
    /// by default; pass [`CacheConfig::disabled`] for fully deterministic
    /// per-query counters (benchmarks, determinism suites).
    pub result_cache: CacheConfig,
}

impl Default for RelationalConfig {
    fn default() -> Self {
        RelationalConfig {
            max_cn_size: 5,
            max_cns: 2000,
            scoring: Scoring::Monotone,
            max_cache_entries: 256,
            intra_query_workers: 0,
            posting_layout: Layout::Plain,
            clean_queries: false,
            result_cache: CacheConfig::default(),
        }
    }
}

/// Key of one CN plan-cache entry: schema fingerprint, **data
/// generation**, the sorted keyword term set, and the generator
/// configuration. The generation component means a mutation can never
/// serve a plan computed over older data — stale entries simply stop
/// matching and age out through the bounded cache's eviction.
type CnCacheKey = (u64, u64, Vec<String>, usize, usize);

/// The relational engine's mutable core: the database handle plus the
/// corpus statistics its scorer derives tf·idf weights from, kept in
/// lockstep by the mutation path (`add_doc` on ingest, `remove_doc` on
/// delete). Queries hold the read lock end to end, so a mutation never
/// swaps state underneath a running query.
struct EngineState {
    db: Arc<Database>,
    corpus: Arc<CorpusStats>,
}

/// DISCOVER-style keyword search over a relational database: tuple sets →
/// candidate networks → bound-driven top-k evaluation.
///
/// Owns its database behind an `Arc`, so the engine is `Send + Sync` and
/// one instance can serve concurrent queries; the CN plan cache is a
/// read-mostly `RwLock` map, so repeat queries don't serialize.
pub struct RelationalEngine {
    /// Generational state: swapped copy-on-write by the mutation path.
    state: RwLock<EngineState>,
    cfg: RelationalConfig,
    cn_cache: RwLock<HashMap<CnCacheKey, Arc<Vec<CandidateNetwork>>>>,
    registry: Option<Arc<MetricsRegistry>>,
    /// Worker evaluation scratch (hash-table and buffer reuse), shared
    /// across queries — workers check out one `EvalScratch` each.
    scratch: ScratchPool<EvalScratch>,
    /// Lazily built query-cleaning model ([`RelationalConfig::clean_queries`]):
    /// a spelling corrector over the index vocabulary plus a phrase model
    /// over the full-text column values. Built at most once per engine.
    clean: OnceLock<(SpellCorrector, ValuePhraseModel)>,
    /// Cumulative segment merges already published to the registry, so the
    /// merge counter advances by exact deltas.
    merges_seen: AtomicU64,
    /// Generation-keyed whole-response cache with singleflight: repeat
    /// queries skip build/plan/evaluate entirely, and N threads racing on
    /// a cold key compute once.
    result_cache: ResultCache<RelationalHit>,
    /// Generation-keyed per-term tuple-set cache: materialized sorted
    /// tuple-key lists shared across queries that mention the same term.
    tupleset_cache: TermCache,
}

impl RelationalEngine {
    /// Build an engine owning `db` (pass a `Database` to move it in, or an
    /// `Arc<Database>` to share it with other owners).
    pub fn new(db: impl Into<Arc<Database>>) -> Self {
        Self::with_config(db, RelationalConfig::default())
    }

    pub fn with_config(db: impl Into<Arc<Database>>, cfg: RelationalConfig) -> Self {
        let mut db = db.into();
        if db
            .text_index()
            .is_ok_and(|ix| ix.layout() != cfg.posting_layout)
        {
            // Re-encode in place when we are the sole owner; a shared
            // database keeps whatever layout its owner chose.
            if let Some(owned) = Arc::get_mut(&mut db) {
                owned.set_posting_layout(cfg.posting_layout);
            }
        }
        let merges_seen = db.text_index().map_or(0, |ix| ix.merges());
        let corpus = Arc::new(corpus_stats(&db));
        RelationalEngine {
            state: RwLock::new(EngineState { db, corpus }),
            cfg,
            cn_cache: RwLock::new(HashMap::new()),
            registry: None,
            scratch: ScratchPool::new(),
            clean: OnceLock::new(),
            merges_seen: AtomicU64::new(merges_seen),
            result_cache: ResultCache::new(cfg.result_cache),
            tupleset_cache: TermCache::new(cfg.result_cache),
        }
    }

    /// The worker count [`RelationalConfig::intra_query_workers`] resolves
    /// to: itself when non-zero, else available parallelism capped at 8
    /// (matching the dispatcher's sizing).
    pub fn resolved_workers(&self) -> usize {
        if self.cfg.intra_query_workers > 0 {
            self.cfg.intra_query_workers
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .min(8)
        }
    }

    /// Record every query (and plan-cache activity) into `registry`, and
    /// publish the text index's build/size figures, the engine generation,
    /// and the segment census up front.
    pub fn with_registry(mut self, registry: Arc<MetricsRegistry>) -> Self {
        {
            let st = self.state.read().expect("engine state poisoned");
            if let Ok(ix) = st.db.text_index() {
                record_index_stats(&registry, "relational_text", &ix.index_stats());
            }
            let segments = st
                .db
                .text_index()
                .map_or(SegmentCounts::default(), |ix| ix.segment_counts());
            record_generation(
                &registry,
                "relational",
                st.db.generation(),
                segments.realtime,
                segments.sealed,
                0,
            );
        }
        registry
            .gauge(families::INTRA_WORKERS, &[("engine", "relational")])
            .set(self.resolved_workers() as i64);
        self.registry = Some(registry);
        self
    }

    /// A handle to the database this engine queries — a snapshot of the
    /// current generation. Mutations after this call copy-on-write, so
    /// the returned handle keeps observing the state it was taken at.
    pub fn database(&self) -> Arc<Database> {
        Arc::clone(&self.state.read().expect("engine state poisoned").db)
    }

    /// The engine's data generation (bumped by every successful mutation).
    pub fn generation(&self) -> u64 {
        self.state
            .read()
            .expect("engine state poisoned")
            .db
            .generation()
    }

    /// Realtime/sealed segment census of the text index (zeros when the
    /// index was never built).
    pub fn segment_counts(&self) -> SegmentCounts {
        self.state
            .read()
            .expect("engine state poisoned")
            .db
            .text_index()
            .map_or(SegmentCounts::default(), |ix| ix.segment_counts())
    }

    /// Ingest one tuple through the incremental path: FK-validate, append
    /// to the table, index into the realtime segment, and keep the
    /// scorer's corpus statistics in lockstep — no rebuild, no rescan.
    /// Requires a fresh index (build once, then ingest); a shared database
    /// is copy-on-written, so handles returned by
    /// [`database`](Self::database) before the call keep their snapshot.
    pub fn ingest_tuple(&self, table: &str, row: Row) -> Result<TupleId> {
        let mut guard = self.state.write().expect("engine state poisoned");
        let st = &mut *guard;
        let db = Arc::make_mut(&mut st.db);
        let id = db.ingest(table, row)?;
        Arc::make_mut(&mut st.corpus).add_doc(&db.tuple_tokens(id));
        if let Some(reg) = &self.registry {
            reg.counter(families::INGESTED_TUPLES, &[("engine", "relational")])
                .inc();
        }
        self.publish_generation(db);
        Ok(id)
    }

    /// Delete the row of `table` whose primary key equals `pk`: tombstone
    /// the row, drop its postings (realtime removal + sealed-segment
    /// tombstones), and back its tokens out of the corpus statistics.
    pub fn delete_tuple(&self, table: &str, pk: &Value) -> Result<TupleId> {
        let mut guard = self.state.write().expect("engine state poisoned");
        let st = &mut *guard;
        let db = Arc::make_mut(&mut st.db);
        let id = db.delete(table, pk)?;
        // Row payloads stay in place under the tombstone, so the deleted
        // tuple's tokens are still readable here.
        Arc::make_mut(&mut st.corpus).remove_doc(&db.tuple_tokens(id));
        self.publish_generation(db);
        Ok(id)
    }

    /// Seal the realtime segment into an immutable compressed segment
    /// (folding the two smallest sealed segments when at the cap).
    pub fn commit(&self) -> Result<CommitOutcome> {
        let mut guard = self.state.write().expect("engine state poisoned");
        let st = &mut *guard;
        let db = Arc::make_mut(&mut st.db);
        db.text_index()?; // nothing to seal without a fresh index
        let segments = db.commit_index();
        let outcome = CommitOutcome {
            generation: db.generation(),
            segments,
        };
        self.publish_generation(db);
        Ok(outcome)
    }

    /// Compact every sealed segment (and any realtime postings) into one,
    /// dropping tombstoned entries and re-aggregating exact term stats.
    pub fn merge(&self) -> Result<CommitOutcome> {
        let mut guard = self.state.write().expect("engine state poisoned");
        let st = &mut *guard;
        let db = Arc::make_mut(&mut st.db);
        db.text_index()?;
        let segments = db.merge_index();
        let outcome = CommitOutcome {
            generation: db.generation(),
            segments,
        };
        self.publish_generation(db);
        Ok(outcome)
    }

    /// Push the generation gauge, segment gauges, and merge-counter delta
    /// after a mutation.
    fn publish_generation(&self, db: &Database) {
        let (segments, merges) = db.text_index().map_or((SegmentCounts::default(), 0), |ix| {
            (ix.segment_counts(), ix.merges())
        });
        let seen = self.merges_seen.swap(merges, Ordering::Relaxed);
        if let Some(reg) = &self.registry {
            record_generation(
                reg,
                "relational",
                db.generation(),
                segments.realtime,
                segments.sealed,
                merges.saturating_sub(seen),
            );
        }
    }

    /// Execute a [`SearchRequest`]: budgeted, instrumented top-k search,
    /// with optional facet counting, drill-down refinements, per-hit
    /// object summaries, and (when configured) query cleaning.
    pub fn execute(&self, req: &SearchRequest) -> Result<SearchResponse<RelationalHit>> {
        // Hold the read lock end to end: the whole query sees one
        // generation; concurrent queries share the lock, only mutations
        // take it exclusively.
        let state = self.state.read().expect("engine state poisoned");
        let st = &*state;
        let generation = st.db.generation();
        let segments = st
            .db
            .text_index()
            .map_or(SegmentCounts::default(), |ix| ix.segment_counts());
        let mut stats = QueryStats::new();
        let mut sw = Stopwatch::start();
        let budget = &req.budget;
        let scoring = req.scoring.unwrap_or(self.cfg.scoring);
        let workers = self.resolved_workers();
        let algorithm = match scoring {
            Scoring::Monotone if workers > 1 => "parallel_cn",
            Scoring::Monotone => "global_pipeline",
            Scoring::Spark => "spark",
        };
        let reg = self.registry.as_deref();
        let (level, sampled) = effective_trace(reg, "relational", algorithm, req.trace);
        let mut tb = TraceBuilder::new(level, format!("relational/{algorithm} {:?}", req.query));
        let done = |hits, stats, truncation, tb| {
            Ok(finish_response(
                reg,
                "relational",
                algorithm,
                req,
                workers,
                generation,
                segments,
                sampled,
                hits,
                stats,
                truncation,
                tb,
            ))
        };

        // Facet and refinement attributes are schema references, not query
        // keywords: resolve them up front so an unknown `table.column`
        // fails the request with a typed error instead of silently counting
        // nothing. Resolution is independent of the keyword set, so
        // drill-downs reuse the CN plan cache untouched.
        let facets = resolve_facets(&st.db, &req.facets)?;
        let refinements = resolve_refinements(&st.db, &req.refinements)?;
        let freq = FacetRequest {
            facets: &facets,
            refinements: &refinements,
        };
        let seal =
            |mut resp: SearchResponse<RelationalHit>, counts: Vec<FacetCounts>, exact: bool| {
                if let Some(reg) = reg {
                    if !facets.is_empty() {
                        let values = counts.iter().map(|f| f.values.len() as u64).sum();
                        record_facets(reg, "relational", values, exact);
                    }
                }
                resp.facets = counts;
                resp.facets_exact = exact;
                resp
            };
        // Zero counts for every requested facet — what an empty result set
        // faceted over looks like; the early returns below hand these back.
        let zero_counts = || FacetAccum::new(facets.len()).finish(&facets);

        tb.phase("parse");
        let mut keywords = parse_query(&req.query);
        if self.cfg.clean_queries && !keywords.is_empty() {
            let ix = st.db.text_index()?;
            if keywords.iter().any(|kw| ix.sym(kw).is_none()) {
                // At least one keyword misses the term dictionary: run the
                // noisy-channel spell + segmentation pass once, over the
                // whole query, and search the cleaned tokens instead.
                let (corrector, model) = self.clean_model(&st.db);
                if let Some(cleaned) = clean_query(corrector, model, &keywords, 2) {
                    tb.event("query cleaned", || {
                        vec![
                            ("from".into(), keywords.join(" ")),
                            ("to".into(), cleaned.display()),
                        ]
                    });
                    keywords = cleaned.tokens().iter().map(|s| s.to_string()).collect();
                }
            }
        }
        stats.phases.parse = sw.lap();
        tb.event("keywords", || {
            vec![("count".into(), keywords.len().to_string())]
        });
        if keywords.is_empty() {
            return Ok(seal(
                done(Vec::new(), stats, None, tb)?,
                zero_counts(),
                true,
            ));
        }
        if let Some(reason) = budget.truncation() {
            tb.event("budget verdict", || {
                vec![("truncated".into(), reason.to_string())]
            });
            let exact = facets.is_empty();
            return Ok(seal(
                done(Vec::new(), stats, Some(reason), tb)?,
                zero_counts(),
                exact,
            ));
        }
        // Everything below — tuple sets, planning, evaluation, facet
        // finalization — is the cacheable unit: `run` computes one full
        // sealed response from the query context it is handed. The
        // non-caching path calls it directly; the caching path runs it as
        // the singleflight leader's compute.
        let run = |mut stats: QueryStats, mut sw: Stopwatch, mut tb: TraceBuilder| {
            tb.phase("build");
            let ts = if self.cfg.result_cache.enabled {
                let (ts, ts_hits, ts_misses) =
                    TupleSets::build_cached(&st.db, &keywords, &self.tupleset_cache)?;
                if let Some(reg) = reg {
                    let labels = [("engine", "relational")];
                    reg.counter(families::TUPLESET_CACHE_HITS, &labels)
                        .add(ts_hits);
                    reg.counter(families::TUPLESET_CACHE_MISSES, &labels)
                        .add(ts_misses);
                }
                ts
            } else {
                TupleSets::build(&st.db, &keywords)?
            };
            stats.phases.build = sw.lap();
            if !ts.covers_all_keywords() {
                tb.event("tuple sets", || {
                    vec![("covers_all_keywords".into(), "false".into())]
                });
                return Ok(seal(
                    done(Vec::new(), stats, None, tb)?,
                    zero_counts(),
                    true,
                ));
            }
            if let Some(reason) = budget.truncation() {
                let exact = facets.is_empty();
                return Ok(seal(
                    done(Vec::new(), stats, Some(reason), tb)?,
                    zero_counts(),
                    exact,
                ));
            }
            tb.phase("plan");
            let cns = self.plan(&st.db, &keywords, &ts, &mut stats, &mut tb);
            stats.phases.plan = sw.lap();
            stats.candidates_generated = cns.len() as u64;

            tb.phase("evaluate");
            // Per-query scorer over the incrementally maintained corpus stats:
            // two Arc clones, no corpus rescan.
            let scorer = ResultScorer::from_stats(Arc::clone(&st.db), Arc::clone(&st.corpus));
            let q = TopKQuery {
                db: &st.db,
                ts: &ts,
                cns: &cns,
                scorer: &scorer,
                keywords: &keywords,
            };
            let exec = ExecStats::new();
            let mut accum = FacetAccum::new(facets.len());
            let CnExecOutcome {
                results: ranked,
                truncation,
                cns_evaluated,
                cns_pruned,
            } = match scoring {
                Scoring::Monotone if workers > 1 => {
                    let (outcome, worker_accum) = parallel_topk_faceted(
                        &q,
                        req.k,
                        &exec,
                        budget,
                        workers,
                        &self.scratch,
                        &freq,
                    );
                    accum = worker_accum;
                    outcome
                }
                Scoring::Monotone => {
                    global_pipeline_faceted(&q, req.k, &exec, budget, &freq, &mut accum)
                }
                Scoring::Spark => {
                    // Skyline-Sweep has no CN-level accounting (0/0) and no
                    // exhaustive mode: refinements filter the returned hits
                    // post-hoc and facet counts cover only what came back
                    // (`facets_exact` stays false for faceted SPARK queries).
                    let (results, truncation) = skyline_sweep_budgeted(&q, req.k, &exec, budget);
                    let results: Vec<_> = results
                        .into_iter()
                        .filter(|r| freq.passes(&st.db, &r.result))
                        .collect();
                    for r in &results {
                        accum.observe(&st.db, &facets, &r.result);
                    }
                    CnExecOutcome {
                        results,
                        truncation,
                        cns_evaluated: 0,
                        cns_pruned: 0,
                    }
                }
            };
            stats.phases.evaluate = sw.lap();
            let snap = exec.snapshot();
            stats.operators.tuples_scanned = snap.tuples_scanned;
            stats.operators.join_probes = snap.join_probes;
            stats.operators.joins_executed = snap.joins_executed;
            stats.operators.rows_output = snap.rows_output;
            stats.operators.join_probe_rows = snap.probe_rows;
            stats.operators.blocks_skipped = snap.blocks_skipped;
            stats.cns_evaluated = cns_evaluated;
            stats.cns_pruned = cns_pruned;
            stats.candidates_pruned = stats.candidates_generated.saturating_sub(
                ranked
                    .iter()
                    .map(|r| r.cn_index)
                    .collect::<std::collections::HashSet<_>>()
                    .len() as u64,
            );
            tb.event("operators", || {
                vec![
                    ("tuples_scanned".into(), snap.tuples_scanned.to_string()),
                    ("join_probes".into(), snap.join_probes.to_string()),
                    ("rows_output".into(), snap.rows_output.to_string()),
                ]
            });
            tb.event("budget verdict", || {
                vec![(
                    "truncated".into(),
                    truncation.map_or("no".into(), |r| r.to_string()),
                )]
            });

            // Facet finalization + per-hit summaries. Counts are exact when the
            // executor ran in exhaustive mode to completion: every CN evaluated
            // fully, so the accumulated multiset is the full result multiset
            // regardless of worker count or posting layout.
            tb.phase("facets");
            let facets_exact =
                facets.is_empty() || (matches!(scoring, Scoring::Monotone) && truncation.is_none());
            let facet_counts = accum.finish(&facets);
            let hits: Vec<RelationalHit> = ranked
                .into_iter()
                .map(|r| RelationalHit {
                    score: r.score,
                    rendered: r
                        .result
                        .tuples
                        .iter()
                        .map(|&t| st.db.format_tuple(t))
                        .collect::<Vec<_>>()
                        .join(" ⋈ "),
                    summary: if req.summaries == 0 {
                        Vec::new()
                    } else {
                        render_summary(
                            &st.db,
                            &object_summary(&st.db, &r.result.tuples, req.summaries),
                        )
                    },
                    tuples: r.result.tuples,
                })
                .collect();
            if !facets.is_empty() {
                tb.event("facets", || {
                    vec![
                        ("requested".into(), facets.len().to_string()),
                        (
                            "values".into(),
                            facet_counts
                                .iter()
                                .map(|f| f.values.len())
                                .sum::<usize>()
                                .to_string(),
                        ),
                        ("exact".into(), facets_exact.to_string()),
                    ]
                });
            }
            stats.phases.facets = sw.lap();
            Ok(seal(
                done(hits, stats, truncation, tb)?,
                facet_counts,
                facets_exact,
            ))
        };

        if !self.result_cache.admits(req, level) {
            return run(stats, sw, tb);
        }
        let key = ResultKey::new(
            generation,
            &keywords,
            algorithm,
            self.cfg.posting_layout,
            req,
        );
        // The pre-consult context (parse timing already folded in) travels
        // into whichever arm actually seals the response: the singleflight
        // leader's compute, or the hit path below.
        let mut ctx = Some((stats, sw, tb));
        let outcome = self.result_cache.cache.get_or_compute(key, || {
            let (mut stats, sw, tb) = ctx.take().expect("leader owns the query context");
            stats.result_cache_misses = 1;
            let result = run(stats, sw, tb);
            let store = match &result {
                // Only complete answers enter the cache; `admits` already
                // keeps constrained budgets out, so truncation here is
                // impossible — this is a belt-and-braces guard.
                Ok(resp) if resp.truncation.is_none() => Some((
                    Arc::new(CachedSearch {
                        hits: resp.hits.clone(),
                        facets: resp.facets.clone(),
                        facets_exact: resp.facets_exact,
                    }),
                    cached_bytes(&resp.hits, relational_hit_bytes, &resp.facets),
                )),
                _ => None,
            };
            (result, store)
        });
        let resp = match outcome {
            Looked::Computed(result) => result,
            Looked::Cached(v) => {
                let (mut stats, _sw, tb) = ctx.take().expect("a hit leaves the context untouched");
                stats.result_cache_hits = 1;
                done(v.hits.clone(), stats, None, tb)
                    .map(|r| seal(r, v.facets.clone(), v.facets_exact))
            }
        };
        self.result_cache.publish(reg, "relational");
        resp
    }

    /// Generate (or fetch from the plan cache) the candidate networks for
    /// this keyword term set.
    ///
    /// Read-mostly locking: the hot path takes the read lock only, so
    /// concurrent repeat queries never serialize. A miss upgrades to the
    /// write lock and re-checks before generating, so for N threads racing
    /// on a cold key exactly one generates (and reports the miss) while the
    /// rest block briefly and then hit. The cache is bounded by
    /// `cfg.max_cache_entries`; inserts past it evict an arbitrary entry,
    /// with size/generation/eviction reported to the registry.
    fn plan(
        &self,
        db: &Database,
        keywords: &[String],
        ts: &TupleSets,
        stats: &mut QueryStats,
        tb: &mut TraceBuilder,
    ) -> Arc<Vec<CandidateNetwork>> {
        let mut terms: Vec<String> = keywords.to_vec();
        terms.sort();
        terms.dedup();
        let key: CnCacheKey = (
            db.schema_fingerprint(),
            db.generation(),
            terms,
            self.cfg.max_cn_size,
            self.cfg.max_cns,
        );
        if let Some(cns) = self.cn_cache.read().expect("cn cache poisoned").get(&key) {
            stats.cache_hits = 1;
            tb.event("plan cache", || {
                vec![
                    ("outcome".into(), "hit".into()),
                    ("cns".into(), cns.len().to_string()),
                ]
            });
            return Arc::clone(cns);
        }
        let mut cache = self.cn_cache.write().expect("cn cache poisoned");
        if let Some(cns) = cache.get(&key) {
            // Lost the generation race to another thread: its plan is ours.
            stats.cache_hits = 1;
            tb.event("plan cache", || {
                vec![
                    ("outcome".into(), "hit".into()),
                    ("cns".into(), cns.len().to_string()),
                ]
            });
            return Arc::clone(cns);
        }
        stats.cache_misses = 1;
        let oracle = MaskOracle::from_tuplesets(ts);
        let mut generator = CnGenerator::new(
            db.schema_graph(),
            &oracle,
            CnGenConfig {
                max_size: self.cfg.max_cn_size,
                dedupe: true,
                max_cns: self.cfg.max_cns,
            },
        );
        let cns = Arc::new(generator.generate());
        let mut evicted = false;
        if self.cfg.max_cache_entries > 0 && cache.len() >= self.cfg.max_cache_entries {
            let victim = cache.keys().next().cloned().expect("cache is non-empty");
            cache.remove(&victim);
            evicted = true;
        }
        cache.insert(key, Arc::clone(&cns));
        if let Some(reg) = &self.registry {
            let labels = [("engine", "relational")];
            reg.counter(families::PLAN_CACHE_GENERATIONS, &labels).inc();
            if evicted {
                reg.counter(families::PLAN_CACHE_EVICTIONS, &labels).inc();
            }
            reg.gauge(families::PLAN_CACHE_SIZE, &labels)
                .set(cache.len() as i64);
        }
        tb.event("plan cache", || {
            vec![
                ("outcome".into(), "miss".into()),
                ("cns".into(), cns.len().to_string()),
                ("evicted".into(), evicted.to_string()),
            ]
        });
        cns
    }

    /// The lazily built query-cleaning model: a noisy-channel
    /// [`SpellCorrector`] whose vocabulary is the text index's term
    /// dictionary (document frequency as the language-model prior) and a
    /// [`ValuePhraseModel`] over the full-text column values (so
    /// segmentation recovers multi-token values). Built at most once per
    /// engine, on the first query that needs cleaning.
    fn clean_model(&self, db: &Database) -> &(SpellCorrector, ValuePhraseModel) {
        self.clean.get_or_init(|| {
            let ix = db.text_index().expect("caller verified a fresh text index");
            let vocab: Vec<(String, u64)> = ix
                .terms()
                .map(|t| {
                    let df = ix.sym(t).map_or(1, |s| ix.term_stats(s).df);
                    (t.to_string(), df.max(1))
                })
                .collect();
            let mut values: Vec<String> = Vec::new();
            for table in db.tables() {
                let text_cols: Vec<usize> = table.schema.text_columns().collect();
                if text_cols.is_empty() {
                    continue;
                }
                for (_, row) in table.iter() {
                    for &c in &text_cols {
                        let v = &row[c];
                        if !matches!(v, kwdb_common::Value::Null) {
                            values.push(v.to_string());
                        }
                    }
                }
            }
            (
                SpellCorrector::from_vocab(vocab),
                ValuePhraseModel::from_values(&values),
            )
        })
    }
}

impl Engine for RelationalEngine {
    fn execute(&self, req: &SearchRequest) -> Result<SearchResponse<Hit>> {
        Ok(RelationalEngine::execute(self, req)?.map(Hit::Relational))
    }
}

impl MutableEngine for RelationalEngine {
    fn ingest(&self, record: IngestRecord) -> Result<()> {
        match record {
            IngestRecord::Tuple { table, values } => {
                self.ingest_tuple(&table, values)?;
                Ok(())
            }
        }
    }

    fn delete(&self, key: DeleteKey) -> Result<()> {
        match key {
            DeleteKey::TuplePk { table, pk } => {
                self.delete_tuple(&table, &pk)?;
                Ok(())
            }
        }
    }

    fn commit(&self) -> Result<CommitOutcome> {
        RelationalEngine::commit(self)
    }

    fn generation(&self) -> u64 {
        RelationalEngine::generation(self)
    }
}

/// Graph answer semantics selectable on a [`SearchRequest`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GraphSemantics {
    /// Exact group Steiner trees (DPBF).
    SteinerExact,
    /// BANKS backward search (distinct-root, approximate Steiner).
    Banks,
    /// BLINKS: distinct-root via the node→keyword index and TA.
    DistinctRoot,
}

/// Keyword search on a data graph under the chosen semantics, with the
/// BLINKS node→keyword index built lazily and invalidated by generation.
///
/// Owns its graph behind an `Arc`; the underlying BANKS/DPBF/BLINKS
/// engines are stateless (`&self`, per-query counters returned with the
/// results), so one `GraphEngine` serves concurrent queries. Graph
/// mutations ([`add_node`](Self::add_node)/[`add_edge`](Self::add_edge))
/// bump the graph's generation; a cached BLINKS index whose build
/// generation lags by more than the **staleness bound** is rebuilt on the
/// next DistinctRoot query — within the bound it keeps serving, trading
/// bounded staleness for rebuild cost.
pub struct GraphEngine {
    g: RwLock<Arc<DataGraph>>,
    /// Full-vocabulary BLINKS index tagged with the graph generation it
    /// was built at; rebuilt lazily past the staleness bound.
    index: RwLock<Option<(u64, Arc<kwdb_graph::NodeKeywordIndex>)>>,
    /// How many generations the cached BLINKS index may lag before a
    /// DistinctRoot query rebuilds it. `0` (default) = any change rebuilds.
    staleness_bound: u64,
    registry: Option<Arc<MetricsRegistry>>,
    /// Cumulative keyword-index merges already published to the registry.
    merges_seen: AtomicU64,
    /// Generation-keyed whole-response cache (see
    /// [`RelationalConfig::result_cache`] for the shared semantics).
    result_cache: ResultCache<AnswerTree>,
}

impl GraphEngine {
    /// Build an engine owning `g` (pass a `DataGraph` to move it in, or an
    /// `Arc<DataGraph>` to share it with other owners).
    pub fn new(g: impl Into<Arc<DataGraph>>) -> Self {
        let g = g.into();
        let merges_seen = g.keyword_index_merges();
        GraphEngine {
            g: RwLock::new(g),
            index: RwLock::new(None),
            staleness_bound: 0,
            registry: None,
            merges_seen: AtomicU64::new(merges_seen),
            result_cache: ResultCache::new(CacheConfig::default()),
        }
    }

    /// Reconfigure (or disable, via [`CacheConfig::disabled`]) the
    /// generation-keyed result cache. On by default; any existing cached
    /// entries are dropped.
    pub fn with_result_cache(mut self, cfg: CacheConfig) -> Self {
        self.result_cache = ResultCache::new(cfg);
        self
    }

    /// Re-encode the graph's keyword→nodes index into `layout` — identical
    /// results, several-fold smaller with [`Layout::Blocks`]. Applied only
    /// when this engine is the graph's sole owner; a shared graph keeps its
    /// current layout (re-encode it yourself via
    /// [`DataGraph::set_keyword_index_layout`] before sharing).
    pub fn with_posting_layout(mut self, layout: Layout) -> Self {
        let g = self.g.get_mut().expect("graph state poisoned");
        if let Some(g) = Arc::get_mut(g) {
            g.set_keyword_index_layout(layout);
        }
        self
    }

    /// Let DistinctRoot queries keep serving a BLINKS index up to `bound`
    /// generations stale instead of rebuilding on every graph change —
    /// answers may miss (or over-include) at most the last `bound`
    /// mutations' keywords, which is often acceptable while ingesting.
    pub fn with_staleness_bound(mut self, bound: u64) -> Self {
        self.staleness_bound = bound;
        self
    }

    /// Record every query into `registry`, and publish the graph keyword
    /// index's size figures, generation, and segment census up front.
    pub fn with_registry(mut self, registry: Arc<MetricsRegistry>) -> Self {
        {
            let g = self.g.read().expect("graph state poisoned");
            record_index_stats(&registry, "graph_keyword", &g.keyword_index_stats());
            let segments = g.keyword_segment_counts();
            record_generation(
                &registry,
                "graph",
                g.generation(),
                segments.realtime,
                segments.sealed,
                0,
            );
        }
        self.registry = Some(registry);
        self
    }

    /// A handle to the data graph this engine queries — a snapshot of the
    /// current generation (mutations copy-on-write).
    pub fn graph(&self) -> Arc<DataGraph> {
        Arc::clone(&self.g.read().expect("graph state poisoned"))
    }

    /// The graph's data generation (bumped by every node/edge added).
    pub fn generation(&self) -> u64 {
        self.g.read().expect("graph state poisoned").generation()
    }

    /// Add a node of `kind` with tokenized `content` — indexed into the
    /// keyword index's realtime segment immediately.
    pub fn add_node(&self, kind: &str, content: &str) -> NodeId {
        let mut g = self.g.write().expect("graph state poisoned");
        let id = Arc::make_mut(&mut g).add_node(kind, content);
        self.publish_generation(&g);
        id
    }

    /// Add an undirected edge of weight `w` between existing nodes.
    pub fn add_edge(&self, u: NodeId, v: NodeId, w: f64) {
        let mut g = self.g.write().expect("graph state poisoned");
        Arc::make_mut(&mut g).add_edge(u, v, w);
        self.publish_generation(&g);
    }

    /// Seal the keyword index's realtime segment into a compressed sealed
    /// segment.
    pub fn commit(&self) -> CommitOutcome {
        let mut g = self.g.write().expect("graph state poisoned");
        let segments = Arc::make_mut(&mut g).commit_keyword_index();
        self.publish_generation(&g);
        CommitOutcome {
            generation: g.generation(),
            segments,
        }
    }

    fn publish_generation(&self, g: &DataGraph) {
        let merges = g.keyword_index_merges();
        let seen = self.merges_seen.swap(merges, Ordering::Relaxed);
        if let Some(reg) = &self.registry {
            let segments = g.keyword_segment_counts();
            record_generation(
                reg,
                "graph",
                g.generation(),
                segments.realtime,
                segments.sealed,
                merges.saturating_sub(seen),
            );
        }
    }

    /// The BLINKS index for the current query: serve the cached one while
    /// it is within the staleness bound, else rebuild under the write lock
    /// (double-checked, so racing queries build once). Returns the index
    /// and whether it was a cache hit.
    fn blinks_index(
        &self,
        g: &DataGraph,
        blinks: &Blinks<'_>,
    ) -> (Arc<kwdb_graph::NodeKeywordIndex>, bool) {
        let generation = g.generation();
        let fresh_enough = |built: u64| generation.saturating_sub(built) <= self.staleness_bound;
        if let Some((built, ix)) = self.index.read().expect("blinks cache poisoned").as_ref() {
            if fresh_enough(*built) {
                return (Arc::clone(ix), true);
            }
        }
        let mut slot = self.index.write().expect("blinks cache poisoned");
        if let Some((built, ix)) = slot.as_ref() {
            if fresh_enough(*built) {
                return (Arc::clone(ix), true);
            }
        }
        let ix = Arc::new(blinks.build_full_index());
        *slot = Some((generation, Arc::clone(&ix)));
        (ix, false)
    }

    /// Execute a [`SearchRequest`] under `req.semantics` (default BANKS).
    pub fn execute(&self, req: &SearchRequest) -> Result<SearchResponse<AnswerTree>> {
        // Snapshot the graph handle; the query runs against one generation
        // even if a mutation lands mid-flight (copy-on-write).
        let g = self.graph();
        execute_graph(
            &g,
            |blinks| self.blinks_index(&g, blinks),
            req,
            self.registry.as_deref(),
            &self.result_cache,
        )
    }
}

impl Engine for GraphEngine {
    fn execute(&self, req: &SearchRequest) -> Result<SearchResponse<Hit>> {
        Ok(GraphEngine::execute(self, req)?.map(Hit::Graph))
    }
}

/// The graph execution pipeline on borrowed data. `blinks_index` resolves
/// the node→keyword index for DistinctRoot queries (the engine's
/// generation-aware cache) and reports whether it was a cache hit;
/// `result_cache` is the engine's generation-keyed response cache.
fn execute_graph(
    g: &DataGraph,
    blinks_index: impl Fn(&Blinks<'_>) -> (Arc<kwdb_graph::NodeKeywordIndex>, bool),
    req: &SearchRequest,
    registry: Option<&MetricsRegistry>,
    result_cache: &ResultCache<AnswerTree>,
) -> Result<SearchResponse<AnswerTree>> {
    let mut stats = QueryStats::new();
    let mut sw = Stopwatch::start();
    let budget = &req.budget;
    let semantics = req.semantics.unwrap_or(GraphSemantics::Banks);
    let algorithm = match semantics {
        GraphSemantics::SteinerExact => "dpbf",
        GraphSemantics::Banks => "banks",
        GraphSemantics::DistinctRoot => "blinks",
    };
    let generation = g.generation();
    let segments = g.keyword_segment_counts();
    let (level, sampled) = effective_trace(registry, "graph", algorithm, req.trace);
    let mut tb = TraceBuilder::new(level, format!("graph/{algorithm} {:?}", req.query));
    let done = |hits, stats, truncation, tb| {
        Ok(finish_response(
            registry, "graph", algorithm, req, 1, generation, segments, sampled, hits, stats,
            truncation, tb,
        ))
    };

    tb.phase("parse");
    let keywords = parse_query(&req.query);
    stats.phases.parse = sw.lap();
    if keywords.is_empty() {
        return done(Vec::new(), stats, None, tb);
    }
    if let Some(reason) = budget.truncation() {
        tb.event("budget verdict", || {
            vec![("truncated".into(), reason.to_string())]
        });
        return done(Vec::new(), stats, Some(reason), tb);
    }
    let run = |mut stats: QueryStats, mut sw: Stopwatch, mut tb: TraceBuilder| {
        let (hits, truncation) = match semantics {
            GraphSemantics::SteinerExact => {
                tb.phase("evaluate");
                let dpbf = Dpbf::new(g);
                let (r, truncation, work) = dpbf.search_budgeted(&keywords, req.k, budget);
                stats.operators.tuples_scanned = work.states_popped as u64;
                tb.event("expansion", || {
                    vec![("states_popped".into(), work.states_popped.to_string())]
                });
                (r, truncation)
            }
            GraphSemantics::Banks => {
                tb.phase("evaluate");
                let banks = BanksI::new(g);
                let (r, truncation, work) = banks.search_budgeted(&keywords, req.k, budget);
                stats.operators.tuples_scanned = work.nodes_expanded as u64;
                tb.event("expansion", || {
                    vec![("nodes_expanded".into(), work.nodes_expanded.to_string())]
                });
                (r, truncation)
            }
            GraphSemantics::DistinctRoot => {
                tb.phase("build");
                let blinks = Blinks::new(g);
                let (ix, prebuilt) = blinks_index(&blinks);
                if prebuilt {
                    stats.cache_hits = 1;
                } else {
                    stats.cache_misses = 1;
                    if let Some(reg) = registry {
                        record_index_stats(reg, "graph_node2kw", &ix.index_stats());
                    }
                }
                tb.event("node-keyword index", || {
                    vec![(
                        "outcome".into(),
                        if prebuilt { "hit" } else { "miss" }.into(),
                    )]
                });
                stats.phases.build = sw.lap();
                tb.phase("evaluate");
                let (r, truncation, work) = blinks.search_budgeted(&ix, &keywords, req.k, budget);
                stats.operators.sorted_accesses = work.sorted_accesses as u64;
                stats.operators.random_accesses = work.random_accesses as u64;
                tb.event("threshold algorithm", || {
                    vec![
                        ("sorted_accesses".into(), work.sorted_accesses.to_string()),
                        ("random_accesses".into(), work.random_accesses.to_string()),
                    ]
                });
                (r, truncation)
            }
        };
        stats.phases.evaluate = sw.lap();
        stats.candidates_generated = hits.len() as u64;
        tb.event("budget verdict", || {
            vec![(
                "truncated".into(),
                truncation.map_or("no".into(), |r| r.to_string()),
            )]
        });
        done(hits, stats, truncation, tb)
    };

    if !result_cache.admits(req, level) {
        return run(stats, sw, tb);
    }
    // The graph keyword index's layout is fixed at engine construction and
    // the cache is per-engine, so the key's layout slot is a constant here.
    let key = ResultKey::new(generation, &keywords, algorithm, Layout::Plain, req);
    let mut ctx = Some((stats, sw, tb));
    let outcome = result_cache.cache.get_or_compute(key, || {
        let (mut stats, sw, tb) = ctx.take().expect("leader owns the query context");
        stats.result_cache_misses = 1;
        let result = run(stats, sw, tb);
        let store = match &result {
            Ok(resp) if resp.truncation.is_none() => Some((
                Arc::new(CachedSearch {
                    hits: resp.hits.clone(),
                    facets: Vec::new(),
                    facets_exact: true,
                }),
                cached_bytes(&resp.hits, graph_hit_bytes, &[]),
            )),
            _ => None,
        };
        (result, store)
    });
    let resp = match outcome {
        Looked::Computed(result) => result,
        Looked::Cached(v) => {
            let (mut stats, _sw, tb) = ctx.take().expect("a hit leaves the context untouched");
            stats.result_cache_hits = 1;
            done(v.hits.clone(), stats, None, tb)
        }
    };
    result_cache.publish(registry, "graph");
    resp
}

/// A ranked XML hit: a result subtree root.
#[derive(Debug, Clone)]
pub struct XmlHit {
    pub root: kwdb_xml::NodeId,
    pub score: f64,
    pub label_path: String,
}

/// SLCA keyword search over an XML tree, ranked by XBridge-style keyword
/// proximity ([`kwdb_rank::proximity`], tutorial slides 158–160).
///
/// Owns the tree and its index together behind one `Arc`, so the engine is
/// `Send + Sync` and the index can never outlive or diverge from its tree.
pub struct XmlEngine {
    data: Arc<(XmlTree, XmlIndex)>,
    registry: Option<Arc<MetricsRegistry>>,
    /// Whole-response cache (see [`RelationalConfig::result_cache`] for
    /// the shared semantics). The tree is immutable, so entries only ever
    /// age out through the LRU budget — generation is pinned to 0.
    result_cache: ResultCache<XmlHit>,
}

impl XmlEngine {
    /// Build an engine owning `tree` and its prebuilt `index`.
    pub fn new(tree: XmlTree, index: XmlIndex) -> Self {
        Self::from_arc(Arc::new((tree, index)))
    }

    /// Build an engine from `tree` alone, constructing the index here.
    pub fn from_tree(tree: XmlTree) -> Self {
        let index = XmlIndex::build(&tree);
        Self::new(tree, index)
    }

    /// [`from_tree`](Self::from_tree) with an explicit posting [`Layout`]
    /// for the keyword index. Results are identical across layouts;
    /// [`Layout::Blocks`] trades a small decode cost for a several-fold
    /// smaller index.
    pub fn from_tree_with(tree: XmlTree, layout: Layout) -> Self {
        let index = XmlIndex::build_with(&tree, layout);
        Self::new(tree, index)
    }

    /// Share an existing tree+index pair with other owners.
    pub fn from_arc(data: Arc<(XmlTree, XmlIndex)>) -> Self {
        XmlEngine {
            data,
            registry: None,
            result_cache: ResultCache::new(CacheConfig::default()),
        }
    }

    /// Reconfigure (or disable, via [`CacheConfig::disabled`]) the result
    /// cache. On by default; any existing cached entries are dropped.
    pub fn with_result_cache(mut self, cfg: CacheConfig) -> Self {
        self.result_cache = ResultCache::new(cfg);
        self
    }

    /// Record every query into `registry`, and publish the XML keyword
    /// index's build/size figures up front.
    pub fn with_registry(mut self, registry: Arc<MetricsRegistry>) -> Self {
        record_index_stats(&registry, "xml_keyword", &self.data.1.index_stats());
        self.registry = Some(registry);
        self
    }

    /// The shared tree+index pair this engine queries.
    pub fn data(&self) -> &Arc<(XmlTree, XmlIndex)> {
        &self.data
    }

    /// Execute a [`SearchRequest`]: budgeted SLCA + proximity ranking.
    pub fn execute(&self, req: &SearchRequest) -> Result<SearchResponse<XmlHit>> {
        execute_xml(
            &self.data.0,
            &self.data.1,
            req,
            self.registry.as_deref(),
            &self.result_cache,
        )
    }
}

impl Engine for XmlEngine {
    fn execute(&self, req: &SearchRequest) -> Result<SearchResponse<Hit>> {
        Ok(XmlEngine::execute(self, req)?.map(Hit::Xml))
    }
}

/// The XML execution pipeline on borrowed data.
fn execute_xml(
    tree: &XmlTree,
    index: &XmlIndex,
    req: &SearchRequest,
    registry: Option<&MetricsRegistry>,
    result_cache: &ResultCache<XmlHit>,
) -> Result<SearchResponse<XmlHit>> {
    let mut stats = QueryStats::new();
    let mut sw = Stopwatch::start();
    let budget = &req.budget;
    // XML trees are immutable here: generation 0, but the segment census
    // is real (the keyword index is segment-backed like the others).
    let segments = index.segment_counts();
    let (level, sampled) = effective_trace(registry, "xml", "slca", req.trace);
    let mut tb = TraceBuilder::new(level, format!("xml/slca {:?}", req.query));
    let done = |hits, stats, truncation, tb| {
        Ok(finish_response(
            registry, "xml", "slca", req, 1, 0, segments, sampled, hits, stats, truncation, tb,
        ))
    };

    tb.phase("parse");
    let keywords = parse_query(&req.query);
    stats.phases.parse = sw.lap();
    if keywords.is_empty() {
        return done(Vec::new(), stats, None, tb);
    }
    if let Some(reason) = budget.truncation() {
        tb.event("budget verdict", || {
            vec![("truncated".into(), reason.to_string())]
        });
        return done(Vec::new(), stats, Some(reason), tb);
    }
    let run = |mut stats: QueryStats, mut sw: Stopwatch, mut tb: TraceBuilder| {
        tb.phase("build");
        let (roots, slca_stats, mut truncation) =
            kwdb_xmlsearch::slca_indexed_budgeted(tree, index, &keywords, budget)?;
        stats.phases.build = sw.lap();
        stats.operators.sorted_accesses = slca_stats.anchors as u64;
        stats.operators.random_accesses = slca_stats.probes as u64;
        stats.candidates_generated = roots.len() as u64;
        tb.event("slca", || {
            vec![
                ("roots".into(), roots.len().to_string()),
                ("anchors".into(), slca_stats.anchors.to_string()),
                ("probes".into(), slca_stats.probes.to_string()),
            ]
        });

        tb.phase("evaluate");
        let sizes = tree.subtree_sizes();
        let avg_depth = tree.avg_leaf_depth();
        // one dictionary lookup per keyword; scoring below probes these views
        let kw_lists: Vec<_> = keywords.iter().map(|kw| index.nodes(kw)).collect();
        let mut hits: Vec<XmlHit> = Vec::with_capacity(roots.len());
        for r in roots {
            if !hits.is_empty() {
                if let Some(reason) = budget.truncation_at(hits.len() as u64) {
                    truncation = Some(reason);
                    break;
                }
            }
            // root→match path (node ids) for each keyword's first match
            // inside the result subtree
            let end = kwdb_xml::NodeId(r.0 + sizes[r.0 as usize]);
            let paths: Vec<Vec<u64>> = kw_lists
                .iter()
                .filter_map(|list| {
                    let m = list.right_match(r).filter(|&m| m < end)?;
                    let mut path = vec![m.0 as u64];
                    let mut cur = m;
                    while cur != r {
                        cur = tree.parent(cur).expect("r is an ancestor");
                        path.push(cur.0 as u64);
                    }
                    path.reverse();
                    Some(path)
                })
                .collect();
            hits.push(XmlHit {
                score: kwdb_rank::proximity::proximity_score(&paths, avg_depth),
                label_path: tree.label_path(r),
                root: r,
            });
        }
        // total_cmp: a NaN proximity score must sort deterministically (last),
        // not panic the engine.
        hits.sort_by(|a, b| b.score.total_cmp(&a.score).then(a.root.cmp(&b.root)));
        stats.candidates_pruned = stats
            .candidates_generated
            .saturating_sub(hits.len().min(req.k) as u64);
        hits.truncate(req.k);
        stats.phases.evaluate = sw.lap();
        tb.event("budget verdict", || {
            vec![(
                "truncated".into(),
                truncation.map_or("no".into(), |r| r.to_string()),
            )]
        });
        done(hits, stats, truncation, tb)
    };

    if !result_cache.admits(req, level) {
        return run(stats, sw, tb);
    }
    // Immutable tree → generation 0; the index layout is fixed per engine.
    let key = ResultKey::new(0, &keywords, "slca", Layout::Plain, req);
    let mut ctx = Some((stats, sw, tb));
    let outcome = result_cache.cache.get_or_compute(key, || {
        let (mut stats, sw, tb) = ctx.take().expect("leader owns the query context");
        stats.result_cache_misses = 1;
        let result = run(stats, sw, tb);
        let store = match &result {
            Ok(resp) if resp.truncation.is_none() => Some((
                Arc::new(CachedSearch {
                    hits: resp.hits.clone(),
                    facets: Vec::new(),
                    facets_exact: true,
                }),
                cached_bytes(&resp.hits, xml_hit_bytes, &[]),
            )),
            _ => None,
        };
        (result, store)
    });
    let resp = match outcome {
        Looked::Computed(result) => result,
        Looked::Cached(v) => {
            let (mut stats, _sw, tb) = ctx.take().expect("a hit leaves the context untouched");
            stats.result_cache_hits = 1;
            done(v.hits.clone(), stats, None, tb)
        }
    };
    result_cache.publish(registry, "xml");
    resp
}

#[cfg(test)]
mod tests {
    use super::*;
    use kwdb_datasets::{generate_dblp, DblpConfig};
    use std::time::Duration;

    #[test]
    fn relational_engine_end_to_end() {
        let db = generate_dblp(&DblpConfig {
            n_papers: 60,
            n_authors: 30,
            ..Default::default()
        });
        let engine = RelationalEngine::new(db);
        let resp = engine
            .execute(&SearchRequest::new("data query").k(5))
            .unwrap();
        assert!(!resp.hits.is_empty());
        assert!(!resp.truncated());
        assert!(resp.hits.windows(2).all(|w| w[0].score >= w[1].score));
        assert!(resp.hits[0].rendered.contains('('));
        assert!(resp.stats.candidates_generated > 0);
        assert_eq!(resp.stats.cache_misses, 1);
        assert!(resp.stats.operators.tuples_scanned > 0);
    }

    #[test]
    fn relational_engine_empty_and_unmatched() {
        let db = generate_dblp(&DblpConfig::default());
        let engine = RelationalEngine::new(db);
        let empty = engine.execute(&SearchRequest::new("").k(5)).unwrap();
        assert!(empty.hits.is_empty() && !empty.truncated());
        let unmatched = engine
            .execute(&SearchRequest::new("zzzzqqq data").k(5))
            .unwrap();
        assert!(unmatched.hits.is_empty() && !unmatched.truncated());
    }

    #[test]
    fn engine_shares_database_arc() {
        let db = Arc::new(generate_dblp(&DblpConfig {
            n_papers: 40,
            n_authors: 20,
            ..Default::default()
        }));
        let engine = RelationalEngine::new(Arc::clone(&db));
        // the caller keeps full access to the shared database
        assert_eq!(engine.database().table_count(), db.table_count());
        let resp = engine
            .execute(&SearchRequest::new("data query").k(3))
            .unwrap();
        assert!(!resp.hits.is_empty());
    }

    #[test]
    fn cn_plan_cache_hits_on_repeat() {
        let db = generate_dblp(&DblpConfig {
            n_papers: 60,
            n_authors: 30,
            ..Default::default()
        });
        // Result cache off: this test watches the *plan* cache, and a
        // repeat query must reach the planner to exercise it.
        let engine = RelationalEngine::with_config(
            db,
            RelationalConfig {
                result_cache: CacheConfig::disabled(),
                ..Default::default()
            },
        );
        let req = SearchRequest::new("data query").k(3);
        let first = engine.execute(&req).unwrap();
        assert_eq!((first.stats.cache_hits, first.stats.cache_misses), (0, 1));
        let second = engine.execute(&req).unwrap();
        assert_eq!((second.stats.cache_hits, second.stats.cache_misses), (1, 0));
        // keyword order must not defeat the cache
        let third = engine
            .execute(&SearchRequest::new("query data").k(3))
            .unwrap();
        assert_eq!(third.stats.cache_hits, 1);
    }

    #[test]
    fn graph_search_all_semantics() {
        let g = kwdb_datasets::graphs::generate_graph(&Default::default());
        // Result cache off: the repeat DistinctRoot query below must reach
        // the BLINKS index cache to observe its hit counter.
        let engine = GraphEngine::new(g).with_result_cache(CacheConfig::disabled());
        let run = |sem| {
            engine
                .execute(&SearchRequest::new("kw0 kw1").k(3).semantics(sem))
                .unwrap()
        };
        let exact = run(GraphSemantics::SteinerExact);
        let banks = run(GraphSemantics::Banks);
        let droot = run(GraphSemantics::DistinctRoot);
        assert!(!exact.hits.is_empty());
        assert!(!banks.hits.is_empty());
        assert!(!droot.hits.is_empty());
        assert!(
            banks.hits[0].cost >= exact.hits[0].cost - 1e-9,
            "DPBF is optimal"
        );
        assert!(droot.hits[0].cost >= exact.hits[0].cost - 1e-9);
        // second DistinctRoot query reuses the cached index
        let again = run(GraphSemantics::DistinctRoot);
        assert_eq!(again.stats.cache_hits, 1);
    }

    #[test]
    fn graph_engine_mutation_invalidates_within_staleness_bound() {
        let g = kwdb_datasets::graphs::generate_graph(&Default::default());
        // bound 0: rebuild on any change; result cache off so the repeat
        // query observes the BLINKS index cache, not the response cache
        let engine = GraphEngine::new(g).with_result_cache(CacheConfig::disabled());
        let run = |q: &str| {
            engine
                .execute(
                    &SearchRequest::new(q)
                        .k(3)
                        .semantics(GraphSemantics::DistinctRoot),
                )
                .unwrap()
        };
        let g0 = engine.generation();
        run("kw0 kw1");
        assert_eq!(run("kw0 kw1").stats.cache_hits, 1, "unchanged graph caches");

        let n = engine.add_node("person", "zzznew kw0");
        let neighbor = NodeId(0);
        engine.add_edge(n, neighbor, 1.0);
        assert!(engine.generation() > g0, "mutations bump the generation");
        let resp = run("zzznew");
        assert_eq!(
            resp.stats.cache_misses, 1,
            "bound 0 rebuilds after mutation"
        );
        assert!(!resp.hits.is_empty(), "new node is findable immediately");

        let outcome = engine.commit();
        assert_eq!(outcome.generation, engine.generation());
        assert_eq!(outcome.segments.realtime, 0, "commit seals realtime");
    }

    #[test]
    fn graph_engine_serves_stale_within_bound() {
        let g = kwdb_datasets::graphs::generate_graph(&Default::default());
        let engine = GraphEngine::new(g).with_staleness_bound(1_000);
        let run = |q: &str| {
            engine
                .execute(
                    &SearchRequest::new(q)
                        .k(3)
                        .semantics(GraphSemantics::DistinctRoot),
                )
                .unwrap()
        };
        run("kw0 kw1"); // builds the BLINKS index at the current generation
        engine.add_node("person", "zzznew kw0");
        // Within the bound the engine keeps serving the stale index: cheap,
        // and the brand-new keyword is simply not visible yet.
        let resp = run("zzznew");
        assert_eq!(resp.stats.cache_hits, 1, "stale-but-bounded index reused");
        assert!(resp.hits.is_empty());
    }

    #[test]
    fn spark_scoring_mode_works() {
        let db = generate_dblp(&DblpConfig {
            n_papers: 60,
            n_authors: 30,
            ..Default::default()
        });
        let engine = RelationalEngine::with_config(
            db,
            RelationalConfig {
                scoring: Scoring::Spark,
                ..Default::default()
            },
        );
        let resp = engine
            .execute(&SearchRequest::new("data query").k(5))
            .unwrap();
        assert!(!resp.hits.is_empty());
        assert!(resp.hits.windows(2).all(|w| w[0].score >= w[1].score));
    }

    #[test]
    fn xml_search_ranks_small_results_first() {
        let tree = kwdb_datasets::generate_bib_xml(&Default::default());
        let resp = XmlEngine::from_tree(tree)
            .execute(&SearchRequest::new("data query").k(10))
            .unwrap();
        if resp.hits.len() >= 2 {
            assert!(resp.hits[0].score >= resp.hits[1].score);
        }
    }

    #[test]
    fn zero_deadline_truncates_without_panicking() {
        let db = generate_dblp(&DblpConfig {
            n_papers: 60,
            n_authors: 30,
            ..Default::default()
        });
        let engine = RelationalEngine::new(db);
        let req = SearchRequest::new("data query")
            .k(5)
            .budget(Budget::unlimited().with_timeout(Duration::ZERO));
        let resp = engine.execute(&req).unwrap();
        assert!(resp.truncated());
        assert!(resp.hits.windows(2).all(|w| w[0].score >= w[1].score));
    }

    #[test]
    fn trait_objects_dispatch_all_engines() {
        let db = generate_dblp(&DblpConfig {
            n_papers: 60,
            n_authors: 30,
            ..Default::default()
        });
        let g = kwdb_datasets::graphs::generate_graph(&Default::default());
        let tree = kwdb_datasets::generate_bib_xml(&Default::default());
        let engines: Vec<(&str, Arc<dyn Engine>)> = vec![
            ("relational", Arc::new(RelationalEngine::new(db))),
            ("graph", Arc::new(GraphEngine::new(g))),
            ("xml", Arc::new(XmlEngine::from_tree(tree))),
        ];
        for (kind, engine) in engines {
            let resp = engine
                .execute(&SearchRequest::new("data query").k(3))
                .unwrap();
            for hit in &resp.hits {
                assert_eq!(hit.kind(), kind);
                assert!(hit.score().is_finite());
            }
        }
    }
}
