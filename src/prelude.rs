//! One-stop imports for the common case: `use kwdb::prelude::*;`.
//!
//! Re-exports the request/response surface, the three unified engines with
//! their typed hits and per-model knobs, the dispatcher, the execution
//! budget, and the observability handles — everything a typical caller
//! touches, nothing layout- or algorithm-internal.
//!
//! ```
//! use kwdb::prelude::*;
//!
//! let mut db = kwdb::relational::Database::new();
//! kwdb::relational::database::dblp_schema(&mut db).unwrap();
//! db.insert("conference", vec![1.into(), "SIGMOD".into(), 2007.into()])
//!     .unwrap();
//! db.build_text_index_with(Layout::Blocks);
//! let engine = RelationalEngine::new(db);
//! let resp = engine.execute(&SearchRequest::new("sigmod").k(3)).unwrap();
//! assert!(!resp.truncated());
//! ```

pub use crate::dispatch::{Catalog, DispatchOutcome, Dispatcher};
pub use crate::engine::{
    Engine, GraphEngine, GraphSemantics, Hit, RelationalConfig, RelationalEngine, RelationalHit,
    Scoring, SearchRequest, SearchResponse, XmlEngine, XmlHit,
};
pub use kwdb_common::index::{IndexStats, Layout};
pub use kwdb_common::{
    Budget, FacetCount, FacetCounts, FacetSpec, KwdbError, QueryStats, RangeBucket, Result,
    TruncationReason,
};
pub use kwdb_obs::{MetricsRegistry, QueryTrace, TraceLevel};
pub use kwdb_relsearch::Refinement;
